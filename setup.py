"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot build a PEP 660 editable wheel.  This shim lets
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
with a modern toolchain) install the package in editable mode; metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
