#!/usr/bin/env python3
"""Dynamic Sparse Data Exchange (paper Section 4.2): all five protocols.

Every rank sends 8 bytes to k random targets; nobody knows what they will
receive.  The demo runs the alltoall / reduce_scatter / NBX / RMA /
Cray-MPI-2.2-RMA protocols, checks that every protocol delivers the exact
same multiset, and prints the exchange times -- a miniature Figure 7b.

Run:  python examples/dsde_demo.py
"""

from repro import run_spmd
from repro.apps.dsde import PROTOCOLS, dsde_program, expected_incoming
from repro.bench.harness import format_table
from repro.config import MachineConfig, SimConfig


def main():
    p, k = 16, 4
    machine = MachineConfig(ranks_per_node=4)
    sim = SimConfig()
    want = expected_incoming(sim.seed, p, k)
    rows = []
    for proto in PROTOCOLS:
        res = run_spmd(dsde_program, p, proto, k, machine=machine, sim=sim)
        for r, (_t, received) in enumerate(res.returns):
            assert received == want[r], f"{proto}: wrong delivery at {r}"
        worst = max(t for t, _ in res.returns)
        rows.append([proto, round(worst / 1e3, 2)])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        f"DSDE: {p} ranks, k={k} random neighbors (deliveries verified)",
        ["protocol", "exchange time [us]"], rows))


if __name__ == "__main__":
    main()
