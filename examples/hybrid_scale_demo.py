#!/usr/bin/env python3
"""Hybrid scale mode: full-fidelity parity, then a paper-scale run.

Three acts:

1. run the canonical fence workload *full-fidelity* -- every rank a real
   DES process through the complete RMA stack (this part is what
   ``repro check`` instruments: the memory-model checker attaches to
   every simulated world the script builds);
2. run the *same* workload on the hybrid engine and assert the per-kind
   message counts, bytes moved and max-per-rank metrics are EXACTLY
   equal -- the structural validation behind every paper-scale number;
3. rerun at 512Ki ranks, where only a sampled subset of ranks executes
   DES protocol code and the rest fold into numpy aggregate state.

The hybrid act is exempt from race checking *by construction*, not by a
flag: aggregate ranks never execute real memory operations (their
protocol contributions are vectorized count/state updates), so there
are no loads or stores for a happens-before checker to order.  The
engine's own gates -- tier parity, end-of-run state invariants, the
O(log p) per-rank bounds -- play the equivalent validation role, and
acts 1+2 tie them back to the fully-checked semantics at overlap sizes.

Run:  python examples/hybrid_scale_demo.py
"""

from repro.scale import format_ranks, run_hybrid
from repro.scale.parity import run_full

OVERLAP_RANKS = 64
PAPER_RANKS = 512 * 1024
RANKS_PER_NODE = 32
WORKLOAD = "fence"


def main():
    # Act 1: full fidelity (race-checked when run under `repro check`).
    full = run_full(WORKLOAD, OVERLAP_RANKS, ranks_per_node=RANKS_PER_NODE)
    print(f"full fidelity  @ {format_ranks(OVERLAP_RANKS):>6}: "
          f"{full.stats['messages']:>12,} msgs, "
          f"{full.sim_time_ns / 1e3:.1f} us simulated")

    # Act 2: hybrid at the same size -- counts must match exactly.
    hyb = run_hybrid(WORKLOAD, OVERLAP_RANKS, ranks_per_node=RANKS_PER_NODE)
    print(f"hybrid         @ {format_ranks(OVERLAP_RANKS):>6}: "
          f"{hyb.stats['messages']:>12,} msgs, "
          f"{hyb.sim_time_ns / 1e3:.1f} us simulated "
          f"({len(hyb.sample)} ranks sampled on the DES)")
    # Under `repro check` the attached checker injects a "check" section
    # into the full-fidelity stats; the counts contract is everything else.
    full_counts = {k: v for k, v in full.stats.items() if k != "check"}
    assert hyb.stats == full_counts, (hyb.stats, full_counts)
    print("parity: hybrid counts identical to full fidelity "
          "(times are model-derived, counts are the contract).")

    # Act 3: paper scale.  512Ki ranks; aggregate state is a few flat
    # numpy arrays, the sampled ranks revalidate tier parity in situ.
    big = run_hybrid(WORKLOAD, PAPER_RANKS, ranks_per_node=RANKS_PER_NODE)
    print(f"hybrid         @ {format_ranks(PAPER_RANKS):>6}: "
          f"{big.stats['messages']:>12,} msgs, "
          f"{big.sim_time_ns / 1e3:.1f} us simulated, "
          f"SoA {big.soa_nbytes / 1e6:.1f} MB, "
          f"{len(big.sample)} ranks sampled")
    assert big.bounds["max_remote_ops_ok"], big.bounds
    print(f"O(log p) bound: max {big.bounds['max_remote_ops']} msgs/rank "
          f"(budget {big.bounds['max_remote_ops_budget']}) -- scalable.")
    print("OK: paper-scale run validated against full-fidelity semantics.")


if __name__ == "__main__":
    main()
