#!/usr/bin/env python3
"""Quickstart: MPI-3 RMA on the simulated machine in ~40 lines.

Four ranks allocate a symmetric window, exchange data with one-sided puts
under fence synchronization, then use passive-target locks and atomics --
the full tour of the paper's API surface.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import run_spmd
from repro.config import MachineConfig
from repro.rma.enums import LockType, Op


def program(ctx):
    # Collective, scalable window allocation (symmetric heap, O(1) state).
    win = yield from ctx.rma.win_allocate(4096, disp_unit=8)

    # --- active target: fence epochs --------------------------------
    yield from win.fence()
    neighbor = (ctx.rank + 1) % ctx.nranks
    yield from win.put(np.array([100 + ctx.rank], dtype=np.int64),
                       neighbor, 0)
    yield from win.fence(no_succeed=True)  # end the active-target epochs
    received = int(win.local_view(np.int64)[0])

    # --- passive target: lock / flush / unlock ----------------------
    yield from win.lock(0, LockType.SHARED)
    old = yield from win.fetch_and_op(np.int64(1), 0, 1, Op.SUM)
    yield from win.unlock(0)

    # --- read the shared counter back -------------------------------
    yield from ctx.coll.barrier()
    counter = int(win.local_view(np.int64)[1]) if ctx.rank == 0 else None
    return received, int(old), counter


def main():
    res = run_spmd(program, 4, machine=MachineConfig(ranks_per_node=1))
    print("simulated time:", res.sim_time_ns / 1e3, "us")
    for rank, (received, ticket, counter) in enumerate(res.returns):
        line = (f"rank {rank}: received {received} from neighbor, "
                f"fetch_and_op ticket {ticket}")
        if counter is not None:
            line += f", final shared counter {counter}"
        print(line)
    tickets = sorted(r[1] for r in res.returns)
    assert tickets == [0, 1, 2, 3], "atomic tickets must be unique"
    assert res.returns[0][2] == 4
    print("OK: puts landed, atomics serialized.")


if __name__ == "__main__":
    main()
