#!/usr/bin/env python3
"""The paper's performance models as a design tool (Sections 3 and 6).

1. prints the measured model catalog with its Figure-1-style domains,
2. runs the Section 6 worked example -- when should an application use
   fence vs PSCW synchronization? -- across p and k,
3. measures the *simulated* put latency, fits it to the paper's affine
   form, and compares constants (the calibration loop of EXPERIMENTS.md).

Run:  python examples/performance_models.py
"""

from repro.bench import microbench as mb
from repro.bench.harness import format_table
from repro.models.fitting import fit_affine
from repro.models.params_fompi import PAPER_MODELS
from repro.models.perfmodel import prefer_pscw


def main():
    rows = [[name, m.name, m.domain_str(),
             f"{m(s=8, p=64, k=2, o=None) / 1e3:.2f}"]
            for name, m in sorted(PAPER_MODELS.items())]
    print(format_table(
        "Paper performance models (evaluated at s=8 B, p=64, k=2)",
        ["key", "model", "domain", "us"], rows))
    print()

    rows = []
    for p in (16, 256, 4096, 65536):
        for k in (2, 8, 32):
            choice = "PSCW" if prefer_pscw(PAPER_MODELS, p=p, k=k) else "fence"
            rows.append([p, k, choice])
    print(format_table(
        "Section 6 decision rule: P_fence vs P_post+P_complete+P_start+P_wait",
        ["p", "k", "choose"], rows))
    print()

    sizes = [8, 512, 8192, 65536]
    lats = [mb.put_latency("fompi", s) for s in sizes]
    a, b = fit_affine(sizes, lats)
    print("simulated put latency fit:   "
          f"P_put = {b:.3f} ns/B * s + {a / 1e3:.2f} us")
    print("paper's measured model:      P_put = 0.160 ns/B * s + 1.00 us")


if __name__ == "__main__":
    main()
