#!/usr/bin/env python3
"""Open-loop KV serving demo (docs/SERVING.md).

Serves a small seeded Zipfian workload against the RMA-backed KV store
(repro.apps.kvstore over per-stripe MCS locks + AMO insertion), prints
the deterministic tail-latency report, and cross-checks the final store
contents against the schedule-replay model -- the "serving traffic"
quickstart from the README.

Run:  python examples/kvstore_demo.py

The run is fault-free and checker-clean: the CI memory-model job sweeps
this script under ``repro check`` and requires zero violations.
"""

import argparse

from repro.serve.driver import (expected_contents, merged_contents,
                                run_kv_serve)
from repro.serve.slo import build_report, render_report
from repro.serve.zipf import ServeSpec


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--requests", type=int, default=600)
    ap.add_argument("--nkeys", type=int, default=64)
    ap.add_argument("--skew", type=float, default=0.99)
    ap.add_argument("--seed", type=int, default=7)
    # parse_known_args: the test harness runs this file via runpy with
    # its own argv; stray flags must not abort the demo.
    args, _ = ap.parse_known_args()

    spec = ServeSpec(nkeys=args.nkeys, theta=args.skew,
                     total_requests=args.requests, seed=args.seed)
    res = run_kv_serve(args.ranks, spec)
    print(render_report(build_report(res, spec, args.ranks)))

    keys, determined = expected_contents(spec, args.ranks)
    final = merged_contents(res)
    # Exit nonzero only on failure: the CI checker job runs this file
    # via runpy, and a clean pass must fall through so the captured
    # worlds get their race report rendered.
    if set(final) != keys:
        raise SystemExit("FAILED: final key set differs from the "
                         "replay model")
    bad = [k for k, v in determined.items() if final[k] != v]
    if bad:
        raise SystemExit(f"FAILED: {len(bad)} deterministic value(s) "
                         f"differ from the replay model")
    print(f"final store verified: {len(keys)} keys, "
          f"{len(determined)} model-determined values match")


if __name__ == "__main__":
    main()
