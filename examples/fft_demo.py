#!/usr/bin/env python3
"""3-D FFT with communication/computation overlap (paper Section 4.3).

Runs a real distributed 3-D FFT (2-D pencil decomposition) with the
"nonblocking MPI" schedule and the "slab overlap" schedules over foMPI
RMA and UPC, verifies every result against numpy's fftn, and reports
simulated times -- a miniature Figure 7c.

Run:  python examples/fft_demo.py
"""

import numpy as np

from repro import run_spmd
from repro.apps.fft import FftSpec, fft_program, gather_result
from repro.apps.fft.parallel import _initial_block
from repro.bench.harness import format_table
from repro.config import MachineConfig

VARIANTS = [("mpi1", "nonblocking MPI"),
            ("rma_overlap", "foMPI slab overlap"),
            ("upc_overlap", "UPC slab overlap")]


def main():
    p = 8
    spec = FftSpec(nx=32, ny=32, nz=32, flop_rate=1.2e10, chunks=4)
    machine = MachineConfig(ranks_per_node=2)
    full = _initial_block(spec, 0, 0, spec.ny, spec.nz)
    reference = np.fft.fftn(full)
    rows = []
    for variant, label in VARIANTS:
        box = {}
        res = run_spmd(fft_program, p, spec, variant, box, machine=machine)
        got = gather_result(spec, p, box)
        np.testing.assert_allclose(got, reference, rtol=1e-9, atol=1e-9)
        worst = max(e for e, _g in res.returns)
        gflops = min(g for _e, g in res.returns)
        rows.append([label, round(worst / 1e3, 1), round(gflops, 2)])
    print(format_table(
        f"3-D FFT {spec.nx}^3 on {p} ranks (result == numpy.fft.fftn)",
        ["schedule", "time [us]", "GFlop/s"], rows))
    base = rows[0][1]
    for label, t, _g in rows[1:]:
        print(f"{label}: {100 * (base - t) / base:+.1f}% vs nonblocking MPI")


if __name__ == "__main__":
    main()
