#!/usr/bin/env python3
"""MILC-like lattice CG solve (paper Section 4.4) on three transports.

Solves the 4-D stencil system with conjugate gradient, exchanging halos
in 8 directions each iteration with the MPI-1, foMPI-RMA-notify+get and
UPC schemes, verifies all three converge to the same solution, and prints
the timings -- a miniature Figure 8.

Run:  python examples/milc_demo.py
"""

from repro import run_spmd
from repro.apps.milc import MilcSpec, milc_program
from repro.bench.harness import format_table
from repro.config import MachineConfig

VARIANTS = [("mpi1", "MPI-1 send/recv"),
            ("rma", "foMPI notify+get"),
            ("upc", "UPC notify+memget")]


def main():
    p = 8
    spec = MilcSpec(local=(4, 4, 4, 4), tol=1e-8, maxiter=100)
    machine = MachineConfig(ranks_per_node=4)
    rows, sums = [], {}
    for variant, label in VARIANTS:
        res = run_spmd(milc_program, p, spec, variant, machine=machine)
        worst = max(e for e, *_ in res.returns)
        iters = res.returns[0][1]
        residual = max(r for _e, _i, r, _c in res.returns)
        sums[variant] = sum(c for *_x, c in res.returns)
        rows.append([label, iters, f"{residual:.2e}",
                     round(worst / 1e6, 3)])
    print(format_table(
        f"MILC proxy: lattice {spec.local} x {p} ranks, CG to "
        f"tol={spec.tol}", ["transport", "iters", "residual", "time [ms]"],
        rows))
    a = sums["mpi1"]
    assert abs(a - sums["rma"]) < 1e-8 * abs(a)
    assert abs(a - sums["upc"]) < 1e-8 * abs(a)
    print("OK: all transports converged to the identical solution.")


if __name__ == "__main__":
    main()
