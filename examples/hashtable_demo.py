#!/usr/bin/env python3
"""Distributed hashtable (paper Section 4.1) across three transports.

Inserts random keys into a distributed hashtable with the paper's three
implementations (MPI-3 RMA / UPC atomics / MPI-1 active messages),
verifies every key landed exactly once, and prints the aggregate insert
rates -- a miniature Figure 7a.

Run:  python examples/hashtable_demo.py

Crash-and-recover mode (the rollback-recovery layer, docs/FAULT_TOLERANCE.md):

    python examples/hashtable_demo.py --ft --crash-rank 2
    python examples/hashtable_demo.py --ft --crash-rank 0 --ft-mode shrink

runs the FT variant of the RMA hashtable fault-free, crashes one rank
mid-run, restores it from its buddy-replicated checkpoint + put-log, and
checks the recovered final table is bit-identical to the fault-free one
(exit code 1 if not).
"""

import argparse
import sys

from repro import run_spmd
from repro.apps.hashtable import (
    HashTableLayout,
    mpi1_insert_program,
    rma_insert_program,
    upc_insert_program,
    verify_contents,
)
from repro.bench.harness import format_table
from repro.config import MachineConfig

VARIANTS = {"fompi (MPI-3 RMA)": rma_insert_program,
            "cray-upc": upc_insert_program,
            "mpi-1 active msg": mpi1_insert_program}


def main_ft(args) -> int:
    from repro.ft.workloads import run_crash_to_completion

    out = run_crash_to_completion(
        args.ranks, args.inserts, crash_rank=args.crash_rank,
        crash_frac=args.crash_frac, mode=args.ft_mode)
    row = out.stats_row()
    print(f"fault-free reference: {out.reference.sim_time_ns / 1e3:.1f} us")
    print(f"crashed rank {out.crash_rank} at {out.crash_time_ns} ns; "
          f"recovered ({out.mode}) in {out.recovered.sim_time_ns / 1e3:.1f} "
          f"us with {row['ranks_restored']} rank(s) restored")
    if not out.match:
        print("FAILED: recovered table differs from fault-free run")
        return 1
    print("recovered table is bit-identical to the fault-free run")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ft", action="store_true",
                    help="crash-and-recover demo instead of the "
                         "three-transport rate table")
    ap.add_argument("--crash-rank", type=int, default=1)
    ap.add_argument("--crash-frac", type=float, default=0.5)
    ap.add_argument("--ft-mode", choices=("spare", "shrink"),
                    default="spare")
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--inserts", type=int, default=4)
    # parse_known_args: the test harness runs this file via runpy with
    # its own argv; stray flags must not abort the demo.
    args, _ = ap.parse_known_args()
    if args.ft:
        sys.exit(main_ft(args))
    p, inserts = 16, 48
    layout = HashTableLayout(table_slots=32, heap_cells=1024)
    machine = MachineConfig(ranks_per_node=4)
    rows = []
    for name, prog in VARIANTS.items():
        box = {}
        res = run_spmd(prog, p, layout, inserts, box, machine=machine)
        verify_contents(layout,
                        [box["volumes"][r] for r in range(p)],
                        [box["keys"][r] for r in range(p)])
        worst_ns = max(res.returns)
        rate = p * inserts / (worst_ns / 1e9)
        rows.append([name, round(worst_ns / 1e3, 1), round(rate / 1e6, 2)])
    print(format_table(
        f"Hashtable: {p} ranks x {inserts} inserts (all keys verified)",
        ["transport", "time [us]", "aggregate [M inserts/s]"], rows))


if __name__ == "__main__":
    main()
