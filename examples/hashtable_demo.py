#!/usr/bin/env python3
"""Distributed hashtable (paper Section 4.1) across three transports.

Inserts random keys into a distributed hashtable with the paper's three
implementations (MPI-3 RMA / UPC atomics / MPI-1 active messages),
verifies every key landed exactly once, and prints the aggregate insert
rates -- a miniature Figure 7a.

Run:  python examples/hashtable_demo.py
"""

from repro import run_spmd
from repro.apps.hashtable import (
    HashTableLayout,
    mpi1_insert_program,
    rma_insert_program,
    upc_insert_program,
    verify_contents,
)
from repro.bench.harness import format_table
from repro.config import MachineConfig

VARIANTS = {"fompi (MPI-3 RMA)": rma_insert_program,
            "cray-upc": upc_insert_program,
            "mpi-1 active msg": mpi1_insert_program}


def main():
    p, inserts = 16, 48
    layout = HashTableLayout(table_slots=32, heap_cells=1024)
    machine = MachineConfig(ranks_per_node=4)
    rows = []
    for name, prog in VARIANTS.items():
        box = {}
        res = run_spmd(prog, p, layout, inserts, box, machine=machine)
        verify_contents(layout,
                        [box["volumes"][r] for r in range(p)],
                        [box["keys"][r] for r in range(p)])
        worst_ns = max(res.returns)
        rate = p * inserts / (worst_ns / 1e9)
        rows.append([name, round(worst_ns / 1e3, 1), round(rate / 1e6, 2)])
    print(format_table(
        f"Hashtable: {p} ranks x {inserts} inserts (all keys verified)",
        ["transport", "time [us]", "aggregate [M inserts/s]"], rows))


if __name__ == "__main__":
    main()
