"""Figure 6: (a) atomics, (b) global synchronization, (c) PSCW ring,
plus the Section 3.2 passive-target constants."""

from repro.bench import (BenchPoint, Series, format_series_table,
                         format_table, run_points)
from repro.bench import microbench as mb
from repro.bench import syncbench as sb
from repro.models.params_fompi import paper_model

ATOMIC_ELEMS = [1, 8, 64, 512, 4096, 32768]
SYNC_PS = [2, 8, 32, 128, 512]
PSCW_PS = [4, 16, 64, 256]


def test_fig6a_atomics(benchmark, record_series):
    kinds = ["fompi_sum", "fompi_min", "fompi_cas", "upc_aadd", "upc_cas"]

    def run():
        kind_elems = [
            (kind, [1] if "cas" in kind or kind == "upc_aadd"
             else ATOMIC_ELEMS)
            for kind in kinds]
        points = [
            BenchPoint(mb.atomic_latency, (kind, n),
                       {"reps": 2 if n >= 4096 else 4})
            for kind, elems in kind_elems for n in elems]
        values = iter(run_points(points))
        series = []
        for kind, elems in kind_elems:
            s = Series(label=kind, meta={"unit": "us", "mode": "sim"})
            for n in elems:
                s.add(n, round(next(values) / 1e3, 3))
            series.append(s)
        ref = Series(label="paper P_acc,sum", meta={"mode": "model"})
        for n in ATOMIC_ELEMS:
            ref.add(n, round(paper_model("acc_sum")(s=n) / 1e3, 3))
        series.append(ref)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 6a: atomic operation latency [us] vs #elements",
        "elems", series)
    record_series("fig6a", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fsum = next(s for s in series if s.label == "fompi_sum")
    fmin = next(s for s in series if s.label == "fompi_min")
    assert fmin.ys[0] > fsum.ys[0]     # fallback base cost higher
    assert fmin.ys[-1] < fsum.ys[-1]   # ... but crosses over (bandwidth)


def test_fig6b_global_sync(benchmark, record_series):
    transports = ["fompi", "upc", "caf", "cray22"]

    def run():
        points = [BenchPoint(sb.global_sync_latency, (t, p))
                  for t in transports for p in SYNC_PS]
        values = iter(run_points(points))
        series = []
        for t in transports:
            s = Series(label=t, meta={"unit": "us", "mode": "sim"})
            for p in SYNC_PS:
                s.add(p, round(next(values) / 1e3, 2))
            series.append(s)
        ref = Series(label="paper P_fence", meta={"mode": "model"})
        for p in SYNC_PS:
            ref.add(p, round(paper_model("fence")(p=p) / 1e3, 2))
        series.append(ref)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 6b: global synchronization latency [us] vs processes",
        "p", series)
    record_series("fig6b", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fence = next(s for s in series if s.label == "fompi")
    ref = next(s for s in series if s.label == "paper P_fence")
    assert abs(fence.ys[-1] - ref.ys[-1]) / ref.ys[-1] < 0.35


def test_fig6c_pscw_ring(benchmark, record_series):
    def run():
        points = [
            BenchPoint(sb.pscw_ring_latency, (t, p),
                       {"noise_ns": 400.0 if (t == "fompi" and p > 64)
                        else 0.0})
            for t in ("fompi", "cray22") for p in PSCW_PS]
        values = iter(run_points(points))
        series = []
        for t in ("fompi", "cray22"):
            s = Series(label=t, meta={"unit": "us", "mode": "sim",
                                      "note": "32 ranks/node; k=2 ring"})
            for p in PSCW_PS:
                s.add(p, round(next(values) / 1e3, 2))
            series.append(s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 6c: PSCW latency [us] on a ring (k=2) vs processes",
        "p", series)
    record_series("fig6c", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    cray = next(s for s in series if s.label == "cray22")
    # foMPI: near-constant within the inter-node regime (the jump from
    # ys[1] to ys[2] is the intra->inter knee at 32 ranks/node, as in the
    # paper's figure); Cray grows systematically everywhere.
    assert fompi.ys[-1] < 1.6 * fompi.ys[-2]
    assert cray.ys[-1] > cray.ys[0]
    assert cray.ys[-1] > fompi.ys[-1]


def test_fig6_lock_constants(benchmark, record_series):
    consts = benchmark.pedantic(sb.lock_constants, rounds=1, iterations=1)
    paper = {"lock_excl": 5400, "lock_shrd": 2700, "lock_all": 2700,
             "unlock": 400, "unlock_all": 400, "flush": 76, "sync": 17,
             "unlock_excl_last": 800}
    rows = [[k, round(v / 1e3, 3), paper.get(k, 0) / 1e3]
            for k, v in sorted(consts.items())]
    table = format_table(
        "Section 3.2: passive-target constants [us] (measured vs paper)",
        ["operation", "simulated", "paper"], rows)
    record_series("fig6_locks", table, [dict(consts)])
    benchmark.extra_info["constants"] = dict(consts)
