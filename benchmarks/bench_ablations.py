"""Ablations of the design choices DESIGN.md calls out.

1. **fence vs PSCW crossover** -- Section 6's worked example: the paper's
   models predict PSCW wins when P_fence > P_post+P_complete+P_start+P_wait.
   We *measure* both in simulation across (p, k) and check the measured
   winner against the model's prediction.
2. **eager threshold** -- the MPI-1 protocol switch: sweep the threshold
   and show the default sits at the eager/rendezvous crossover.
3. **NIC FMA/BTE split** -- disable the split (force everything onto one
   bulk channel) and show the hashtable hot-spot collapses, motivating the
   two-path NIC model.
4. **PSCW ring capacity** -- protocol memory (O(k)) vs the failure bound.
"""

import numpy as np
import pytest

from repro import run_spmd
from repro.bench import Series, format_table
from repro.config import MachineConfig
from repro.models.params_fompi import PAPER_MODELS
from repro.models.perfmodel import prefer_pscw
from repro.mpi1.params import Mpi1Params

INTER = MachineConfig(ranks_per_node=1)


def _fence_time(p):
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from win.fence()
        t0 = ctx.now
        yield from win.fence()
        return ctx.now - t0

    return max(run_spmd(program, p, machine=INTER).returns)


def _sym_group(rank, p, k):
    """k nearest neighbors (symmetric: j in group(i) <=> i in group(j))."""
    half = k // 2
    group = []
    for i in range(1, half + 1):
        group.append((rank + i) % p)
        group.append((rank - i) % p)
    return list(dict.fromkeys(g for g in group if g != rank))


def _pscw_time(p, k):
    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        group = _sym_group(ctx.rank, ctx.nranks, k)
        t0 = ctx.now
        yield from win.post(group)
        yield from win.start(group)
        yield from win.complete()
        yield from win.wait()
        return ctx.now - t0

    return max(run_spmd(program, p, machine=INTER).returns)


def test_ablation_fence_vs_pscw_choice(benchmark, record_series):
    """Measured winner must agree with the Section 6 model rule."""
    cases = [(8, 2), (32, 2), (32, 8), (64, 4)]

    def run():
        from repro.bench import BenchPoint, run_points
        fence_times = run_points(
            [BenchPoint(_fence_time, (p,)) for p, _k in cases])
        pscw_times = run_points(
            [BenchPoint(_pscw_time, (p, min(k, p - 1))) for p, k in cases])
        rows = []
        for (p, k), tf, tp in zip(cases, fence_times, pscw_times):
            measured = "PSCW" if tp < tf else "fence"
            predicted = "PSCW" if prefer_pscw(PAPER_MODELS, p=p, k=k) \
                else "fence"
            rows.append([p, k, round(tf / 1e3, 2), round(tp / 1e3, 2),
                         measured, predicted])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: fence vs PSCW (measured winner vs model prediction)",
        ["p", "k", "fence [us]", "pscw [us]", "measured", "model"], rows)
    record_series("ablation_sync_choice", table, rows)
    agree = sum(1 for r in rows if r[4] == r[5])
    assert agree >= len(rows) - 1  # the models are a usable design tool


def test_ablation_eager_threshold(benchmark, record_series):
    """Sweep the eager/rendezvous switch for an 8 KiB ping-pong."""
    nbytes = 8192

    def latency(threshold):
        params = Mpi1Params(eager_threshold=threshold)

        def program(ctx):
            data = np.zeros(nbytes, np.uint8)
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(4):
                    yield from ctx.mpi.send(1, data)
                    yield from ctx.mpi.recv(1)
                return (ctx.now - t0) / 8
            for _ in range(4):
                got = yield from ctx.mpi.recv(0)
                yield from ctx.mpi.send(0, got)
            return None

        return run_spmd(program, 2, machine=INTER,
                        mpi1=params).returns[0]

    def run():
        return [[thr, round(latency(thr) / 1e3, 3)]
                for thr in (1024, 4096, 8192, 16384, 65536)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: MPI-1 eager threshold for an 8 KiB ping-pong",
        ["threshold [B]", "half-RTT [us]"], rows)
    record_series("ablation_eager_threshold", table, rows)
    # 8 KiB message: eager (threshold >= 8 KiB) pays the copy, rendezvous
    # (threshold < 8 KiB) pays the handshake -- both regimes must appear.
    lats = [lat for _t, lat in rows]
    assert max(lats) != min(lats)


def test_ablation_fma_bte_split(benchmark, record_series):
    """Force small control packets onto the bulk channel: MILC's get
    requests then queue behind get responses (head-of-line blocking) and
    the halo exchange slows down -- the reason the NIC model separates
    Gemini's FMA and BTE paths."""
    from repro.apps.milc import MilcSpec, milc_program
    from repro.machine.params import GeminiParams

    spec = MilcSpec(local=(4, 4, 4, 8), maxiter=10, tol=0.0)
    machine = MachineConfig(ranks_per_node=32)

    def run():
        t_split = max(e for e, *_ in run_spmd(
            milc_program, 128, spec, "rma", machine=machine).returns)
        # fma_threshold=0 -> every packet takes the BTE path
        t_merged = max(e for e, *_ in run_spmd(
            milc_program, 128, spec, "rma", machine=machine,
            gemini=GeminiParams(fma_threshold=0)).returns)
        return {"split_ms": t_split / 1e6, "merged_ms": t_merged / 1e6}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: NIC FMA/BTE split (MILC RMA halo, p=128, 32 ranks/node)",
        ["config", "solve time [ms]"],
        [["separate FMA+BTE (default)", round(out["split_ms"], 2)],
         ["single shared channel", round(out["merged_ms"], 2)]])
    record_series("ablation_fma_bte", table, [out])
    assert out["merged_ms"] > out["split_ms"]


def test_ablation_pscw_ring_capacity(benchmark, record_series):
    """Ring slots are the protocol's O(k) memory; capacity must cover the
    neighbor bound and fail loudly beyond it."""
    from repro.errors import RmaError
    from repro.rma.params import FompiParams

    def attempt(capacity, k, p=9):
        params = FompiParams(pscw_ring_capacity=capacity)

        def program(ctx):
            ctx.rma.params = params
            win = yield from ctx.rma.win_allocate(64)
            yield from ctx.coll.barrier()
            group = _sym_group(ctx.rank, ctx.nranks, k)
            yield from win.post(group)
            # delay consumption so all k posts are outstanding at once
            yield from ctx.compute(50_000)
            yield from win.start(group)
            yield from win.complete()
            yield from win.wait()
            return True

        try:
            run_spmd(program, p, machine=INTER)
            return "ok"
        except RmaError:
            return "overflow"

    def run():
        return [[cap, k, attempt(cap, k)]
                for cap, k in ((8, 4), (8, 8), (4, 6))]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: PSCW matching-ring capacity vs neighbor count k",
        ["capacity", "k", "outcome"], rows)
    record_series("ablation_pscw_capacity", table, rows)
    assert rows[0][2] == "ok"
    assert rows[2][2] == "overflow"
