"""Frozen PR-2 DES kernel -- benchmark fixture, not product code.

This is a verbatim snapshot of ``repro.sim.kernel`` as it stood before the
generation-2 scheduler landed.  ``benchmarks/bench_kernel.py`` runs the same
synthetic workloads against this module to produce the legacy-scheduler
baseline for the kernel A/B gate (``fast_over_legacy``), and asserts that
both kernels produce bit-identical schedules.  Do not modify except to keep
it importable.

Original module docstring follows.

Design notes
------------

Design notes
------------
* Simulated time is an integer number of **nanoseconds**.  Fractional
  nanosecond costs are accumulated by callers and rounded once (the machine
  layer does this), keeping the event queue integral and deterministic.
* Events in the queue are ordered by ``(time, priority, seq)`` where ``seq``
  is a monotone counter -- two events at the same instant always fire in the
  order they were scheduled, making every run bit-reproducible.
* Processes are plain Python generators.  ``yield event`` suspends until the
  event fires; the value sent back into the generator is ``event.value``.
  Composite waits use :class:`AllOf` / :class:`AnyOf`.
* Unlike SimPy we detect deadlock eagerly: if the queue drains while
  processes are still blocked, :class:`~repro.errors.DeadlockError` is
  raised with diagnostics.  The MPI specification forbids cyclically
  waiting configurations (Section 2.5 of the paper); this check is how the
  test suite asserts that the protocols never create them.

Fast-path invariants
--------------------
The hot loop in :meth:`Environment.run` is an inlined copy of
:meth:`Environment.step` with all per-event attribute lookups hoisted into
locals, the tracer branch removed when no tracer is installed, and the
watchdog comparison done on plain ints.  ``run(..., fast=False)`` keeps the
original one-``step()``-per-event loop; both paths pop the same
``(time, priority, seq)`` heap and allocate sequence numbers identically,
so **event order, simulated times and all counters are bit-identical**
between the two -- the test suite asserts this.

``Timeout`` objects fired on the hot path are recycled through a free list:
a timeout whose only callback was a process resumption (the ubiquitous
``yield env.timeout(d)`` pattern) is returned to the pool after it fires
and reused by the next ``env.timeout()`` call.  Recycling only swaps object
identity, never sequence numbers or values, so it cannot perturb ordering.
The one rule it imposes: *do not retain a reference to a timeout you have
already yielded* (re-reading ``t.value`` later, or putting a previously
yielded timeout inside a composite, is unsupported).  Timeouts waited on
through ``AllOf``/``AnyOf`` or created-then-yielded-later are never pooled
-- only the single-waiter resume pattern is.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, LivelockError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "URGENT",
    "NORMAL",
    "LOW",
]

# Scheduling priorities (lower fires first at equal times).
URGENT = 0  # completions/wakeups that should precede new work
NORMAL = 1
LOW = 2

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence; processes wait on it by ``yield``-ing it.

    An event is *triggered* once via :meth:`succeed` or :meth:`fail`; its
    callbacks then run at the scheduled simulated time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "name")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok = True
        self.name = name

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0, priority: int = NORMAL) -> "Event":
        """Trigger successfully, firing callbacks ``delay`` ns from now."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        env._seq += 1
        heappush(env._queue, (env._now + int(delay), priority, env._seq, self))
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger as failed; waiting processes get ``exception`` thrown."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay, priority=URGENT)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """Event that fires ``delay`` nanoseconds after creation.

    Prefer :meth:`Environment.timeout`, which recycles fired instances
    through a free list on the hot path.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: int, value: Any = None,
                 priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        env.schedule(self, delay=int(delay), priority=priority)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator may ``yield``:

    * an :class:`Event` -- suspend until it fires; resumed with its value,
    * another :class:`Process` -- suspend until that process terminates.
    """

    __slots__ = ("_gen", "_target", "_interrupts", "_bound_resume")

    def __init__(self, env: "Environment", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__} "
                "(did you forget to call the generator function?)")
        super().__init__(env, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        # One bound method reused for every suspend/registration; avoids a
        # method-object allocation per event and lets removal compare by
        # identity.
        self._bound_resume = self._resume
        env._nprocesses += 1
        env._live.add(self)
        # Bootstrap: resume the generator at the current instant.
        init = Event(env, name=f"init:{self.name}")
        init._ok = True
        init._value = None
        init.callbacks.append(self._bound_resume)
        env.schedule(init, delay=0, priority=NORMAL)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None, *,
                  exception: BaseException | None = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        ``exception`` overrides the default wrapping: the given exception
        instance is thrown as-is (used by the recovery layer to terminate
        helper processes with a structured protocol error instead of an
        :class:`Interrupt` that callers would have to re-map).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        exc: BaseException = exception if exception is not None else Interrupt(cause)
        wake = Event(self.env, name=f"interrupt:{self.name}")
        wake._ok = False
        wake._value = exc
        wake.callbacks.append(self._bound_resume)
        self.env.schedule(wake, delay=0, priority=URGENT)

    # -- engine --------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        env = self.env
        # Detach from the event that woke us (it may not be the one that
        # fired if we were interrupted).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._bound_resume)
            except ValueError:
                pass
        self._target = None
        env._active = self
        gen = self._gen
        send = gen.send
        throw = gen.throw
        event: Event = trigger
        while True:
            try:
                if event._ok:
                    out = send(event._value)
                else:
                    out = throw(event._value)
            except StopIteration as stop:
                env._active = None
                env._nprocesses -= 1
                env._live.discard(self)
                env.note_progress()
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active = None
                env._nprocesses -= 1
                env._live.discard(self)
                if env.strict:
                    self._ok = False
                    self._value = exc
                    env.schedule(self, delay=0, priority=URGENT)
                    raise
                self.fail(exc)
                return
            try:
                cbs = out.callbacks
            except AttributeError:
                env._active = None
                self._gen.throw(SimulationError(
                    f"process {self.name!r} yielded non-event {out!r}"))
                return  # pragma: no cover
            if cbs is not None:
                # Not yet processed: register and suspend.
                cbs.append(self._bound_resume)
                self._target = out
                env._active = None
                return
            # Already processed: continue synchronously with its value.
            event = out


class ConditionEvent(Event):
    """Base for AllOf/AnyOf composite events.

    Once the composite triggers (or fails), its ``_on_fire`` callback is
    deregistered from every still-pending child so losing children do not
    keep dead references alive or grow their callback lists across long
    contention runs.
    """

    __slots__ = ("_events", "_remaining", "_bound_on_fire")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("mixing events from different environments")
        self._remaining = 0
        on_fire = self._bound_on_fire = self._on_fire
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev, immediate=True)
            else:
                self._remaining += 1
                ev.callbacks.append(on_fire)
        if not self.triggered:
            self._finalize_empty()
        elif self._remaining:
            self._detach()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, ev: Event, immediate: bool = False) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        """Deregister from children that have not fired yet."""
        on_fire = self._bound_on_fire
        for ev in self._events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(on_fire)
                except ValueError:
                    pass

    def _on_fire(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            self._detach()
            return
        self._remaining -= 1
        self._check(ev)
        if self._value is not _PENDING:
            self._detach()


class AllOf(ConditionEvent):
    """Fires (with the list of all values) when every child has fired."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])

    def _check(self, ev: Event, immediate: bool = False) -> None:
        if not immediate and self._remaining == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])
        elif immediate and not ev._ok:
            self.fail(ev._value)


class AnyOf(ConditionEvent):
    """Fires with the (first) firing child's value."""

    __slots__ = ()

    def _finalize_empty(self) -> None:
        if not self._events and not self.triggered:
            self.succeed(None)

    def _check(self, ev: Event, immediate: bool = False) -> None:
        if not self.triggered:
            if ev._ok:
                self.succeed(ev._value)
            else:
                self.fail(ev._value)


class Environment:
    """The simulation clock plus the event queue.

    Parameters
    ----------
    max_events:
        Backstop against runaway protocols.
    strict:
        When True (the default), an uncaught exception inside any process
        aborts :meth:`run` immediately -- the right behaviour for tests.
    watchdog_interval:
        Events between progress-watchdog checks; 0 disables the watchdog.
    watchdog_stalls:
        Consecutive stale checks (no :meth:`note_progress` calls anywhere)
        before :class:`~repro.errors.LivelockError` is raised.

    The watchdog is a pure observer: it reads counters, schedules nothing,
    and therefore cannot perturb event order or simulated time.  Protocol
    layers call :meth:`note_progress` at genuine success points (lock
    acquired, message matched, data op completed, process finished);
    retry/backoff loops do not, which is exactly what separates heavy
    contention (someone keeps succeeding) from livelock (nobody does).
    """

    def __init__(self, max_events: int = 200_000_000, strict: bool = True,
                 watchdog_interval: int = 0, watchdog_stalls: int = 3) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._nprocesses = 0
        self._active: Process | None = None
        self._live: set[Process] = set()
        self.max_events = max_events
        self.strict = strict
        self.events_processed = 0
        self.tracer = None  # installed by sim.trace.Tracer when wanted
        # Free list of fired single-waiter Timeouts (see module docstring).
        self._timeout_pool: list[Timeout] = []
        # Livelock watchdog state (see class docstring).
        self.progress_marks = 0
        self.watchdog_interval = int(watchdog_interval)
        self.watchdog_stalls = int(watchdog_stalls)
        self._wd_next = self.watchdog_interval or 0
        self._wd_marks = 0
        self._wd_stale = 0
        # rank-name -> last API call site, maintained by the runtime layer;
        # feeds deadlock/livelock diagnostics.
        self.api_sites: dict[str, str] = {}

    def note_progress(self) -> None:
        """Record one unit of protocol progress (watchdog heartbeat)."""
        self.progress_marks += 1

    def blocked_diagnostics(self) -> tuple[tuple[str, ...], dict[str, str]]:
        """Names of still-live processes plus where each one is stuck."""
        names = []
        sites: dict[str, str] = {}
        for proc in sorted(self._live, key=lambda p: p.name):
            names.append(proc.name)
            site = self.api_sites.get(proc.name)
            if site is None and proc._target is not None and proc._target.name:
                site = f"waiting on {proc._target.name}"
            if site is not None:
                sites[proc.name] = site
        return tuple(names), sites

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event construction ----------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None, priority: int = NORMAL) -> Timeout:
        """Schedule (possibly recycling) a timeout ``delay`` ns from now."""
        delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev._ok = True
            ev._value = value
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._ok = True
            ev._value = value
            ev.name = ""
        self._seq += 1
        heappush(self._queue, (self._now + delay, priority, self._seq, ev))
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), priority, self._seq, event))

    # -- main loop ---------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (reference implementation).

        :meth:`run`'s fast path inlines this body; the two must stay in
        semantic lockstep (``tests/sim`` asserts bit-identical runs).
        """
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        if self.tracer is not None:
            self.tracer.record(self._now, event)
        for cb in callbacks:
            cb(event)

    def run(self, until: Event | int | None = None, *, fast: bool = True) -> Any:
        """Run until ``until`` fires (event), the clock passes ``until``
        (int), or the queue drains.

        Returns the value of ``until`` when it is an event.  ``fast=False``
        selects the legacy one-:meth:`step`-per-event loop (same results,
        useful for A/B determinism checks and kernel benchmarking).
        """
        stop_event: Event | None = None
        stop_time: int | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = int(until)

        if fast and self.tracer is None:
            return self._run_fast(stop_event, stop_time)
        return self._run_step(stop_event, stop_time)

    def _run_step(self, stop_event: Event | None, stop_time: int | None) -> Any:
        """Legacy loop: one ``step()`` call per event, no timeout pooling."""
        while self._queue:
            if stop_event is not None and stop_event.processed:
                return stop_event.value if stop_event._ok else None
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            if self.events_processed >= self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events} "
                    f"(simulated t={self._now}ns) -- runaway protocol?")
            self.step()
            if self.watchdog_interval and self.events_processed >= self._wd_next:
                self._watchdog_check()
        return self._drained(stop_event)

    def _run_fast(self, stop_event: Event | None, stop_time: int | None) -> Any:
        """Hot loop: inlined :meth:`step` with locals bound outside the
        loop, no tracer branch, int-only watchdog check, and Timeout
        recycling.  Event order is identical to :meth:`_run_step`."""
        queue = self._queue
        pop = heappop
        nevents = self.events_processed
        max_events = self.max_events
        wd_interval = self.watchdog_interval
        wd_next = self._wd_next if wd_interval else 0
        tpool = self._timeout_pool
        timeout_cls = Timeout
        resume_fn = Process._resume
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    return stop_event._value if stop_event._ok else None
                if stop_time is not None and queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                if nevents >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(simulated t={self._now}ns) -- runaway protocol?")
                when, _prio, _seq, event = pop(queue)
                self._now = when
                cbs = event.callbacks
                event.callbacks = None
                nevents += 1
                for cb in cbs:
                    cb(event)
                # Recycle the ubiquitous `yield env.timeout(d)` case: a
                # plain Timeout whose sole consumer was one process resume.
                if event.__class__ is timeout_cls and len(cbs) == 1 \
                        and getattr(cbs[0], "__func__", None) is resume_fn:
                    cbs.clear()
                    event.callbacks = cbs
                    tpool.append(event)
                if wd_interval and nevents >= wd_next:
                    self.events_processed = nevents
                    self._watchdog_check()
                    wd_next = self._wd_next
        finally:
            self.events_processed = nevents
        return self._drained(stop_event)

    def _drained(self, stop_event: Event | None) -> Any:
        """Queue is empty: report the stop event or diagnose deadlock."""
        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value if stop_event._ok else None
            names, sites = self.blocked_diagnostics()
            raise DeadlockError(self._nprocesses, self._now, names, sites)
        if self._nprocesses > 0:
            names, sites = self.blocked_diagnostics()
            raise DeadlockError(self._nprocesses, self._now, names, sites)
        return None

    def _watchdog_check(self) -> None:
        # A sampling window must give every live process a chance to make
        # a mark: at 512+ ranks a few legitimate events per rank already
        # exceed a fixed 800-event window, so scale with the population
        # (false livelocks at scale; a real livelock still trips after
        # `watchdog_stalls` scaled windows with zero marks).
        self._wd_next = self.events_processed + max(
            self.watchdog_interval, 8 * self._nprocesses)
        if self.progress_marks != self._wd_marks or self._nprocesses == 0:
            self._wd_marks = self.progress_marks
            self._wd_stale = 0
            return
        self._wd_stale += 1
        if self._wd_stale >= self.watchdog_stalls:
            names, sites = self.blocked_diagnostics()
            raise LivelockError(
                self._now, self.events_processed,
                self._wd_stale * self.watchdog_interval, names, sites)
