"""CLI wrapper for the perf-regression gate.

Usage (what the CI perf-smoke job runs)::

    PYTHONPATH=src python benchmarks/perf_gate.py \
        --baseline benchmarks/baseline_simperf.json \
        --current BENCH_simperf.json

All logic lives in :mod:`repro.bench.perfgate` so it is importable and
unit-tested; this file only forwards argv.
"""

import sys

from repro.bench.perfgate import main

if __name__ == "__main__":
    sys.exit(main())
