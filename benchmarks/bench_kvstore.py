"""KV serving benchmark: RMA store vs the MPI-1 active-message comparator.

Open-loop Zipfian serving (``repro.serve``) at increasing client counts:
aggregate throughput and the exact p99 for both backends.  The sweep
fans out over the benchmark process pool and the content-addressed run
cache like every figure sweep; results land in the ``serve`` section of
``BENCH_simperf.json`` (via ``record_serve``), which ``perf_gate.py``
diffs against the committed baseline (req/s floors, unscaled: simulated
throughput is machine-independent).

What the curves show -- and the shape assertions pin:

* uncontended, one-sided access wins the median: at 4 clients the RMA
  get path (direct remote read under an idle stripe lock) undercuts the
  comparator's request/reply round trip;
* under Zipf-0.99 skew at 64 clients the *striped per-key lock*
  saturates: the hottest owner's stripe serializes ~15% of all traffic,
  throughput plateaus and the p99 explodes -- exactly the hotspot the
  serving report's key-skew heatmap and lock-contention section are
  built to diagnose.  The cheap-handler comparator keeps scaling here
  because its 60 ns handler is far shorter than a lock critical
  section; it models receiver *dispatch*, not receiver *interference*.
"""

from repro.bench import BenchPoint, Series, format_series_table, run_points
from repro.bench.appbench import kv_serve_stats

SERVE_PS = [4, 16, 64]
VARIANTS = ("rma", "mpi1")
TOTAL_REQUESTS = 6400
RATE_HZ = 5e4   # per client; drives the RMA store into its hot-stripe
                # saturation regime at p=64 (deterministically)
SEED = 1


def test_kv_serve(benchmark, record_series, record_serve):
    def run():
        points = [BenchPoint(kv_serve_stats, (variant, p, TOTAL_REQUESTS),
                             {"rate_hz": RATE_HZ, "seed": SEED})
                  for variant in VARIANTS for p in SERVE_PS]
        values = iter(run_points(points))
        return {variant: {p: next(values) for p in SERVE_PS}
                for variant in VARIANTS}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    thr, p99 = [], []
    for variant in VARIANTS:
        s_thr = Series(label=variant, meta={"unit": "req/s", "mode": "sim"})
        s_p99 = Series(label=variant, meta={"unit": "us", "mode": "sim"})
        for p in SERVE_PS:
            s_thr.add(p, stats[variant][p]["throughput_rps"])
            s_p99.add(p, round(stats[variant][p]["p99_ns"] / 1e3, 3))
        thr.append(s_thr)
        p99.append(s_p99)
    table = format_series_table(
        "KV serving: aggregate throughput [req/s] vs clients "
        f"(Zipf 0.99, {TOTAL_REQUESTS} requests)", "p", thr)
    table += "\n\n" + format_series_table(
        "KV serving: exact p99 [us] vs clients", "p", p99)
    record_series("kvstore", table, thr + p99)
    record_serve({
        "throughput_rps": {
            f"{variant}_p{p}": stats[variant][p]["throughput_rps"]
            for variant in VARIANTS for p in SERVE_PS},
        "p99_us": {
            f"{variant}_p{p}": round(stats[variant][p]["p99_ns"] / 1e3, 3)
            for variant in VARIANTS for p in SERVE_PS},
        "requests": TOTAL_REQUESTS,
        "rate_hz": RATE_HZ,
        "seed": SEED,
    })
    benchmark.extra_info["serve"] = stats

    by_thr = {s.label: s for s in thr}
    # Uncontended median: one-sided access beats the request/reply
    # round trip.
    assert stats["rma"][4]["p50_ns"] < stats["mpi1"][4]["p50_ns"]
    # Both backends' aggregate throughput rises with client count ...
    for variant in VARIANTS:
        assert by_thr[variant].ys[-1] > by_thr[variant].ys[0]
    # ... but the lock-striped store saturates under skew at p=64 (the
    # hot stripe serializes) while the comparator keeps scaling.
    assert by_thr["rma"].ys[-1] < 1.5 * by_thr["rma"].ys[-2]
    assert by_thr["mpi1"].ys[-1] > 2 * by_thr["mpi1"].ys[-2]
    # Saturation is visible where it should be: the RMA tail at p=64
    # blows past its p=16 value by an order of magnitude.
    assert stats["rma"][64]["p99_ns"] > 10 * stats["rma"][16]["p99_ns"]
