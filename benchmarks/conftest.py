"""Benchmark-suite configuration.

Each ``test_fig*`` target regenerates one figure/table of the paper: it
runs the simulated experiment, prints the series as a fixed-width table
(run with ``-s`` to see it), stores it in pytest-benchmark ``extra_info``,
and wraps the whole driver in ``benchmark`` so the usual
``pytest benchmarks/ --benchmark-only`` flow reports wall-clock cost of
regenerating each figure.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_series():
    """Print + persist a figure's series; returns the writer function."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, table: str, series: list) -> None:
        print()
        print(table)
        payload = [s.as_dict() if hasattr(s, "as_dict") else s
                   for s in series]
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1))
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")

    return _write
