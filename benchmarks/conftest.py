"""Benchmark-suite configuration.

Each ``test_fig*`` target regenerates one figure/table of the paper: it
runs the simulated experiment, prints the series as a fixed-width table
(run with ``-s`` to see it), stores it in pytest-benchmark ``extra_info``,
and wraps the whole driver in ``benchmark`` so the usual
``pytest benchmarks/ --benchmark-only`` flow reports wall-clock cost of
regenerating each figure.

Perf plumbing (see DESIGN.md, "Performance subsystem"):

* figure sweeps fan out over a process pool (``repro.bench.pool``) and
  consult the content-addressed run cache (``repro.bench.cache``);
* ``--no-cache`` forces every point to recompute (it sets
  ``REPRO_BENCH_CACHE=0`` for the whole session);
* at session end the per-figure wall times and the suite-wide pool/cache
  counters are merged into ``BENCH_simperf.json`` at the repo root, next
  to the kernel-throughput section written by ``bench_kernel.py``.
"""

import json
import os
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPORT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simperf.json"

_FIGURE_TIMES: dict[str, float] = {}
_SCALE_SECTION: dict = {}
_SERVE_SECTION: dict = {}


def pytest_addoption(parser):
    parser.addoption(
        "--no-cache", action="store_true", default=False,
        help="disable the content-addressed benchmark run cache "
             "(sets REPRO_BENCH_CACHE=0 for this session)")


def pytest_configure(config):
    if config.getoption("--no-cache", default=False):
        os.environ["REPRO_BENCH_CACHE"] = "0"


@pytest.fixture
def record_series(request):
    """Print + persist a figure's series; returns the writer function."""
    RESULTS_DIR.mkdir(exist_ok=True)
    t0 = time.perf_counter()

    def _write(name: str, table: str, series: list) -> None:
        _FIGURE_TIMES[name] = round(time.perf_counter() - t0, 3)
        print()
        print(table)
        payload = [s.as_dict() if hasattr(s, "as_dict") else s
                   for s in series]
        (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1))
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")

    return _write


@pytest.fixture
def record_scale():
    """Collect the hybrid scale-mode throughput section.

    ``bench_scale.py`` reports ranks-per-second and sampling fractions
    here; session finish merges them into ``BENCH_simperf.json`` under
    the ``"scale"`` key (sub-dicts merged key-wise, like figure walls,
    so a partial sweep never erases earlier sizes).
    """

    def _write(section: dict) -> None:
        for key, value in section.items():
            if isinstance(value, dict):
                _SCALE_SECTION.setdefault(key, {}).update(value)
            else:
                _SCALE_SECTION[key] = value

    return _write


@pytest.fixture
def record_serve():
    """Collect the KV-serving throughput/tail-latency section.

    ``bench_kvstore.py`` reports req/s and exact p99 per (variant, p)
    here; session finish merges them into ``BENCH_simperf.json`` under
    the ``"serve"`` key, same merge discipline as ``record_scale``.
    """

    def _write(section: dict) -> None:
        for key, value in section.items():
            if isinstance(value, dict):
                _SERVE_SECTION.setdefault(key, {}).update(value)
            else:
                _SERVE_SECTION[key] = value

    return _write


def pytest_sessionfinish(session, exitstatus):
    """Merge per-figure wall times + pool/cache totals into the report."""
    if not _FIGURE_TIMES and not _SCALE_SECTION and not _SERVE_SECTION:
        return
    try:
        from repro.bench.cache import cache_enabled, default_cache_dir
        from repro.bench.pool import default_workers, pool_totals
    except ImportError:
        return
    totals = pool_totals()
    # CI fan-out gate: when the workflow pins REPRO_BENCH_WORKERS above 1
    # it is asserting that the figure sweeps really used the process pool
    # -- a silent fall-back to serial execution would still pass the perf
    # job while measuring something else entirely.
    workers_pinned = int(os.environ.get("REPRO_BENCH_WORKERS") or 0)
    if workers_pinned > 1 and totals.executed > 1 and not totals.parallel:
        raise RuntimeError(
            f"REPRO_BENCH_WORKERS={workers_pinned} but no sweep ran in "
            f"parallel (points={totals.points}, executed={totals.executed});"
            " used_parallel must be true in the aggregated report")
    report = {}
    if REPORT.exists():
        try:
            report = json.loads(REPORT.read_text())
        except (ValueError, OSError):
            report = {}
    # Merge, don't replace: a partial session (say, fig4 alone) must not
    # erase the wall times the expensive figures (fig5-fig8) recorded in
    # an earlier session -- the kernel win on those would be invisible to
    # the perf gate otherwise.
    prior = report.get("figures", {}).get("wall_s", {})
    if isinstance(prior, dict):
        walls = {**prior, **_FIGURE_TIMES}
    else:  # pragma: no cover - malformed report
        walls = dict(_FIGURE_TIMES)
    if walls:
        report["figures"] = {"wall_s": dict(sorted(walls.items())),
                             "total_wall_s": round(sum(walls.values()), 3)}
    for section_key, collected in (("scale", _SCALE_SECTION),
                                   ("serve", _SERVE_SECTION)):
        if not collected:
            continue
        prior_sec = report.get(section_key, {})
        merged = dict(prior_sec) if isinstance(prior_sec, dict) else {}
        for key, value in collected.items():
            if isinstance(value, dict) and isinstance(merged.get(key), dict):
                merged[key] = {**merged[key], **value}
            else:
                merged[key] = value
        report[section_key] = merged
    report["pool"] = {"workers": default_workers(),
                      "points": totals.points,
                      "executed": totals.executed,
                      "used_parallel": totals.parallel}
    hit_rate = (totals.cache_hits / totals.points) if totals.points else 0.0
    report["cache"] = {"enabled": cache_enabled(),
                       "dir": str(default_cache_dir()),
                       "hits": totals.cache_hits,
                       "misses": totals.executed,
                       "hit_rate": round(hit_rate, 3)}
    try:
        REPORT.write_text(json.dumps(report, indent=1) + "\n")
    except OSError:
        pass
