"""Fault-tolerance overhead benchmark (rollback-recovery layer).

Measures what the FT machinery costs when nothing fails and what a
recovery costs when something does, on the crash-recoverable hashtable
workload (``repro.ft.workloads``):

* failure-free overhead: simulated completion time with coordinated
  buddy checkpointing at several intervals, against the same workload
  with FT disabled entirely -- the classic checkpoint-interval trade
  (tighter intervals cost more in the steady state but replay less on
  restart);
* recovery cost: one mid-run crash per interval, reporting restart lag
  (recovered vs fault-free completion time) and the restored state's
  bit-identity to the fault-free run.

Results land in the ``ft`` section of ``BENCH_simperf.json``, next to
the kernel and figure sections.
"""

import json
import pathlib

from repro.ft.workloads import run_crash_to_completion, run_reference, table_bytes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_simperf.json"

#: Checkpoint intervals (inserts between coordination points); >=3 so the
#: report shows the overhead curve, not a single point.
INTERVALS = (1, 2, 4)
NRANKS = 4
INSERTS = 8


def _merge_report(section, payload):
    report = {}
    if REPORT.exists():
        try:
            report = json.loads(REPORT.read_text())
        except (ValueError, OSError):
            report = {}
    report[section] = payload
    REPORT.write_text(json.dumps(report, indent=1) + "\n")


def test_ft_overhead(benchmark):
    baseline = run_reference(NRANKS, INSERTS, ft_on=False)
    base_ns = baseline.sim_time_ns

    def sweep():
        rows = []
        for interval in INTERVALS:
            ref = run_reference(NRANKS, INSERTS, interval=interval)
            ft = ref.stats.get("ft", {})
            out = run_crash_to_completion(NRANKS, INSERTS,
                                          interval=interval)
            assert out.match, (interval, "recovered state diverged")
            assert table_bytes(ref) == table_bytes(baseline), (
                interval, "checkpointing perturbed the final state")
            rows.append({
                "interval": interval,
                "base_sim_ns": base_ns,
                "ft_sim_ns": ref.sim_time_ns,
                "overhead": round(ref.sim_time_ns / base_ns - 1.0, 4),
                "checkpoints_taken": ft.get("checkpoints_taken", 0),
                "checkpoint_bytes": ft.get("checkpoint_bytes", 0),
                "recovered_sim_ns": out.recovered.sim_time_ns,
                "restart_lag_ns": (out.recovered.sim_time_ns
                                   - ref.sim_time_ns),
                "entries_replayed": out.recovered.stats.get(
                    "ft", {}).get("entries_replayed", 0),
                "match": out.match,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    payload = {"nranks": NRANKS, "inserts_per_rank": INSERTS,
               "baseline_sim_ns": base_ns, "intervals": rows}
    _merge_report("ft", payload)
    print()
    for r in rows:
        print(f"interval {r['interval']}: overhead "
              f"{100 * r['overhead']:5.1f}%  "
              f"({r['checkpoints_taken']} ckpts, "
              f"{r['checkpoint_bytes']} B), recovery lag "
              f"{r['restart_lag_ns'] / 1e3:.1f} us, "
              f"replayed {r['entries_replayed']}")
    assert len(rows) >= 3
    # Checkpointing must never change the computed answer, and more
    # frequent checkpoints must not reduce the checkpoint count.
    counts = [r["checkpoints_taken"] for r in rows]
    assert counts == sorted(counts, reverse=True), counts
    benchmark.extra_info["ft"] = payload
