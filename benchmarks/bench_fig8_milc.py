"""Figure 8: MILC proxy full-solve time, weak scaling, with the
foMPI/UPC-over-MPI-1 improvement annotations."""

from repro.apps.milc import MilcSpec
from repro.bench import BenchPoint, Series, format_series_table, run_points
from repro.bench.appbench import milc_time_s

PS = [8, 32, 128]
SPEC = MilcSpec(local=(4, 4, 4, 8), maxiter=25, tol=0.0)


def test_fig8_milc(benchmark, record_series):
    def run():
        variant_labels = (("mpi1", "mpi1"), ("rma", "fompi"),
                          ("upc", "upc"))
        points = [BenchPoint(milc_time_s, (variant, p, SPEC))
                  for variant, _label in variant_labels for p in PS]
        values = iter(run_points(points))
        series = []
        for variant, label in variant_labels:
            s = Series(label=label,
                       meta={"unit": "ms (simulated)", "mode": "sim",
                             "local_lattice": "4^3 x 8, 25 CG iterations"})
            for p in PS:
                s.add(p, round(next(values) * 1e3, 3))
            series.append(s)
        imp = Series(label="fompi improvement %", meta={"mode": "derived"})
        mpi = next(s for s in series if s.label == "mpi1")
        fom = next(s for s in series if s.label == "fompi")
        for p, m, f in zip(PS, mpi.ys, fom.ys):
            imp.add(p, round(100 * (m - f) / m, 1))
        series.append(imp)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 8: MILC proxy completion time [ms] vs processes "
        "(weak scaling)", "p", series)
    record_series("fig8", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    imp = next(s for s in series if s.label == "fompi improvement %")
    # The paper reports 5-15% full-application improvement.
    assert all(2.0 <= v <= 25.0 for v in imp.ys), imp.ys
    upc = next(s for s in series if s.label == "upc")
    fom = next(s for s in series if s.label == "fompi")
    for u, f in zip(upc.ys, fom.ys):
        assert abs(u - f) / f < 0.15     # "essentially the same performance"


def test_fig8_milc_hybrid(benchmark, record_series):
    """Figure 8 extended to paper scale (512Ki/1Mi) on the hybrid engine.

    Weak scaling: the O(log p) reduction term is measured per size on
    the hybrid DES (tier-parity + bound checked) and added to the
    committed full-fidelity anchor at p=128.
    """
    from repro.scale.figures import (FIG8_ANCHOR_P, FIG8_ANCHORS,
                                     MILC_PS_HYBRID, fig8_hybrid_series)

    def run():
        return fig8_hybrid_series(MILC_PS_HYBRID)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 8 (hybrid): MILC proxy completion time [ms] to 1Mi "
        "processes (weak scaling)", "p", series)
    record_series("fig8_hybrid", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    by = {s.label: s for s in series}
    # Continuity with the full-fidelity curves at the overlap size.
    assert by["fompi"].xs[0] == FIG8_ANCHOR_P
    for label in ("mpi1", "fompi", "upc"):
        anchor = FIG8_ANCHORS[label]
        assert abs(by[label].ys[0] - anchor) / anchor < 0.01, by[label].ys
    imp = next(s for s in series if s.label == "fompi improvement %")
    # The paper's 5-15% full-application band holds out to 1Mi ranks
    # (allowing the same slack as the full-fidelity assertion).
    assert all(2.0 <= v <= 25.0 for v in imp.ys), imp.ys
    for u, f in zip(by["upc"].ys, by["fompi"].ys):
        assert abs(u - f) / f < 0.15
