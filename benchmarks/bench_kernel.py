"""DES kernel event-throughput microbenchmarks and the gen-2 A/B gate.

Measures the raw event rate of :mod:`repro.sim.kernel` ("generation 2":
front-slot scheduler, event recycling, batched delivery) on two synthetic
workloads and on one full-stack run, then writes the machine-readable
perf report ``BENCH_simperf.json`` at the repository root (the per-figure
wall-clock and cache sections are appended by ``conftest.py`` at session
end, so this file is the report's anchor).

The A/B baseline is the **frozen pre-gen-2 kernel** checked in as
``benchmarks/_pr2_kernel.py``: every workload runs on both kernels, in
both loop modes, interleaved in one process so the ratios are immune to
machine speed.  Three properties gate:

* **bit identity** -- all four (kernel x loop) variants process the
  exact same schedule (event count + final sim clock);
* **fast_over_legacy** -- gen-2 ``run(fast=True)`` over the frozen
  kernel's reference ``step()`` loop must stay >= 1.8x (measured
  ~2.1-2.2x in the dev container);
* an absolute events/sec floor, generous because CI machines vary.

Workloads
---------
ring
    ``NPROC`` processes passing a token with ``yield env.timeout(...)`` --
    the pure scheduler loop, dominated by queue churn and Timeout/Event
    allocation (the fast path recycles both and keeps the strict-min
    entry in the front slot: ~100% front-hit rate).
put/get pattern
    An origin/NIC generator pair mimicking the kernel-level shape of a
    flushed fompi put: descriptor-write timeout, a NIC service event
    chain, and an URGENT remote-completion wakeup (~58% front-hit rate).
full stack
    ``run_spmd`` over the fompi put ping, as the figures exercise it.
"""

import importlib.util
import json
import pathlib
import time

from repro import run_spmd
from repro.bench import microbench as mb
from repro.sim.kernel import URGENT, Environment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_simperf.json"

RING_NPROC = 64
RING_STEPS = 4000          # ~= RING_NPROC * RING_STEPS * 2 events
PUTGET_N = 30_000
# Best-of rounds: interleaved A/B ratios still jitter a few percent in
# noisy containers; five rounds keeps the 1.8x gate out of the noise.
BEST_OF = 5

# Generous absolute floor: the container sustains >1M ev/s on the gen-2
# fast path; CI machines vary wildly, so assert an order of magnitude
# below (ratcheted from the pre-gen-2 floor of 40k).
EVENTS_PER_SEC_FLOOR = 80_000.0
# The A/B ratio gate is machine-independent (both sides measured
# interleaved in one process): gen-2 fast loop vs the frozen PR-2
# kernel's reference step loop.
FAST_OVER_LEGACY_FLOOR = 1.8


def _load_pr2_kernel():
    """The frozen pre-gen-2 kernel (benchmark fixture, not product)."""
    path = pathlib.Path(__file__).parent / "_pr2_kernel.py"
    spec = importlib.util.spec_from_file_location("pr2_kernel", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


PR2 = _load_pr2_kernel()


def _ring_proc(env, idx, inboxes, steps):
    nproc = len(inboxes)
    for _ in range(steps):
        yield inboxes[idx]
        inboxes[idx] = env.event()
        yield env.timeout(10)
        nxt = (idx + 1) % nproc
        inboxes[nxt].succeed(None)


def _build_ring(env, nproc=RING_NPROC, steps=RING_STEPS):
    inboxes = [env.event() for _ in range(nproc)]
    for i in range(nproc):
        env.process(_ring_proc(env, i, inboxes, steps), name=f"ring{i}")
    inboxes[0].succeed(None, delay=1)


def _putget_origin(env, n, nic_ev):
    for _ in range(n):
        yield env.timeout(40)              # descriptor write / o_inject
        ev = env.event()
        nic_ev.append(ev)
        done = env.event()
        ev.succeed(done, delay=700)        # wire + ejection service
        yield done                         # flush: wait remote completion


def _putget_nic(env, n, nic_ev):
    served = 0
    while served < n:
        while not nic_ev:
            yield env.timeout(10)          # poll
        ev = nic_ev.pop()
        done = yield ev
        done.succeed(None, delay=50, priority=URGENT)
        served += 1


def _build_putget(env, n=PUTGET_N):
    nic_ev = []
    env.process(_putget_origin(env, n, nic_ev), name="origin")
    env.process(_putget_nic(env, n, nic_ev), name="nic")


#: (label, Environment factory, fast flag) -- the four A/B variants.
_VARIANTS = [
    ("gen2_fast", Environment, True),
    ("gen2_oracle", Environment, False),
    ("pr2_fast", PR2.Environment, True),
    ("pr2_legacy", PR2.Environment, False),
]


def _measure_all(build, best_of=BEST_OF):
    """Interleaved best-of-N over all four variants (one process, one
    ordering per round, so the ratios survive noisy containers)."""
    best = {}
    for _ in range(best_of):
        for label, env_cls, fast in _VARIANTS:
            env = env_cls()
            build(env)
            t0 = time.perf_counter()
            env.run(fast=fast)
            wall = time.perf_counter() - t0
            cur = best.get(label)
            if cur is None or wall < cur["wall_s"]:
                best[label] = {
                    "events": env.events_processed, "sim_t": env.now,
                    "wall_s": wall,
                    "events_per_sec": env.events_processed / wall}
    return best


def _bench_workload(name, build):
    r = _measure_all(build)
    # Bit identity: every kernel/loop combination processes exactly the
    # same schedule (event count + final clock).
    sched = {(v["events"], v["sim_t"]) for v in r.values()}
    assert len(sched) == 1, (name, r)
    return {
        "workload": name,
        "events": r["gen2_fast"]["events"],
        "sim_time_ns": r["gen2_fast"]["sim_t"],
        "fast_events_per_sec": round(r["gen2_fast"]["events_per_sec"], 1),
        "oracle_events_per_sec": round(r["gen2_oracle"]["events_per_sec"], 1),
        "pr2_fast_events_per_sec": round(r["pr2_fast"]["events_per_sec"], 1),
        "legacy_events_per_sec": round(r["pr2_legacy"]["events_per_sec"], 1),
        # The headline A/B gate: gen-2 fast loop vs the frozen PR-2
        # kernel's reference step loop.
        "fast_over_legacy": round(
            r["gen2_fast"]["events_per_sec"]
            / r["pr2_legacy"]["events_per_sec"], 3),
        # Generation-over-generation fast-path speedup (same loop mode).
        "gen2_over_pr2_fast": round(
            r["gen2_fast"]["events_per_sec"]
            / r["pr2_fast"]["events_per_sec"], 3),
    }


def _full_stack_program(ctx):
    """A real fompi put+flush ping, as the Figure 4 driver runs it."""
    import numpy as np
    data = np.ones(8, np.uint8)
    win = yield from ctx.rma.win_allocate(8)
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        for _ in range(64):
            yield from win.put(data, 1, 0)
            yield from win.flush(1)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    return ctx.now


def _full_stack_rate():
    """Events/sec of a real run_spmd fompi put ping (best of N)."""
    best = None
    for _ in range(BEST_OF):
        t0 = time.perf_counter()
        res = run_spmd(_full_stack_program, 2, machine=mb.INTER_2)
        wall = time.perf_counter() - t0
        rate = res.events_processed / wall
        if best is None or rate > best["events_per_sec"]:
            best = {"workload": "full_stack_putget",
                    "events": res.events_processed,
                    "sim_time_ns": res.sim_time_ns,
                    "events_per_sec": round(rate, 1)}
    return best


def _merge_report(section, payload):
    """Update one section of BENCH_simperf.json, keeping the others."""
    report = {}
    if REPORT.exists():
        try:
            report = json.loads(REPORT.read_text())
        except (ValueError, OSError):
            report = {}
    report[section] = payload
    REPORT.write_text(json.dumps(report, indent=1) + "\n")
    return report


def test_kernel_throughput(benchmark):
    """Kernel event-rate floor + four-way A/B bit-identity + ratio gate."""

    def run():
        return [_bench_workload("ring", _build_ring),
                _bench_workload("putget_pattern", _build_putget)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    full = _full_stack_rate()
    payload = {"workloads": rows, "full_stack": full,
               "baseline_kernel": "benchmarks/_pr2_kernel.py",
               "floor_events_per_sec": EVENTS_PER_SEC_FLOOR,
               "floor_fast_over_legacy": FAST_OVER_LEGACY_FLOOR}
    _merge_report("kernel", payload)
    print()
    for r in rows:
        print(f"{r['workload']:>16}: gen2 {r['fast_events_per_sec']:>11,.0f}"
              f" ev/s  pr2-legacy {r['legacy_events_per_sec']:>11,.0f} ev/s"
              f"  ({r['fast_over_legacy']:.2f}x A/B,"
              f" {r['gen2_over_pr2_fast']:.2f}x vs pr2-fast)")
    print(f"{full['workload']:>16}: {full['events_per_sec']:>11,.0f} ev/s")
    for r in rows:
        assert r["fast_events_per_sec"] > EVENTS_PER_SEC_FLOOR, r
        # The kernel A/B gate: the gen-2 fast loop must beat the frozen
        # pre-gen-2 reference loop by the ratcheted factor.  Interleaved
        # same-process measurement makes this machine-independent.
        assert r["fast_over_legacy"] >= FAST_OVER_LEGACY_FLOOR, r
    benchmark.extra_info["kernel"] = payload
