"""DES kernel event-throughput microbenchmarks.

Measures the raw event rate of :mod:`repro.sim.kernel` on two synthetic
workloads and on one full-stack run, then writes the machine-readable
perf report ``BENCH_simperf.json`` at the repository root (the per-figure
wall-clock and cache sections are appended by ``conftest.py`` at session
end, so this file is the report's anchor).

Workloads
---------
ring
    ``NPROC`` processes passing a token with ``yield env.timeout(...)`` --
    the pure scheduler loop, dominated by heap churn and Timeout
    allocation (the fast path recycles those).
put/get pattern
    An origin/NIC generator pair mimicking the kernel-level shape of a
    flushed fompi put: descriptor-write timeout, a NIC service event
    chain, and an URGENT remote-completion wakeup.  This is the workload
    the ISSUE's >=1.5x fast-path target is quoted against (measured vs
    the pre-PR kernel; the in-repo ``fast=False`` legacy loop also
    benefits from the Event/Process optimizations, so the in-repo ratio
    is smaller but must stay >= 1.0).
full stack
    ``run_spmd`` over the fompi put ping, as the figures exercise it.

Every fast-path run is checked bit-identical (events processed and final
sim time) to the ``fast=False`` legacy step loop before any rate is
reported.
"""

import json
import pathlib
import time

from repro import run_spmd
from repro.bench import microbench as mb
from repro.sim.kernel import URGENT, Environment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
REPORT = REPO_ROOT / "BENCH_simperf.json"

RING_NPROC = 64
RING_STEPS = 4000          # ~= RING_NPROC * RING_STEPS * 2 events
PUTGET_N = 30_000
BEST_OF = 3

# Generous floor: the container sustains ~400-800k ev/s on these loops;
# CI machines vary wildly, so assert only an order of magnitude below.
EVENTS_PER_SEC_FLOOR = 40_000.0


def _ring_proc(env, idx, inboxes, steps):
    nproc = len(inboxes)
    for _ in range(steps):
        yield inboxes[idx]
        inboxes[idx] = env.event()
        yield env.timeout(10)
        nxt = (idx + 1) % nproc
        inboxes[nxt].succeed(None)


def _build_ring(env, nproc=RING_NPROC, steps=RING_STEPS):
    inboxes = [env.event() for _ in range(nproc)]
    for i in range(nproc):
        env.process(_ring_proc(env, i, inboxes, steps), name=f"ring{i}")
    inboxes[0].succeed(None, delay=1)


def _putget_origin(env, n, nic_ev):
    for _ in range(n):
        yield env.timeout(40)              # descriptor write / o_inject
        ev = env.event()
        nic_ev.append(ev)
        done = env.event()
        ev.succeed(done, delay=700)        # wire + ejection service
        yield done                         # flush: wait remote completion


def _putget_nic(env, n, nic_ev):
    served = 0
    while served < n:
        while not nic_ev:
            yield env.timeout(10)          # poll
        ev = nic_ev.pop()
        done = yield ev
        done.succeed(None, delay=50, priority=URGENT)
        served += 1


def _build_putget(env, n=PUTGET_N):
    nic_ev = []
    env.process(_putget_origin(env, n, nic_ev), name="origin")
    env.process(_putget_nic(env, n, nic_ev), name="nic")


def _measure(build, *, fast, best_of=BEST_OF):
    """Best-of-N wall time for one workload; returns a result dict."""
    best = None
    for _ in range(best_of):
        env = Environment()
        build(env)
        t0 = time.perf_counter()
        env.run(fast=fast)
        wall = time.perf_counter() - t0
        if best is None or wall < best["wall_s"]:
            best = {"events": env.events_processed, "sim_t": env.now,
                    "wall_s": wall,
                    "events_per_sec": env.events_processed / wall}
    return best


def _bench_workload(name, build):
    fast = _measure(build, fast=True)
    legacy = _measure(build, fast=False)
    # Bit-identity: the fast path must process exactly the legacy
    # schedule (same event count, same final clock).
    assert fast["events"] == legacy["events"], (name, fast, legacy)
    assert fast["sim_t"] == legacy["sim_t"], (name, fast, legacy)
    return {
        "workload": name,
        "events": fast["events"],
        "sim_time_ns": fast["sim_t"],
        "fast_events_per_sec": round(fast["events_per_sec"], 1),
        "legacy_events_per_sec": round(legacy["events_per_sec"], 1),
        "fast_over_legacy": round(
            fast["events_per_sec"] / legacy["events_per_sec"], 3),
    }


def _full_stack_program(ctx):
    """A real fompi put+flush ping, as the Figure 4 driver runs it."""
    import numpy as np
    data = np.ones(8, np.uint8)
    win = yield from ctx.rma.win_allocate(8)
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        for _ in range(64):
            yield from win.put(data, 1, 0)
            yield from win.flush(1)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    return ctx.now


def _full_stack_rate():
    """Events/sec of a real run_spmd fompi put ping (best of N)."""
    best = None
    for _ in range(BEST_OF):
        t0 = time.perf_counter()
        res = run_spmd(_full_stack_program, 2, machine=mb.INTER_2)
        wall = time.perf_counter() - t0
        rate = res.events_processed / wall
        if best is None or rate > best["events_per_sec"]:
            best = {"workload": "full_stack_putget",
                    "events": res.events_processed,
                    "sim_time_ns": res.sim_time_ns,
                    "events_per_sec": round(rate, 1)}
    return best


def _merge_report(section, payload):
    """Update one section of BENCH_simperf.json, keeping the others."""
    report = {}
    if REPORT.exists():
        try:
            report = json.loads(REPORT.read_text())
        except (ValueError, OSError):
            report = {}
    report[section] = payload
    REPORT.write_text(json.dumps(report, indent=1) + "\n")
    return report


def test_kernel_throughput(benchmark):
    """Kernel event-rate floor + fast-vs-legacy bit-identity."""

    def run():
        return [_bench_workload("ring", _build_ring),
                _bench_workload("putget_pattern", _build_putget)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    full = _full_stack_rate()
    payload = {"workloads": rows, "full_stack": full,
               "floor_events_per_sec": EVENTS_PER_SEC_FLOOR}
    _merge_report("kernel", payload)
    print()
    for r in rows:
        print(f"{r['workload']:>16}: fast {r['fast_events_per_sec']:>11,.0f}"
              f" ev/s  legacy {r['legacy_events_per_sec']:>11,.0f} ev/s"
              f"  ({r['fast_over_legacy']:.2f}x)")
    print(f"{full['workload']:>16}: {full['events_per_sec']:>11,.0f} ev/s")
    for r in rows:
        assert r["fast_events_per_sec"] > EVENTS_PER_SEC_FLOOR, r
        # The fast path must never be slower than the legacy loop by more
        # than timer noise.
        assert r["fast_over_legacy"] > 0.9, r
    benchmark.extra_info["kernel"] = payload
