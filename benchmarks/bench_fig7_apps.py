"""Figure 7: application motifs.

(a) distributed hashtable inserts/s, (b) DSDE exchange time,
(c) 3-D FFT performance with the foMPI-over-MPI-1 improvement annotations.
"""

from repro.apps.fft import FftSpec
from repro.bench import BenchPoint, Series, format_series_table, run_points
from repro.bench.appbench import dsde_time_us, fft_gflops, hashtable_rate

HT_PS = [2, 8, 32, 128, 512]     # 32 ranks/node: knee at p=32
DSDE_PS = [4, 16, 64, 256]
FFT_PS = [8, 32, 128]            # 2 ranks/node: inter-node transposes,
                                 # as at the paper's 1k-64k scale


def test_fig7a_hashtable(benchmark, record_series):
    def run():
        variants = ("fompi", "upc", "mpi1")
        points = [BenchPoint(hashtable_rate, (variant, p, 64))
                  for variant in variants for p in HT_PS]
        values = iter(run_points(points))
        series = []
        for variant in variants:
            s = Series(label=variant,
                       meta={"unit": "Minserts/s", "mode": "sim",
                             "inserts_per_rank": 64})
            for p in HT_PS:
                s.add(p, round(next(values) / 1e6, 3))
            series.append(s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7a: hashtable inserts [M/s] vs processes (32 ranks/node)",
        "p", series)
    record_series("fig7a", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    mpi1 = next(s for s in series if s.label == "mpi1")
    upc = next(s for s in series if s.label == "upc")
    # shape: past the intra->inter knee (p=128) foMPI/UPC resume
    # near-linear aggregate scaling while MPI-1's rate stays flat
    # ("the insert rate of a single node cannot be achieved...").
    assert fompi.ys[-1] > 2 * fompi.ys[-2]
    assert fompi.ys[-1] > 2 * mpi1.ys[-1]
    assert abs(fompi.ys[-1] - upc.ys[-1]) / fompi.ys[-1] < 0.5


def test_fig7a_hashtable_hybrid(benchmark, record_series):
    """Figure 7a extended to paper scale (512Ki/1Mi) on the hybrid engine.

    Every point's sync term comes from a hybrid run that carries the
    engine's tier-parity and O(log p) bound checks; the curves are
    pinned to the committed full-fidelity values at the overlap size,
    so continuity at p=512 is asserted, not assumed.
    """
    from repro.scale.figures import (FIG7A_ANCHOR_P, FIG7A_ANCHORS,
                                     HT_PS_HYBRID, fig7a_hybrid_series)

    def run():
        return fig7a_hybrid_series(HT_PS_HYBRID)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7a (hybrid): hashtable inserts [M/s] to 1Mi processes "
        "(32 ranks/node)", "p", series)
    record_series("fig7a_hybrid", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    by = {s.label: s for s in series}
    fompi, upc, mpi1 = by["fompi"], by["upc"], by["mpi1"]
    # Continuity: the hybrid curve passes through the full-fidelity
    # anchor at the overlap size.
    assert fompi.xs[0] == FIG7A_ANCHOR_P
    for label in ("fompi", "upc", "mpi1"):
        anchor = FIG7A_ANCHORS[label]
        assert abs(by[label].ys[0] - anchor) / anchor < 0.01, by[label].ys
    # shape: foMPI/UPC near-linear aggregate scaling over the 2048x
    # extension (sub-linear only by the O(log p) sync growth)...
    assert fompi.ys[-1] / fompi.ys[0] > 1024
    assert abs(fompi.ys[-1] - upc.ys[-1]) / fompi.ys[-1] < 0.5
    # ... while MPI-1 stays flat-to-declining, orders of magnitude under.
    assert mpi1.ys[-1] <= mpi1.ys[0]
    assert fompi.ys[-1] > 2 * mpi1.ys[-1]


def test_fig7b_dsde(benchmark, record_series):
    protocols = ["alltoall", "reduce_scatter", "nbx", "rma", "rma_cray22"]

    def run():
        points = [BenchPoint(dsde_time_us, (proto, p, 6))
                  for proto in protocols for p in DSDE_PS]
        values = iter(run_points(points))
        series = []
        for proto in protocols:
            s = Series(label=proto, meta={"unit": "us", "mode": "sim",
                                          "k": 6})
            for p in DSDE_PS:
                s.add(p, round(next(values), 1))
            series.append(s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7b: DSDE time [us] vs processes (k=6 random neighbors)",
        "p", series)
    record_series("fig7b", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    by = {s.label: s for s in series}
    # shape: RMA competitive with NBX; both far below alltoall at scale;
    # Cray MPI-2.2 RMA far slower than foMPI's.
    assert by["rma"].ys[-1] < by["alltoall"].ys[-1]
    assert by["rma"].ys[-1] < 3 * by["nbx"].ys[-1]
    assert by["rma_cray22"].ys[-1] > 1.5 * by["rma"].ys[-1]


def test_fig7c_fft(benchmark, record_series):
    spec = FftSpec(nx=64, ny=64, nz=64, flop_rate=2.5e10, chunks=4)

    def run():
        variant_labels = (("mpi1", "mpi1"), ("rma_overlap", "fompi"),
                          ("upc_overlap", "upc"))
        points = [BenchPoint(fft_gflops, (variant, p, spec),
                             {"ranks_per_node": 2})
                  for variant, _label in variant_labels for p in FFT_PS]
        values = iter(run_points(points))
        series = []
        for variant, label in variant_labels:
            s = Series(label=label,
                       meta={"unit": "GFlop/s", "mode": "sim",
                             "grid": "64^3 mini (class-D shape, "
                                     "see EXPERIMENTS.md)"})
            for p in FFT_PS:
                s.add(p, round(next(values), 3))
            series.append(s)
        imp = Series(label="fompi improvement %", meta={"mode": "derived"})
        mpi = next(s for s in series if s.label == "mpi1")
        fom = next(s for s in series if s.label == "fompi")
        for p, m, f in zip(FFT_PS, mpi.ys, fom.ys):
            imp.add(p, round(100 * (f - m) / m, 1))
        series.append(imp)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 7c: 3-D FFT performance [GFlop/s] vs processes",
        "p", series)
    record_series("fig7c", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    imp = next(s for s in series if s.label == "fompi improvement %")
    assert all(v > 0 for v in imp.ys)       # foMPI beats MPI-1 everywhere
