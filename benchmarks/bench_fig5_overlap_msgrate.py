"""Figure 5: (a) communication/computation overlap, (b) inter-node message
rate, (c) intra-node message rate."""

from repro.bench import BenchPoint, Series, format_series_table, run_points
from repro.bench import microbench as mb

OVERLAP_SIZES = [8, 512, 4096, 32768, 262144, 2097152]
RATE_SIZES = [8, 64, 512, 4096, 32768, 262144]
OVERLAP_TRANSPORTS = ("fompi", "upc", "cray22")


def test_fig5a_overlap(benchmark, record_series):
    def run():
        points = [BenchPoint(mb.overlap_fraction, (transport, size))
                  for transport in OVERLAP_TRANSPORTS
                  for size in OVERLAP_SIZES]
        values = iter(run_points(points))
        series = []
        for transport in OVERLAP_TRANSPORTS:
            s = Series(label=transport, meta={"unit": "%", "mode": "sim"})
            for size in OVERLAP_SIZES:
                s.add(size, round(100 * next(values), 1))
            series.append(s)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 5a: communication/computation overlap [%] vs size [B]",
        "size", series)
    record_series("fig5a", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    cray = next(s for s in series if s.label == "cray22")
    assert fompi.ys[-1] > 85          # large puts overlap almost fully
    assert cray.ys[0] > fompi.ys[0]   # MPI-2.2's latency hides more early


def _rate_series(intra: bool):
    points = [BenchPoint(mb.message_rate, (transport, size),
                         {"intra": intra,
                          "nmsgs": 400 if size <= 4096 else 120})
              for transport in mb.LATENCY_TRANSPORTS
              for size in RATE_SIZES]
    values = iter(run_points(points))
    series = []
    for transport in mb.LATENCY_TRANSPORTS:
        s = Series(label=transport, meta={"unit": "Mmsg/s", "mode": "sim"})
        for size in RATE_SIZES:
            s.add(size, round(next(values) / 1e6, 4))
        series.append(s)
    return series


def test_fig5b_message_rate_inter(benchmark, record_series):
    series = benchmark.pedantic(lambda: _rate_series(False),
                                rounds=1, iterations=1)
    table = format_series_table(
        "Figure 5b: inter-node message rate [M msgs/s] vs size [B]",
        "size", series)
    record_series("fig5b", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    assert 2.0 <= fompi.ys[0] <= 2.6   # ~2.4 M/s at 8 B (416 ns injection)


def test_fig5c_message_rate_intra(benchmark, record_series):
    series = benchmark.pedantic(lambda: _rate_series(True),
                                rounds=1, iterations=1)
    table = format_series_table(
        "Figure 5c: intra-node message rate [M msgs/s] vs size [B]",
        "size", series)
    record_series("fig5c", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    assert fompi.ys[0] > 5.0           # ~12.5 M/s at 8 B (80 ns store)
