"""Figure 4: put/get latency across transports.

(a) inter-node Put, (b) inter-node Get, (c) intra-node Put/Get -- five
transports, 8 B to 256 KiB, with the paper's fitted model overlaid for
foMPI.
"""

import pytest

from repro.bench import BenchPoint, Series, format_series_table, run_points
from repro.bench import microbench as mb
from repro.models.params_fompi import paper_model

SIZES = [8, 64, 512, 4096, 32768, 262144]


def _latency_series(direction: str, intra: bool):
    fn = mb.put_latency if direction == "put" else mb.get_latency
    points = [BenchPoint(fn, (transport, size), {"intra": intra})
              for transport in mb.LATENCY_TRANSPORTS for size in SIZES]
    values = iter(run_points(points))
    series = []
    for transport in mb.LATENCY_TRANSPORTS:
        s = Series(label=transport, meta={"unit": "us", "mode": "sim"})
        for size in SIZES:
            s.add(size, round(next(values) / 1e3, 3))
        series.append(s)
    model = paper_model(direction)
    ref = Series(label="paper-model", meta={"unit": "us", "mode": "model"})
    for size in SIZES:
        ref.add(size, round(model(s=size) / 1e3, 3))
    if not intra:
        series.append(ref)
    return series


def test_fig4a_put_latency_inter(benchmark, record_series):
    def run():
        return _latency_series("put", intra=False)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 4a: inter-node Put latency [us] vs size [B]",
        "size", series)
    record_series("fig4a", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    fompi = next(s for s in series if s.label == "fompi")
    ref = next(s for s in series if s.label == "paper-model")
    for got, want in zip(fompi.ys, ref.ys):
        assert abs(got - want) / want < 0.35


def test_fig4b_get_latency_inter(benchmark, record_series):
    def run():
        return _latency_series("get", intra=False)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 4b: inter-node Get latency [us] vs size [B]",
        "size", series)
    record_series("fig4b", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]


def test_fig4c_latency_intra(benchmark, record_series):
    def run():
        put = _latency_series("put", intra=True)
        get = _latency_series("get", intra=True)
        for s in get:
            s.label = f"{s.label}-get"
        return put + get

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_series_table(
        "Figure 4c: intra-node Put/Get latency [us] vs size [B]",
        "size", series)
    record_series("fig4c", table, series)
    benchmark.extra_info["series"] = [s.as_dict() for s in series]
    # shape: foMPI's XPMEM path beats every other transport intra-node
    fompi = next(s for s in series if s.label == "fompi")
    mpi1 = next(s for s in series if s.label == "mpi1")
    assert fompi.ys[0] < mpi1.ys[0]
