"""Hybrid scale-mode throughput: simulated ranks per wall-clock second.

The paper's headline runs are at 512Ki processes; the hybrid engine must
make that size (and 1Mi) routine in CI.  This benchmark runs the fence
workload hybrid at 4Ki / 64Ki / 512Ki / 1Mi ranks, reports ranks-per-
second and the effective sampling fraction into the ``scale`` section of
``BENCH_simperf.json`` (via the ``record_scale`` fixture), and asserts a
generous absolute floor; the calibrated regression gate lives in
``perf_gate.py`` against ``baseline_simperf.json``.
"""

import time

from repro.scale import format_ranks, run_hybrid

SCALE_PS = [4096, 65536, 524288, 1048576]
WORKLOAD = "fence"

# Dev-container rates are hundreds of thousands of ranks/s; CI machines
# vary wildly, so the in-test floor sits far below (the perf gate does
# the machine-scaled comparison).
RANKS_PER_SEC_FLOOR = 10_000.0
# Paper-scale smoke budget: a 1Mi hybrid run must stay interactive.
MILLION_RANK_WALL_BUDGET_S = 120.0


def test_scale_throughput(benchmark, record_scale):
    def run():
        rows = []
        for p in SCALE_PS:
            t0 = time.perf_counter()
            res = run_hybrid(WORKLOAD, p, ranks_per_node=32)
            wall = time.perf_counter() - t0
            rows.append({
                "ranks": format_ranks(p),
                "nranks": p,
                "wall_s": round(wall, 3),
                "ranks_per_sec": round(p / wall, 1),
                "sample_fraction": round(res.sample_fraction, 8),
                "sampled": len(res.sample),
                "messages": res.stats["messages"],
                "soa_nbytes": res.soa_nbytes,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_scale({
        "workload": WORKLOAD,
        "ranks_per_sec": {r["ranks"]: r["ranks_per_sec"] for r in rows},
        "sample_fraction": {r["ranks"]: r["sample_fraction"] for r in rows},
        "wall_s": {r["ranks"]: r["wall_s"] for r in rows},
        "floor_ranks_per_sec": RANKS_PER_SEC_FLOOR,
    })
    print()
    for r in rows:
        print(f"{r['ranks']:>6}: {r['ranks_per_sec']:>12,.0f} ranks/s "
              f"({r['wall_s']:6.2f}s wall, sampled {r['sampled']}, "
              f"{r['messages']:,} msgs, SoA {r['soa_nbytes'] / 1e6:.1f} MB)")
    benchmark.extra_info["scale"] = rows
    for r in rows:
        assert r["ranks_per_sec"] > RANKS_PER_SEC_FLOOR, r
    by = {r["nranks"]: r for r in rows}
    assert by[1048576]["wall_s"] < MILLION_RANK_WALL_BUDGET_S
    # Sampling stays clamped: million-rank runs validate a fixed number
    # of DES ranks, so the fraction *falls* as p grows.
    assert (by[1048576]["sample_fraction"]
            < by[4096]["sample_fraction"])
