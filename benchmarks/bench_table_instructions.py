"""The paper's instruction-count claims (Sections 2.3/2.4/6).

"Our full implementation adds only 173 CPU instructions (x86) in the
optimized critical path of MPI_Put and MPI_Get"; "all flush operations
share the same implementation and add only 78 CPU instructions"; overall
"the MPI interface adds merely between 150 and 200 instructions in the
fast path".  These constants drive the simulator's software-path charges;
this target regenerates the table and checks the 150-200 claim.
"""

from repro.bench import format_table
from repro.rma.params import INSTRUCTION_TABLE


def test_instruction_table(benchmark, record_series):
    def run():
        return dict(INSTRUCTION_TABLE)

    table_data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v, round(v / 2.3, 1)] for k, v in sorted(table_data.items())]
    table = format_table(
        "Instruction counts on the fast path (and ns at 2.3 GHz)",
        ["path", "instructions", "ns"], rows)
    record_series("table_instructions", table, [table_data])
    benchmark.extra_info["instruction_table"] = table_data
    assert table_data["put_fast_path"] == 173
    assert table_data["flush"] == 78
    assert 150 <= table_data["put_fast_path"] <= 200
    assert 150 <= table_data["get_fast_path"] <= 200
