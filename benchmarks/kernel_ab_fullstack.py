"""Same-machine full-stack kernel A/B: gen-2 vs the frozen pre-gen-2 kernel.

The figure wall times in ``BENCH_simperf.json`` are only comparable when
measured on one machine; this script produces that comparison for the
wall-clock-dominant figure driver (one fig7a hashtable point, the
workload ROADMAP cites as the kernel bottleneck).  It runs the driver in
two subprocesses:

* **post** -- the installed gen-2 kernel, defaults as shipped;
* **pre**  -- ``benchmarks/_pr2_kernel.py`` installed as
  ``repro.sim.kernel`` *before* any other repro import, with batched
  delivery disabled (the frozen Event class has no ``resolve()``).  The
  zero-copy payload path stays gen-2 in both runs, so the reported
  speedup *understates* the full PR delta.

and merges a ``kernel_ab_fullstack`` section into ``BENCH_simperf.json``.

Usage::

    PYTHONPATH=src python benchmarks/kernel_ab_fullstack.py          # A/B
    PYTHONPATH=src python benchmarks/kernel_ab_fullstack.py --one pre
"""

import json
import os
import pathlib
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
REPORT = REPO / "BENCH_simperf.json"

#: One fig7a point: fompi hashtable inserts at the largest process count
#: the figure sweeps (32 ranks/node), measured end to end.
VARIANT, P, INSERTS = "fompi", 512, 64
ROUNDS = 3


def _child(kernel: str) -> None:
    if kernel == "pre":
        import importlib.util

        import repro.errors  # noqa: F401  (kernel's only repro dep)
        spec = importlib.util.spec_from_file_location(
            "repro.sim.kernel", REPO / "benchmarks" / "_pr2_kernel.py")
        mod = importlib.util.module_from_spec(spec)
        sys.modules["repro.sim.kernel"] = mod
        spec.loader.exec_module(mod)
    from repro.bench.appbench import hashtable_rate
    if kernel == "pre":
        # The frozen Event class has no resolve(); route every packet
        # through the unbatched per-packet delivery path.
        from repro.machine.network import Network

        def _unbatched(self, src_node, dst_node, deliver_time, ev):
            ev.succeed(deliver_time,
                       delay=max(0, deliver_time - self.env.now))

        Network._deliver_at = _unbatched
    best = None
    rate = 0.0
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        rate = hashtable_rate(VARIANT, P, INSERTS)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    print(json.dumps({"wall_s": round(best, 3),
                      "inserts_per_sec": round(rate, 1)}))


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--one":
        _child(sys.argv[2])
        return 0

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_BENCH_CACHE"] = "0"  # walls must measure real simulation
    results = {}
    for kernel in ("pre", "post"):
        out = subprocess.run(
            [sys.executable, __file__, "--one", kernel],
            env=env, capture_output=True, text=True, check=True)
        results[kernel] = json.loads(out.stdout.strip().splitlines()[-1])
        print(f"{kernel:>5}: {results[kernel]['wall_s']:.2f}s "
              f"({results[kernel]['inserts_per_sec']:,.0f} inserts/s)")
    # Determinism cross-check: both kernels simulate the identical
    # schedule, so the simulated insert rate must match exactly.
    assert results["pre"]["inserts_per_sec"] == \
        results["post"]["inserts_per_sec"], results
    speedup = results["pre"]["wall_s"] / results["post"]["wall_s"]
    section = {
        "workload": f"fig7a hashtable {VARIANT} p={P}",
        "note": "same-machine wall A/B, frozen pre-gen2 kernel "
                "(benchmarks/_pr2_kernel.py, unbatched) vs gen2, "
                f"best of {ROUNDS}",
        "pre_wall_s": results["pre"]["wall_s"],
        "post_wall_s": results["post"]["wall_s"],
        "speedup": round(speedup, 3),
    }
    report = {}
    if REPORT.exists():
        try:
            report = json.loads(REPORT.read_text())
        except (ValueError, OSError):
            report = {}
    report["kernel_ab_fullstack"] = section
    REPORT.write_text(json.dumps(report, indent=1) + "\n")
    print(f"speedup: {speedup:.2f}x -> {REPORT.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
