"""Seeded ring placement of checkpoint buddies and spare nodes.

The buddy of a node is chosen by a fixed, seed-derived stride around the
ring of *base* nodes (the nodes that host ranks in the initial block
placement).  A stride rather than the naive ``node + 1`` decorrelates the
buddy ring from the torus's x-dimension neighbors: because node ids are
x-major coordinates of the torus, a stride walks the machine in a
different direction than nearest-neighbor application traffic, so a
localized failure is less likely to take a node and its replica together.
The stride is derived once from the run seed, so placement is
deterministic and identical on every rank without any exchange.

Spare nodes are held out past the base block: spare ``k`` is node
``base_nnodes + k``.  The torus is sized to cover them (see
``World.__init__``), so replica and restore traffic to spares pays real
modeled hop counts.
"""

from __future__ import annotations

from repro.sim.random import derive_seed

__all__ = ["BuddyPlacement"]


class BuddyPlacement:
    """Deterministic buddy/spare placement for one run."""

    def __init__(self, base_nnodes: int, spares: int, seed: int) -> None:
        if base_nnodes < 1:
            raise ValueError(f"base_nnodes={base_nnodes} must be >= 1")
        self.base_nnodes = base_nnodes
        self.spares = spares
        if base_nnodes > 1:
            self.step = 1 + derive_seed(seed, "ft-buddy") % (base_nnodes - 1)
        else:
            self.step = 0  # single node: the replica stays local

    def buddy_of(self, node: int) -> int:
        """Ring buddy of a *base* node (where its replicas live)."""
        return (node + self.step) % self.base_nnodes

    def spare_node(self, k: int) -> int:
        """Node id of the ``k``-th spare (0-based)."""
        if not 0 <= k < self.spares:
            raise ValueError(f"spare {k} out of range (spares={self.spares})")
        return self.base_nnodes + k
