"""Rollback recovery for the RMA protocol layer.

Checkpoint + put-log + restart, after Besta & Hoefler's "Fault Tolerance
for Remote Memory Access Programming Models" (see PAPERS.md): coordinated
in-memory checksummed snapshots of window contents and protocol state,
buddy-replicated over a seeded ring; demand-driven origin-side logging of
puts/atomics targeting protected windows between checkpoints; and on
failure notification, restart of the dead ranks on a spare node (or
shrink-and-redistribute onto the buddy), restoring the newest consistent
checkpoint and replaying the logged delta.

Everything is seeded-deterministic: a crashed-and-recovered run replays
bit-identically for a fixed ``(seed, fault plan, FTConfig)``.
"""

from repro.ft.core import FTContext, FTRuntime
from repro.ft.placement import BuddyPlacement

__all__ = ["FTRuntime", "FTContext", "BuddyPlacement"]
