"""Checkpoint, put-log and restart machinery (the FT runtime).

One :class:`FTRuntime` per world (constructed only when
``FaultConfig.ft.enabled``; every hook below the runtime is behind a
single ``is None`` test, so FT-off schedules stay bit-identical).  Each
rank talks to it through a thin per-rank :class:`FTContext` facade
(``ctx.ft``).

Protocol summary
----------------

**Checkpoints** are loosely coordinated: every rank snapshots its
protected windows at the same *logical* step (after a flush), with no
barrier.  A snapshot records the window bytes (checksummed), the control
words, the lock state, the origin-side op-sequence and collective-tag
counters, the caller's application state, and a per-window *watermark* --
the target-side delivery counter at the snapshot instant.  The snapshot
is deposited on a buddy node (seeded ring placement) as a real modeled
network transfer; it *commits* when the replica arrives.

**Put-logging** (policy ``"log"``): every remotely-delivered put or
effective atomic targeting a protected window is recorded *at its
delivery instant* with a monotonically increasing per-(window, target)
stamp.  Replaying, in stamp order, exactly the entries above a
checkpoint's watermark reconstructs the target bytes regardless of when
the snapshot was taken relative to in-flight traffic -- this is what
makes barrier-free checkpoints consistent.

**Restart**: the failure notifier's dissemination process calls the
restore hook after survivor-side revocation.  The dead node's ranks are
re-homed to a spare node (or the buddy, in shrink mode), their newest
committed checkpoints are checksum-verified and restored in place,
post-watermark log entries are replayed, lock words are reconciled
against the revocation ledger, and fresh rank processes re-enter the
program from the checkpointed application state.  Origin sequence
numbers are restored too, so re-executed atomics hit the PR-1 replay
dedup and apply exactly once.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FTError
from repro.ft.placement import BuddyPlacement
from repro.sim.kernel import Event

__all__ = ["FTRuntime", "FTContext", "FTStats"]

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


@dataclass
class FTStats:
    """Counters for checkpoint/log/restore work (``RunResult.stats['ft']``)."""

    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    replicas_deposited: int = 0
    replicas_arrived: int = 0
    checkpoints_cancelled: int = 0
    buddy_bytes: int = 0
    log_entries: int = 0
    log_bytes: int = 0
    entries_replayed: int = 0
    restores: int = 0
    ranks_restored: int = 0
    unrecoverable: int = 0
    spares_used: int = 0
    restore_ns: int = 0

    def snapshot(self) -> dict:
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "replicas_deposited": self.replicas_deposited,
            "replicas_arrived": self.replicas_arrived,
            "checkpoints_cancelled": self.checkpoints_cancelled,
            "buddy_bytes": self.buddy_bytes,
            "log_entries": self.log_entries,
            "log_bytes": self.log_bytes,
            "entries_replayed": self.entries_replayed,
            "restores": self.restores,
            "ranks_restored": self.ranks_restored,
            "unrecoverable": self.unrecoverable,
            "spares_used": self.spares_used,
            "restore_ns": self.restore_ns,
        }


@dataclass
class _WinSnap:
    """One window's share of a checkpoint."""

    data: bytes
    crc: int
    ctrl: list
    ledger_sums: dict
    lock_snap: dict
    watermark: int


@dataclass
class _Checkpoint:
    """One rank's coordinated snapshot at one version."""

    version: int
    rank: int
    windows: dict = field(default_factory=dict)  # win_id -> _WinSnap
    app: dict = field(default_factory=dict)
    op_seq: int | None = None
    coll_tag: int = 0
    nbx_tag: int = 0
    coll_seq: int = 0
    oseqs: dict = field(default_factory=dict)  # (rank, win_id) -> int
    nbytes: int = 0
    arrived: bool = False
    cancelled: bool = False


class FTRuntime:
    """Per-world rollback-recovery service."""

    def __init__(self, world) -> None:
        self.world = world
        self.env = world.env
        self.cfg = world.faults.ft
        base_nnodes = world.rank_map.nnodes
        self.placement = BuddyPlacement(base_nnodes, self.cfg.spares,
                                        world.sim.seed)
        self.stats = FTStats()
        # Protected-window registry: win_id -> {rank -> Window}.
        self.windows: dict[int, dict] = {}
        self.protected: set[int] = set()
        # Target-side delivery stamps and demand-driven logs, keyed by
        # (win_id, target_rank).
        self.stamps: dict[tuple[int, int], int] = {}
        self.logs: dict[tuple[int, int], list] = {}
        # rank -> newest checkpoint version taken (v0 = first).
        self.versions: dict[int, int] = {}
        self.ckpts: dict[tuple[int, int], _Checkpoint] = {}
        # Restart bookkeeping.
        self.program = None
        self.p_args: tuple = ()
        self.p_kwargs: dict = {}
        self.returns: dict[int, object] = {}
        self._restored: set[int] = set()
        self._unrecoverable: set[int] = set()
        self._restore_events: dict[int, Event] = {}
        self._spares_used = 0
        self._generation = 0

    # ------------------------------------------------------------------
    # program binding / queries
    # ------------------------------------------------------------------
    def bind(self, program, args, kwargs) -> None:
        """Remember the SPMD program so restarts can re-enter it."""
        self.program = program
        self.p_args = tuple(args)
        self.p_kwargs = dict(kwargs)

    def will_recover(self, rank: int) -> bool:
        """Will a crash of ``rank`` be repaired by a restart?

        Requires an enabled config, a bound program, at least one
        checkpoint taken by the rank, and (V1 limitation) no earlier
        crash of the same rank.
        """
        return (self.cfg.enabled
                and self.program is not None
                and rank not in self._restored
                and rank not in self._unrecoverable
                and self.versions.get(rank, -1) >= 0)

    def recoverable(self, ranks) -> set[int]:
        return {r for r in ranks if self.will_recover(r)}

    def restore_event(self, rank: int) -> Event:
        ev = self._restore_events.get(rank)
        if ev is None:
            ev = Event(self.env, name=f"ft-restore:r{rank}")
            self._restore_events[rank] = ev
        return ev

    def pause_for_restore(self, origin: int, target: int, exc):
        """Origin-side hold: an op hit a crashed-but-recoverable target.
        Wait for the restart, then let the caller retry.  Re-raises when
        the target will never come back."""
        if target in self._restored:
            return  # the restart already happened; retry immediately
        if not self.will_recover(target):
            raise exc
        yield self.restore_event(target)

    # ------------------------------------------------------------------
    # protection + logging
    # ------------------------------------------------------------------
    def protect(self, rank: int, win) -> None:
        if win.seg is None:
            raise FTError(
                f"window {win.win_id} ({win.flavor}) has no per-rank heap "
                f"segment; only ALLOCATE/CREATE windows can be protected")
        self.windows.setdefault(win.win_id, {})[rank] = win
        self.protected.add(win.win_id)

    def is_protected(self, win_id: int) -> bool:
        return win_id in self.protected

    def log_put(self, win_id: int, target: int, off: int, data: bytes) -> None:
        """Record one delivered put piece (called inside the delivery
        closure, after the bytes landed)."""
        key = (win_id, target)
        stamp = self.stamps.get(key, 0) + 1
        self.stamps[key] = stamp
        self.logs.setdefault(key, []).append((stamp, int(off), data))
        self.stats.log_entries += 1
        self.stats.log_bytes += len(data)

    def log_amo(self, win_id: int, target: int, off: int, post: int) -> None:
        """Record one *effective* atomic as the 8-byte post-value it left
        behind (CAS failures and fetch-add-0 polls change nothing and are
        never logged)."""
        self.log_put(win_id, target, off,
                     int(post & _MASK64).to_bytes(8, "little"))

    # -- origin-side callbacks handed to the transport -----------------
    def put_logger(self, win, target: int):
        """Delivery callback for a put, or None when the window is not
        log-protected.  ``off`` is segment-relative, matching replay."""
        if self.cfg.policy != "log" or win.win_id not in self.protected:
            return None
        win_id = win.win_id

        def _applied(off, piece):
            self.log_put(win_id, target, off, bytes(piece))
        return _applied

    def amo_logger(self, win, target: int, cells, base_idx: int):
        """Delivery callback for a single-cell atomic: receives the old
        value, reads the post value back from the cell (still inside the
        atomic closure) and logs it only when the op took effect."""
        if self.cfg.policy != "log" or win.win_id not in self.protected:
            return None
        win_id = win.win_id

        def _applied(old):
            post = cells.load(base_idx)
            if post != old:
                self.log_amo(win_id, target, base_idx * 8, post)
        return _applied

    def amo_stream_logger(self, win, target: int, cells, base_idx: int):
        """Delivery callback for an element-wise atomic stream: receives
        the list of old values."""
        if self.cfg.policy != "log" or win.win_id not in self.protected:
            return None
        win_id = win.win_id

        def _applied(olds):
            for i, old in enumerate(olds):
                post = cells.load(base_idx + i)
                if post != old:
                    self.log_amo(win_id, target, (base_idx + i) * 8, post)
        return _applied

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, ctx, win, state: dict):
        """Snapshot ``win`` + protocol state for ``ctx.rank`` and deposit
        the replica on the buddy node.  Generator (charges the copy cost);
        the deposit itself is asynchronous and commits at delivery."""
        rank = ctx.rank
        env = self.env
        t0 = env.now
        version = self.versions.get(rank, -1) + 1
        rec = _Checkpoint(version=version, rank=rank)
        rec.app = dict(state)
        rec.op_seq = getattr(ctx.dmapp, "_op_seq", None)
        if ctx._coll is not None:
            rec.coll_tag = ctx.coll._tag
            rec.nbx_tag = ctx.coll._nbx_tag
        checker = self.world.checker
        if checker is not None:
            rec.coll_seq = checker._coll_seq[rank]
            rec.oseqs = {k: v for k, v in checker._oseq.items()
                         if k[0] == rank}
        ledger = self.world.lock_ledger
        for w in ([win] if not isinstance(win, (list, tuple)) else win):
            data = w.seg.snapshot_bytes()
            snap = _WinSnap(
                data=data,
                crc=zlib.crc32(data),
                ctrl=w.ctrl.snapshot() if w.ctrl is not None else [],
                ledger_sums=(ledger.sums(w.win_id, rank)
                             if ledger is not None else {}),
                lock_snap=w.lock_state.snapshot(),
                watermark=self.stamps.get((w.win_id, rank), 0),
            )
            rec.windows[w.win_id] = snap
            rec.nbytes += len(data) + 8 * len(snap.ctrl)
        self.versions[rank] = version
        self.ckpts[(version, rank)] = rec
        self.stats.checkpoints_taken += 1
        self.stats.checkpoint_bytes += rec.nbytes

        cost = int(round(rec.nbytes * self.cfg.ckpt_copy_ns_per_byte))
        if cost > 0:
            yield env.timeout(cost)

        # Deposit on the buddy ring (original block placement: the buddy
        # of a re-homed rank stays pinned to its first home).
        orig_node = rank // self.world.rank_map.ranks_per_node
        cur_node = self.world.rank_map.node_of(rank)
        base = self.placement.base_nnodes
        step = self.placement.step
        for i in range(self.cfg.replicas):
            buddy = (orig_node + (i + 1) * step) % base if base > 1 \
                else orig_node
            self.stats.replicas_deposited += 1
            if buddy == cur_node:
                self._commit(rec)
            else:
                self.world.network.packet(
                    cur_node, buddy, rec.nbytes,
                    on_deliver=lambda _t, r=rec: self._commit(r))
        obs = self.world.obs
        if obs is not None:
            obs.rank_span(rank, "ft.checkpoint", t0, env.now, cat="ft",
                          args={"version": version, "bytes": rec.nbytes})
            obs.metrics.count("ft.checkpoint", rank)
        env.note_progress()

    def _commit(self, rec: _Checkpoint) -> None:
        """Replica arrival: the checkpoint becomes restorable; older
        committed versions and covered log entries are garbage-collected."""
        if rec.cancelled or rec.arrived:
            return
        rec.arrived = True
        self.stats.replicas_arrived += 1
        self.stats.buddy_bytes += rec.nbytes
        for v in range(rec.version):
            old = self.ckpts.get((v, rec.rank))
            if old is not None and (old.arrived or old.cancelled):
                del self.ckpts[(v, rec.rank)]
                if old.arrived:
                    self.stats.buddy_bytes -= old.nbytes
        for win_id, snap in rec.windows.items():
            key = (win_id, rec.rank)
            log = self.logs.get(key)
            if log:
                kept = [e for e in log if e[0] > snap.watermark]
                dropped = len(log) - len(kept)
                if dropped:
                    self.logs[key] = kept
                    self.stats.log_entries -= dropped

    def _newest_valid(self, rank: int) -> _Checkpoint | None:
        best = None
        for (v, r), rec in self.ckpts.items():
            if r == rank and rec.arrived and not rec.cancelled:
                if best is None or v > best.version:
                    best = rec
        return best

    # ------------------------------------------------------------------
    # win_free vs in-flight checkpoints (satellite: cancel the replica)
    # ------------------------------------------------------------------
    def release_window(self, rank: int, win) -> None:
        """The rank freed ``win``: cancel in-flight replicas covering it,
        release committed buddy-side copies, and drop its logs."""
        win_id = win.win_id
        wins = self.windows.get(win_id)
        if wins is not None:
            wins.pop(rank, None)
            if not wins:
                self.protected.discard(win_id)
                del self.windows[win_id]
        for (v, r), rec in list(self.ckpts.items()):
            if r != rank or win_id not in rec.windows:
                continue
            if rec.arrived:
                self.stats.buddy_bytes -= rec.nbytes
            else:
                self.stats.checkpoints_cancelled += 1
            rec.cancelled = True
            del self.ckpts[(v, r)]
        key = (win_id, rank)
        log = self.logs.pop(key, None)
        if log:
            self.stats.log_entries -= len(log)

    # ------------------------------------------------------------------
    # restart
    # ------------------------------------------------------------------
    def make_restore_hook(self):
        """Revocation hook for the failure notifier (runs after the PR-4
        survivor-side revocation in registration order)."""
        def _hook(failed_ranks):
            yield from self._restore(failed_ranks)
        return _hook

    def _restore(self, failed_ranks):
        env = self.env
        cohort = sorted(self.recoverable(failed_ranks))
        if not cohort:
            return
        t0 = env.now
        recs: dict[int, _Checkpoint] = {}
        for r in cohort:
            rec = self._newest_valid(r)
            if rec is not None:
                for win_id, snap in rec.windows.items():
                    if zlib.crc32(snap.data) != snap.crc:
                        rec = None
                        break
            if rec is None:
                # No committed (or checksum-clean) checkpoint: the whole
                # node cohort is unrecoverable.  Fire the events anyway so
                # paused origins retry, re-hit quarantine and surface the
                # structured error instead of hanging.
                self._unrecoverable.update(cohort)
                self.stats.unrecoverable += len(cohort)
                self.world.injector._trace(
                    "ft-unrecoverable",
                    f"rank {r}: no valid checkpoint; cohort {cohort} lost")
                self._fire_restore_events(cohort)
                return
            recs[r] = rec

        # Charge the restore: re-registration per adopted segment, byte
        # copy of every restored window, one charge per replayed entry.
        cost = 0
        replays: dict[int, list] = {}
        for r in cohort:
            rec = recs[r]
            for win_id, snap in rec.windows.items():
                cost += self.cfg.rereg_ns_per_segment
                cost += int(round(len(snap.data)
                                  * self.cfg.restore_ns_per_byte))
                entries = [e for e in self.logs.get((win_id, r), [])
                           if e[0] > snap.watermark]
                entries.sort(key=lambda e: e[0])
                replays[(win_id, r)] = entries
                cost += len(entries) * self.cfg.replay_ns_per_entry
        if cost > 0:
            yield env.timeout(cost)

        # Pick the adoption node and rehome only *now*, at the instant the
        # memory rewrite below executes.  Rehoming before the cost timeout
        # would resolve the dead rank to a live (never-crashed) node while
        # the restore is still in flight: survivor ops would pass the
        # quarantine check, land in the window, and then be wiped by
        # restore_bytes.  Until this point they keep hitting the original
        # crashed node and park in pause_for_restore.
        orig_node = cohort[0] // self.world.rank_map.ranks_per_node
        if (self.cfg.mode == "spare"
                and self._spares_used < self.cfg.spares):
            node = self.placement.spare_node(self._spares_used)
            self._spares_used += 1
            self.stats.spares_used += 1
        else:
            node = self.placement.buddy_of(orig_node)
        self._generation += 1
        for r in cohort:
            self.world.rank_map.rehome(r, node, self._generation)

        ledger = self.world.lock_ledger
        for r in cohort:
            rec = recs[r]
            for win_id, snap in rec.windows.items():
                win = self.windows[win_id][r]
                win.seg.restore_bytes(snap.data)
                # Control words: checkpoint value plus the revocation
                # ledger's *post-checkpoint* delta, so survivor lock
                # traffic that landed after the snapshot is kept and
                # pre-snapshot contributions are not double-counted.
                sums_now = (ledger.sums(win_id, r)
                            if ledger is not None else {})
                for idx, ck_val in enumerate(snap.ctrl):
                    val = (ck_val + sums_now.get(idx, 0)
                           - snap.ledger_sums.get(idx, 0)) & _MASK64
                    if val != win.ctrl.load(idx):
                        win.ctrl.store(idx, val)  # wakes word watchers
                win.lock_state.restore(snap.lock_snap)
                for stamp, off, data in replays[(win_id, r)]:
                    win.seg.restore_bytes(data, off)
                    self.stats.entries_replayed += 1
            self._respawn(r, rec)
        self._fire_restore_events(cohort)
        notifier = self.world.notifier
        if notifier is not None:
            notifier.absolve(cohort)
        inj = self.world.injector
        inj.stats.ranks_restored += len(cohort)
        self.stats.restores += 1
        self.stats.ranks_restored += len(cohort)
        self.stats.restore_ns += env.now - t0
        inj._trace("ft-restore",
                   f"ranks {cohort} restored on node {node} "
                   f"(gen {self._generation})")
        obs = self.world.obs
        if obs is not None:
            obs.nic_span(node, "ft.restore", t0, env.now, cat="ft",
                         args={"ranks": len(cohort), "node": node})
            obs.metrics.observe("ft_restore_ns", 0, env.now - t0)
        env.note_progress()

    def _fire_restore_events(self, cohort) -> None:
        for r in cohort:
            ev = self._restore_events.get(r)
            if ev is not None and not ev.triggered:
                ev.succeed(r)

    def _respawn(self, rank: int, rec: _Checkpoint) -> None:
        """Build a fresh context for the restored rank and re-enter the
        program from the checkpointed application state."""
        from repro.runtime.process import RankContext

        world = self.world
        ctx = RankContext(world, rank)
        # Adopt the preserved window objects: rebind them to the fresh
        # context so their transport calls use the new endpoints.
        max_win = -1
        for win_id, wins in self.windows.items():
            win = wins.get(rank)
            if win is not None:
                win.ctx = ctx
                max_win = max(max_win, win_id)
                snap = rec.windows.get(win_id)
                if snap is not None and snap.lock_snap.get("lock_all_held"):
                    ctx.ft._restored_lock_all.add(win_id)
        ctx.rma._next_win = max_win + 1
        if rec.op_seq is not None and hasattr(ctx.dmapp, "_op_seq"):
            # Restored origin sequence numbers make re-executed atomics
            # hit the injector's replay dedup: exactly-once effects.
            ctx.dmapp._op_seq = rec.op_seq
        if rec.coll_tag or rec.nbx_tag:
            ctx.coll._tag = rec.coll_tag
            ctx.coll._nbx_tag = rec.nbx_tag
        checker = world.checker
        if checker is not None:
            checker.on_restore(rank, rec.coll_seq, rec.oseqs)
        ctx.ft._restored_state = dict(rec.app)
        self._restored.add(rank)

        def _runner():
            value = yield from self.program(ctx, *self.p_args,
                                            **self.p_kwargs)
            self.returns[rank] = value
            return value

        self.env.process(_runner(), name=f"rank{rank}:r2")


class FTContext:
    """Per-rank facade over the world's :class:`FTRuntime` (``ctx.ft``)."""

    def __init__(self, rt: FTRuntime, ctx) -> None:
        self.rt = rt
        self.ctx = ctx
        self._restored_state: dict | None = None
        self._restored_lock_all: set[int] = set()

    # -- workload API --------------------------------------------------
    @property
    def restarting(self) -> bool:
        """True inside a restarted incarnation of the program."""
        return self.ctx.rank in self.rt._restored \
            and self._restored_state is not None

    def protect(self, win) -> None:
        """Enroll a window for checkpointing (and, under policy
        ``"log"``, delivery-time put/atomic logging)."""
        self.rt.protect(self.ctx.rank, win)

    def adopt(self, win_id: int):
        """Restarted rank: take over the preserved, already-restored
        window object instead of re-allocating."""
        win = self.rt.windows.get(win_id, {}).get(self.ctx.rank)
        if win is None:
            raise FTError(f"rank {self.ctx.rank}: no protected window "
                          f"{win_id} to adopt")
        return win

    def restored_state(self) -> dict:
        """Application state carried by the restored checkpoint."""
        if self._restored_state is None:
            raise FTError(f"rank {self.ctx.rank} is not restarting")
        return self._restored_state

    def checkpoint(self, win, state: dict):
        """Generator: snapshot + buddy deposit (see FTRuntime.checkpoint)."""
        return self.rt.checkpoint(self.ctx, win, state)

    def release_window(self, win) -> None:
        self.rt.release_window(self.ctx.rank, win)

    # -- protocol hooks ------------------------------------------------
    def logged(self, win) -> bool:
        """True when remote deltas to ``win`` must be loggable (the
        window is protected under policy ``"log"``)."""
        return (self.rt.cfg.policy == "log"
                and self.rt.is_protected(win.win_id))
    def consume_restored_lock_all(self, win) -> bool:
        """One-shot: the restored rank held a lock_all epoch at its
        checkpoint; its re-executed ``lock_all`` re-enters the epoch
        without touching the (already reconciled) lock words."""
        if win.win_id in self._restored_lock_all:
            self._restored_lock_all.discard(win.win_id)
            return True
        return False

    def put_logger(self, win, target: int):
        return self.rt.put_logger(win, target)

    def amo_logger(self, win, target: int, cells, base_idx: int):
        return self.rt.amo_logger(win, target, cells, base_idx)

    def amo_stream_logger(self, win, target: int, cells, base_idx: int):
        return self.rt.amo_stream_logger(win, target, cells, base_idx)
