"""Crash-to-completion workloads for the rollback-recovery layer.

:func:`ft_hashtable` is the canonical FT workload: the paper's
distributed hashtable (Section 4.1) restructured so a mid-run node crash
can be recovered *transparently* -- the job runs to completion and the
final table is bit-identical to a fault-free run of the same seed.

Two design rules make that possible (and testable):

* **Collective-free steady state.**  A restored rank cannot rejoin
  collectives its survivors already completed, so after window creation
  the workload uses only RMA: CAS-claimed inserts inside one ``lock_all``
  epoch, and a completion *counter in window memory* (each rank
  fetch-and-adds rank 0's counter, then polls it) instead of a final
  barrier.

* **Timing-independent final state.**  Keys are constructed so that
  insert ``i`` of rank ``r`` hashes to the globally unique slot
  ``r*inserts + i`` (``key % nslots == slot``); no two ranks ever race
  for a slot, so the final table bytes are a pure function of the seed --
  the same whether a crash happened or not, and under both ``spare`` and
  ``shrink`` recovery.  The CAS probe loop is still the paper's linear
  probing; collisions just never occur by construction (``old == key``
  re-claims are exactly the restored rank replaying its own inserts).

Run helpers at the bottom (:func:`run_reference`,
:func:`run_crash_to_completion`, :func:`soak`) pick crash times as a
fraction of a fault-free reference run's length, so schedules stay
seeded-deterministic end to end.  All FT runs place one rank per node
(``MachineConfig(ranks_per_node=1)``): cross-rank intra-node traffic
bypasses the NIC (XPMEM) and is invisible to the put-log, a documented
V1 limitation (docs/FAULT_TOLERANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    FaultConfig,
    FaultPlan,
    FTConfig,
    MachineConfig,
    NodeCrash,
    RecoveryConfig,
    RunResult,
    SimConfig,
)
from repro.rma.enums import Op
from repro.sim.random import derive_seed

__all__ = [
    "ft_hashtable",
    "ft_machine",
    "ft_faults",
    "run_reference",
    "run_crash_to_completion",
    "soak",
    "table_bytes",
    "FTOutcome",
]

_MASK63 = (1 << 63) - 1
_SLOT = 16          # 8B key word + 8B value word
_POLL_NS = 500      # completion-counter poll backoff


def ft_hashtable(ctx, nslots: int, inserts: int):
    """One rank of the crash-recoverable hashtable insert phase.

    Layout: every rank's window holds ``nslots`` 16-byte slots plus one
    8-byte completion counter (only rank 0's counter is used).  Global
    slot ``s`` lives on rank ``s % nranks`` at byte offset ``s*16``.
    Returns the rank's final slot region as ``bytes``.
    """
    rank, nranks = ctx.rank, ctx.nranks
    if nslots < nranks * inserts:
        raise ValueError(f"nslots={nslots} < nranks*inserts="
                         f"{nranks * inserts}: slots must be collision-free")
    ft = ctx.ft
    interval = ft.rt.cfg.interval if ft is not None else 0

    if ft is not None and ft.restarting:
        st = ft.restored_state()
        win = ft.adopt(st["win_id"])
        start_i = st["next_i"]
    else:
        win = yield from ctx.rma.win_allocate(nslots * _SLOT + 8,
                                              disp_unit=1)
        if ft is not None:
            ft.protect(win)
        start_i = 0

    # Passive-target epoch for the whole phase; a restored rank's
    # lock_all re-enters its checkpointed epoch without re-acquiring.
    yield from win.lock_all()
    if ft is not None and start_i == 0:
        # v0 checkpoint: taken inside the epoch so a crash at any later
        # point has a consistent restart line.
        yield from ft.checkpoint(win, {"win_id": win.win_id, "next_i": 0})

    seed = ctx.world.sim.seed
    for i in range(start_i, inserts):
        s = rank * inserts + i
        # key % nslots == s and key < 2**63 (signed-safe for the CAS),
        # key != 0 (zero marks an empty slot).
        m = derive_seed(seed, f"ftkey-{rank}-{i}") % ((1 << 40) - 1) + 1
        key = m * nslots + s
        value = derive_seed(seed, f"ftval-{rank}-{i}") & _MASK63
        j = key % nslots
        for _probe in range(nslots):
            owner, off = j % nranks, j * _SLOT
            old = yield from win.compare_and_swap(0, key, owner, off)
            if old == 0 or old == key:
                vbuf = np.frombuffer(int(value).to_bytes(8, "little"),
                                     dtype=np.uint8)
                yield from win.put(vbuf, owner, off + 8)
                break
            j = (j + 1) % nslots
        else:
            raise RuntimeError(f"rank {rank}: hashtable full")
        if ft is not None and interval and (i + 1) % interval == 0:
            # Coordinated line: local puts flushed first so the snapshot
            # plus the remote put-log covers everything this rank issued.
            yield from win.flush_all()
            yield from ft.checkpoint(win, {"win_id": win.win_id,
                                           "next_i": i + 1})

    yield from win.flush_all()
    # Collective-free completion: bump rank 0's counter, poll until all
    # ranks arrived.  A restored rank's re-executed bump carries its
    # pre-crash sequence number, so the injector's exactly-once cache
    # suppresses double counting.
    done_off = nslots * _SLOT
    yield from win.fetch_and_op(1, 0, done_off, Op.SUM)
    while True:
        count = yield from win.fetch_and_op(0, 0, done_off, Op.SUM)
        if count >= nranks:
            break
        yield from ctx.compute(_POLL_NS)
    yield from win.unlock_all()
    return win.seg.snapshot_bytes()[:nslots * _SLOT]


# ----------------------------------------------------------------------
# run helpers
# ----------------------------------------------------------------------
def ft_machine() -> MachineConfig:
    """One rank per node: every protected access crosses the NIC, so the
    put-log sees the full remote delta (V1 requirement)."""
    return MachineConfig(ranks_per_node=1)


def ft_faults(*, crashes=(), mode: str = "spare", interval: int = 2,
              policy: str = "log", replicas: int = 1,
              spares: int | None = None) -> FaultConfig:
    """FaultConfig for an FT run; ``crashes=()`` gives the fault-free
    (but still checkpointing) configuration used as the reference."""
    if spares is None:
        spares = 1 if mode == "spare" else 0
    plan = FaultPlan(crashes=tuple(crashes)) if crashes else None
    return FaultConfig(plan=plan,
                       recovery=RecoveryConfig(enabled=True),
                       ft=FTConfig(enabled=True, interval=interval,
                                   mode=mode, spares=spares,
                                   policy=policy, replicas=replicas))


def run_reference(nranks: int = 4, inserts: int = 4, *,
                  seed: int = SimConfig.seed, interval: int = 2,
                  mode: str = "spare", policy: str = "log",
                  ft_on: bool = True, obs=None) -> RunResult:
    """Fault-free run; with ``ft_on`` checkpoints are still taken (the
    overhead the FT benchmark measures), without it the run is the pure
    baseline."""
    faults = (ft_faults(mode=mode, interval=interval, policy=policy)
              if ft_on else None)
    return run_spmd_ft(nranks, inserts, seed=seed, faults=faults, obs=obs)


def run_spmd_ft(nranks: int, inserts: int, *, seed: int,
                faults: FaultConfig | None, obs=None) -> RunResult:
    from repro.runtime.job import run_spmd
    return run_spmd(ft_hashtable, nranks, nranks * inserts, inserts,
                    machine=ft_machine(), sim=SimConfig(seed=seed),
                    faults=faults, obs=obs)


def table_bytes(result: RunResult) -> bytes:
    """Concatenated final slot regions; raises the first rank failure."""
    chunks = []
    for value in result.returns:
        if isinstance(value, BaseException):
            raise value
        chunks.append(value)
    return b"".join(chunks)


@dataclass
class FTOutcome:
    """One crash-to-completion experiment: reference vs recovered run."""

    reference: RunResult
    recovered: RunResult
    crash_rank: int
    crash_time_ns: int
    mode: str
    match: bool

    def stats_row(self) -> dict:
        rec = self.recovered.stats.get("recovery", {})
        return {
            "crash_rank": self.crash_rank,
            "crash_time_ns": self.crash_time_ns,
            "mode": self.mode,
            "match": self.match,
            "ranks_restored": rec.get("ranks_restored", 0),
            "sim_time_ns": self.recovered.sim_time_ns,
            "ref_sim_time_ns": self.reference.sim_time_ns,
            "ft": self.recovered.stats.get("ft", {}),
        }


def run_crash_to_completion(nranks: int = 4, inserts: int = 4, *,
                            seed: int = SimConfig.seed,
                            crash_rank: int = 1, crash_frac: float = 0.5,
                            mode: str = "spare", interval: int = 2,
                            policy: str = "log",
                            replicas: int = 1) -> FTOutcome:
    """Crash ``crash_rank`` at ``crash_frac`` of the fault-free run's
    length, recover, and compare final tables bit-for-bit."""
    ref = run_reference(nranks, inserts, seed=seed, interval=interval,
                        mode=mode, policy=policy)
    t = max(1, int(ref.sim_time_ns * crash_frac))
    # One rank per node, so node id == rank id.
    faults = ft_faults(crashes=(NodeCrash(crash_rank, t),), mode=mode,
                       interval=interval, policy=policy, replicas=replicas)
    res = run_spmd_ft(nranks, inserts, seed=seed, faults=faults)
    return FTOutcome(reference=ref, recovered=res, crash_rank=crash_rank,
                     crash_time_ns=t, mode=mode,
                     match=table_bytes(res) == table_bytes(ref))


def soak(n_runs: int = 5, *, nranks: int = 4, inserts: int = 4,
         base_seed: int = SimConfig.seed) -> list[dict]:
    """Seeded randomized crash schedules: per run, derive a seed, a crash
    rank, a crash fraction in [0.35, 0.75) and a recovery mode, then run
    crash-to-completion and record whether the table matched."""
    rows = []
    for k in range(n_runs):
        seed = derive_seed(base_seed, f"ft-soak-{k}") & 0x7FFF_FFFF
        crash_rank = derive_seed(seed, "soak-rank") % nranks
        frac = 0.35 + (derive_seed(seed, "soak-frac") % 1000) / 2500.0
        mode = ("spare" if derive_seed(seed, "soak-mode") % 2 == 0
                else "shrink")
        out = run_crash_to_completion(nranks, inserts, seed=seed,
                                      crash_rank=crash_rank,
                                      crash_frac=frac, mode=mode)
        rows.append({"run": k, "seed": seed, **out.stats_row()})
    return rows
