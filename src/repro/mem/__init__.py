"""Simulated per-rank memory.

Each rank owns an :class:`~repro.mem.address_space.AddressSpace` holding
byte-addressable :class:`~repro.mem.address_space.Segment` objects at
virtual addresses.  Control words used by the paper's protocols (lock
variables, matching lists, completion counters) live in
:class:`~repro.mem.atomic.AtomicArray` cells that support *watchers* --
the simulation-level equivalent of CPU polling on a memory location.

The symmetric-heap allocation protocol of Section 2.2 (random base chosen
by a leader, ``mmap`` at a fixed address on every rank, retry until all
succeed) is implemented over these address spaces in
:mod:`repro.mem.symheap`.
"""

from repro.mem.address_space import AddressSpace, Segment
from repro.mem.atomic import AtomicArray
from repro.mem.registration import MemDescriptor, RegistrationTable
from repro.mem.symheap import SymHeapState, try_symmetric_alloc

__all__ = [
    "AddressSpace",
    "Segment",
    "AtomicArray",
    "MemDescriptor",
    "RegistrationTable",
    "SymHeapState",
    "try_symmetric_alloc",
]
