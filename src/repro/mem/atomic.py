"""64-bit atomic cell arrays with watchers.

All of the paper's synchronization state -- the two-level lock words
(Figure 3), PSCW matching lists, free-storage ring counters and completion
counters (Figure 2) -- are 64-bit words updated by remote AMOs or local CPU
atomics.  :class:`AtomicArray` models such words.

*Watchers* are the simulation's stand-in for CPU polling: a process can
wait until ``predicate(value)`` holds for a cell.  In hardware this is a
spin loop on cached memory; charging poll time is the caller's business
(the protocols charge their documented constants), the watcher merely
provides the wake-up without O(polls) simulation events.

All arithmetic wraps modulo 2**64 exactly like the hardware AMOs the paper
relies on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import MemoryError_
from repro.sim.kernel import Environment, Event, URGENT

__all__ = ["AtomicArray", "SegmentCells", "MASK64"]

MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _wrap(v: int) -> int:
    return v & MASK64


def _signed(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >= (1 << 63) else v


class AtomicArray:
    """An array of 64-bit atomic words with per-cell watchers."""

    def __init__(self, env: Environment, ncells: int, name: str = "") -> None:
        if ncells < 0:
            raise MemoryError_(f"negative cell count {ncells}")
        self.env = env
        self.name = name
        self._cells = [0] * ncells
        # idx -> list of (predicate, event)
        self._watchers: dict[int, list[tuple[Callable[[int], bool], Event]]] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def _check(self, idx: int) -> None:
        if not 0 <= idx < len(self._cells):
            raise MemoryError_(
                f"atomic index {idx} out of range [0, {len(self._cells)}) "
                f"in {self.name!r}")

    # -- plain access ----------------------------------------------------
    def load(self, idx: int) -> int:
        self._check(idx)
        return self._cells[idx]

    def load_signed(self, idx: int) -> int:
        return _signed(self.load(idx))

    def store(self, idx: int, value: int) -> None:
        self._check(idx)
        self._cells[idx] = _wrap(int(value))
        self._notify(idx)

    # -- read-modify-write ops (all return the OLD value) ----------------
    def fadd(self, idx: int, delta: int) -> int:
        self._check(idx)
        old = self._cells[idx]
        self._cells[idx] = _wrap(old + int(delta))
        self._notify(idx)
        return old

    def cas(self, idx: int, compare: int, swap: int) -> int:
        self._check(idx)
        old = self._cells[idx]
        if old == _wrap(int(compare)):
            self._cells[idx] = _wrap(int(swap))
            self._notify(idx)
        return old

    def swap(self, idx: int, value: int) -> int:
        self._check(idx)
        old = self._cells[idx]
        self._cells[idx] = _wrap(int(value))
        self._notify(idx)
        return old

    def apply(self, idx: int, op: str, operand: int) -> int:
        """Apply a named AMO; returns the old value.

        Supported ops mirror the DMAPP AMO set: add, and, or, xor, min,
        max (min/max signed, as MPI integer semantics require).
        """
        self._check(idx)
        old = self._cells[idx]
        v = int(operand)
        if op == "add":
            new = old + v
        elif op == "and":
            new = old & v
        elif op == "or":
            new = old | v
        elif op == "xor":
            new = old ^ v
        elif op == "min":
            new = old if _signed(old) <= _signed(v) else v
        elif op == "max":
            new = old if _signed(old) >= _signed(v) else v
        elif op == "replace":
            new = v
        else:
            raise MemoryError_(f"unknown AMO op {op!r}")
        self._cells[idx] = _wrap(new)
        self._notify(idx)
        return old

    # -- watchers ----------------------------------------------------------
    def wait_until(self, idx: int, predicate: Callable[[int], bool]) -> Event:
        """Event that fires (with the value) when ``predicate(value)`` holds.

        Fires immediately if it already holds.
        """
        self._check(idx)
        ev = self.env.event(name=f"watch:{self.name}[{idx}]")
        val = self._cells[idx]
        if predicate(val):
            ev.succeed(val, priority=URGENT)
            return ev
        self._watchers.setdefault(idx, []).append((predicate, ev))
        return ev

    def _notify(self, idx: int) -> None:
        lst = self._watchers.get(idx)
        if not lst:
            return
        val = self._cells[idx]
        fired = [w for w in lst if w[0](val)]
        if not fired:
            return
        self._watchers[idx] = [w for w in lst if w not in fired]
        for _pred, ev in fired:
            if not ev.triggered:
                ev.succeed(val, priority=URGENT)

    def snapshot(self) -> list[int]:
        return list(self._cells)


class SegmentCells:
    """64-bit atomic view over a data segment's words.

    The NIC AMO engine operates on any 8-byte-aligned registered memory,
    not just dedicated control words; this adapter lets the DMAPP AMO calls
    target window *data* (accumulates, fetch-and-op, CAS on user buffers).
    Cell index i is the i-th int64 word after ``base_offset``.  No watcher
    support -- user data is polled by protocols, never watched.
    """

    __slots__ = ("seg", "base_offset", "signed")

    def __init__(self, seg, base_offset: int = 0, signed: bool = True) -> None:
        if base_offset % 8:
            raise MemoryError_(f"AMO base offset {base_offset} not 8-aligned")
        self.seg = seg
        self.base_offset = base_offset
        self.signed = signed

    def _view(self) -> np.ndarray:
        dt = np.int64 if self.signed else np.uint64
        return self.seg.typed(dt, offset=self.base_offset)

    def load(self, idx: int) -> int:
        return int(self._view()[idx]) & MASK64

    def store(self, idx: int, value: int) -> None:
        v = self._view()
        v[idx] = np.int64(_signed(value)) if self.signed else np.uint64(_wrap(value))

    def cas(self, idx: int, compare: int, swap: int) -> int:
        old = self.load(idx)
        if old == _wrap(int(compare)):
            self.store(idx, swap)
        return old

    def swap(self, idx: int, value: int) -> int:
        old = self.load(idx)
        self.store(idx, value)
        return old

    def fadd(self, idx: int, delta: int) -> int:
        old = self.load(idx)
        self.store(idx, _wrap(old + int(delta)))
        return old

    def apply(self, idx: int, op: str, operand: int) -> int:
        old = self.load(idx)
        v = int(operand)
        if op == "add":
            new = old + v
        elif op == "and":
            new = old & v
        elif op == "or":
            new = old | v
        elif op == "xor":
            new = old ^ v
        elif op == "min":
            new = old if _signed(old) <= _signed(v) else v
        elif op == "max":
            new = old if _signed(old) >= _signed(v) else v
        elif op == "replace":
            new = v
        else:
            raise MemoryError_(f"unknown AMO op {op!r}")
        self.store(idx, _wrap(new))
        return old
