"""Symmetric-heap allocation mechanics (paper Section 2.2, Allocated Windows).

The protocol: a leader picks a random base address and broadcasts it; every
rank attempts ``mmap(MAP_FIXED)`` at that address; an allreduce checks
whether *all* succeeded; on any failure everyone unmaps and the leader
retries with a fresh address.  Success gives a window whose base address is
identical on every rank, so remote addressing needs O(1) state per rank.

This module provides the *local* pieces (random address proposal, fixed
allocation attempt, rollback).  The collective loop lives in
:func:`repro.rma.window.win_allocate`, which is where the paper places it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mem.address_space import (
    MMAP_REGION_HI,
    MMAP_REGION_LO,
    AddressSpace,
    Segment,
)

__all__ = ["SymHeapState", "propose_address", "try_symmetric_alloc"]

_PAGE = 0x1000


def propose_address(rng: np.random.Generator, size: int) -> int:
    """Leader's step (1): a page-aligned random base with room for ``size``."""
    span = MMAP_REGION_HI - MMAP_REGION_LO - size
    off = int(rng.integers(0, max(1, span // _PAGE))) * _PAGE
    return MMAP_REGION_LO + off


@dataclass
class SymHeapState:
    """Bookkeeping for one rank's symmetric-heap attempts (for tests/stats)."""

    attempts: int = 0
    failures: int = 0
    segments: list = field(default_factory=list)


def try_symmetric_alloc(
    space: AddressSpace,
    vaddr: int,
    size: int,
    state: SymHeapState | None = None,
    label: str = "symheap",
) -> Segment | None:
    """Rank's step (2): try to map ``size`` bytes at exactly ``vaddr``.

    Returns the segment, or ``None`` if the address range is already taken
    in this rank's address space (the caller then votes "failed" in the
    allreduce and everyone rolls back).
    """
    if state is not None:
        state.attempts += 1
    seg = space.alloc_at(vaddr, size, label=label)
    if seg is None:
        if state is not None:
            state.failures += 1
        return None
    if state is not None:
        state.segments.append(seg)
    return seg
