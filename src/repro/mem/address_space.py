"""Per-rank virtual address spaces and memory segments.

A :class:`Segment` is a contiguous byte buffer (numpy uint8) mapped at a
virtual address.  The address space tracks reserved intervals so the
symmetric-heap protocol's "mmap at this exact address" step can genuinely
fail on collision, exactly as the paper's POSIX protocol anticipates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_

__all__ = ["Segment", "AddressSpace"]

#: Default base of the anonymous-mapping area (mirrors a 47-bit VA layout).
MMAP_REGION_LO = 0x2000_0000_0000
MMAP_REGION_HI = 0x7000_0000_0000


class Segment:
    """A contiguous byte range of one rank's memory."""

    __slots__ = ("rank", "seg_id", "vaddr", "buf", "alive", "label",
                 "watch", "_mv")

    def __init__(self, rank: int, seg_id: int, vaddr: int, size: int,
                 label: str = "") -> None:
        if size < 0:
            raise MemoryError_(f"negative segment size {size}")
        self.rank = rank
        self.seg_id = seg_id
        self.vaddr = vaddr
        self.buf = np.zeros(size, dtype=np.uint8)
        # Cached flat byte view: the zero-copy read/write fast paths are
        # plain memoryview slice copies, no numpy dispatch per access.
        self._mv = memoryview(self.buf.data)
        self.alive = True
        self.label = label
        # Optional access funnel installed by the memory-model checker
        # (repro.check): called as watch(kind, offset, nbytes) on every
        # read()/write().  None in normal runs -- one branch of overhead.
        self.watch = None

    @property
    def size(self) -> int:
        return self.buf.size

    def _check(self, offset: int, nbytes: int) -> None:
        if not self.alive:
            raise MemoryError_(f"access to freed segment {self.label or self.seg_id}")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"out-of-range access [{offset}, {offset + nbytes}) in "
                f"segment of size {self.size} (rank {self.rank})")

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """A *copy* of ``nbytes`` bytes at ``offset``."""
        self._check(offset, nbytes)
        if self.watch is not None:
            self.watch("load", offset, nbytes)
        return self.buf[offset:offset + nbytes].copy()

    def read_into(self, offset: int, dst: memoryview) -> None:
        """Copy ``len(dst)`` bytes at ``offset`` straight into ``dst``.

        The zero-copy twin of :meth:`read`: one C-level slice copy, no
        intermediate array.  ``dst`` must be a contiguous uint8 view."""
        n = len(dst)
        self._check(offset, n)
        if self.watch is not None:
            self.watch("load", offset, n)
        dst[:] = self._mv[offset:offset + n]

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        """An immutable copy of ``nbytes`` bytes at ``offset``."""
        self._check(offset, nbytes)
        if self.watch is not None:
            self.watch("load", offset, nbytes)
        return bytes(self._mv[offset:offset + nbytes])

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        """A writable view (used by the XPMEM direct-mapping path)."""
        self._check(offset, nbytes)
        return self.buf[offset:offset + nbytes]

    def write(self, offset: int, data) -> None:
        if isinstance(data, (bytes, bytearray, memoryview)):
            # Zero-copy fast path: byte payloads (put pieces arrive as
            # memoryview slices of the captured payload) land with one
            # C-level slice copy.
            if type(data) is memoryview and (data.format != "B"
                                             or not data.contiguous):
                data = memoryview(bytes(data))
            n = len(data)
            self._check(offset, n)
            if self.watch is not None:
                self.watch("store", offset, n)
            self._mv[offset:offset + n] = data
            return
        arr = np.asarray(data, dtype=np.uint8).ravel()
        self._check(offset, arr.size)
        if self.watch is not None:
            self.watch("store", offset, arr.size)
        self.buf[offset:offset + arr.size] = arr

    def snapshot_bytes(self) -> bytes:
        """Checkpoint copy of the whole segment.

        Bypasses the memory-model watch: a checkpoint is infrastructure,
        not an application access, and must not fabricate happens-before
        shadow records."""
        if not self.alive:
            raise MemoryError_(
                f"snapshot of freed segment {self.label or self.seg_id}")
        return self.buf.tobytes()

    def restore_bytes(self, data, off: int = 0) -> None:
        """Restore-time overwrite, also invisible to the watch."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            arr = np.frombuffer(data, dtype=np.uint8)
        else:
            arr = np.asarray(data, dtype=np.uint8).ravel()
        self._check(off, arr.size)
        self.buf[off:off + arr.size] = arr

    def typed(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """A typed view over the segment (zero-copy)."""
        dt = np.dtype(dtype)
        avail = (self.size - offset) // dt.itemsize
        n = avail if count is None else count
        self._check(offset, n * dt.itemsize)
        return self.buf[offset:offset + n * dt.itemsize].view(dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment rank={self.rank} id={self.seg_id} "
                f"va={self.vaddr:#x} size={self.size} {self.label!r}>")


class AddressSpace:
    """One rank's virtual address space: segments + reserved intervals."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._next_id = 1
        self._cursor = MMAP_REGION_LO
        # Sorted list of (lo, hi) reserved byte intervals, non-overlapping.
        self._reserved: list[tuple[int, int]] = []
        self.segments: dict[int, Segment] = {}

    # -- interval bookkeeping -------------------------------------------
    def _overlaps(self, lo: int, hi: int) -> bool:
        return any(lo < rhi and rlo < hi for rlo, rhi in self._reserved)

    def _reserve(self, lo: int, hi: int) -> None:
        self._reserved.append((lo, hi))
        self._reserved.sort()

    def reserved_bytes(self) -> int:
        return sum(hi - lo for lo, hi in self._reserved)

    # -- allocation ------------------------------------------------------
    def alloc(self, size: int, label: str = "") -> Segment:
        """Allocate anywhere (like plain mmap(NULL, ...))."""
        size = max(1, int(size))
        lo = self._cursor
        while self._overlaps(lo, lo + size):
            lo += size + 0x1000
        self._cursor = lo + size + 0x1000
        return self._make(lo, size, label)

    def alloc_at(self, vaddr: int, size: int, label: str = "") -> Segment | None:
        """Allocate at a fixed address; ``None`` on collision (MAP_FIXED
        semantics with the failure mode of the paper's symmetric-heap
        protocol)."""
        size = max(1, int(size))
        if vaddr < MMAP_REGION_LO or vaddr + size > MMAP_REGION_HI:
            return None
        if self._overlaps(vaddr, vaddr + size):
            return None
        return self._make(vaddr, size, label)

    def _make(self, vaddr: int, size: int, label: str) -> Segment:
        seg_id = self._next_id
        self._next_id += 1
        seg = Segment(self.rank, seg_id, vaddr, size, label)
        self.segments[seg_id] = seg
        self._reserve(vaddr, vaddr + size)
        return seg

    def free(self, seg: Segment) -> None:
        if seg.seg_id not in self.segments:
            raise MemoryError_("double free or foreign segment")
        seg.alive = False
        del self.segments[seg.seg_id]
        self._reserved.remove((seg.vaddr, seg.vaddr + seg.size))

    def segment_at(self, vaddr: int) -> tuple[Segment, int]:
        """Resolve a virtual address to (segment, offset)."""
        for seg in self.segments.values():
            if seg.vaddr <= vaddr < seg.vaddr + seg.size:
                return seg, vaddr - seg.vaddr
        raise MemoryError_(f"rank {self.rank}: unmapped address {vaddr:#x}")
