"""Memory registration descriptors.

DMAPP and XPMEM both require memory to be *registered* before remote
access; registration returns a descriptor (an rkey) that remote peers must
present.  The paper's window-creation protocols are entirely about how
these descriptors are created, exchanged (two allgathers for traditional
windows; O(1) for symmetric allocated windows), cached and invalidated
(dynamic windows).

We model a descriptor as an unforgeable token bound to (rank, segment,
generation); a stale descriptor (detached region) raises
:class:`~repro.errors.RegistrationError`, which is what lets the test
suite verify the dynamic-window cache-invalidation protocol actually
refreshes descriptors rather than silently using stale ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegistrationError
from repro.mem.address_space import Segment

__all__ = ["MemDescriptor", "RegistrationTable"]


@dataclass(frozen=True)
class MemDescriptor:
    """Remote-access key for one registered segment."""

    rank: int
    seg_id: int
    generation: int
    vaddr: int
    size: int

    def contains(self, vaddr: int, nbytes: int) -> bool:
        return self.vaddr <= vaddr and vaddr + nbytes <= self.vaddr + self.size


class RegistrationTable:
    """Per-rank table of registered segments."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._generation = 0
        # seg_id -> (segment, descriptor)
        self._regs: dict[int, tuple[Segment, MemDescriptor]] = {}

    def register(self, seg: Segment) -> MemDescriptor:
        if seg.rank != self.rank:
            raise RegistrationError(
                f"rank {self.rank} cannot register rank {seg.rank}'s memory")
        self._generation += 1
        desc = MemDescriptor(self.rank, seg.seg_id, self._generation,
                             seg.vaddr, seg.size)
        self._regs[seg.seg_id] = (seg, desc)
        return desc

    def deregister(self, desc: MemDescriptor) -> None:
        entry = self._regs.get(desc.seg_id)
        if entry is None or entry[1].generation != desc.generation:
            raise RegistrationError("deregistering unknown or stale descriptor")
        del self._regs[desc.seg_id]

    def resolve(self, desc: MemDescriptor) -> Segment:
        """Validate a descriptor presented by a remote peer."""
        entry = self._regs.get(desc.seg_id)
        if entry is None:
            raise RegistrationError(
                f"rank {self.rank}: access with unregistered descriptor "
                f"seg={desc.seg_id}")
        seg, current = entry
        if current.generation != desc.generation:
            raise RegistrationError(
                f"rank {self.rank}: stale descriptor for seg={desc.seg_id} "
                f"(gen {desc.generation} != {current.generation})")
        return seg

    def resolve_va(self, vaddr: int, nbytes: int = 1) -> Segment:
        """Resolve a registered range by virtual address.

        This is how symmetric (allocated) windows address remote memory
        with O(1) stored state: the base address is the same everywhere,
        so the origin presents (rank, vaddr) and the target NIC finds the
        registration -- no per-peer descriptor table needed.
        """
        for seg, _desc in self._regs.values():
            if seg.vaddr <= vaddr and vaddr + nbytes <= seg.vaddr + seg.size:
                return seg
        raise RegistrationError(
            f"rank {self.rank}: no registered memory at {vaddr:#x} "
            f"(+{nbytes} bytes)")

    def descriptor_for_va(self, vaddr: int, nbytes: int = 1) -> MemDescriptor:
        seg = self.resolve_va(vaddr, nbytes)
        return self._regs[seg.seg_id][1]

    def registered_count(self) -> int:
        return len(self._regs)
