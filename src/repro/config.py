"""Global configuration dataclasses.

`MachineConfig` describes the simulated machine (a Cray-XE6-like system by
default: 32 cores per node, 3-D torus).  `SimConfig` controls simulation
determinism and safety limits.  Timing constants for the network and the
individual transports live in :mod:`repro.machine.params` — this module only
holds the structural knobs shared by every layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineConfig:
    """Structural description of the simulated machine.

    Attributes
    ----------
    ranks_per_node:
        Number of MPI processes placed on each node (Blue Waters XE6 nodes
        have 4 x 8-core Interlagos sockets; the paper runs 32 ranks/node).
    torus_shape:
        Shape of the 3-D torus.  ``None`` derives a near-cubic torus large
        enough for the requested number of nodes.
    cpu_ghz:
        Core clock used to convert instruction counts to nanoseconds.
    """

    ranks_per_node: int = 32
    torus_shape: tuple[int, int, int] | None = None
    cpu_ghz: float = 2.3

    def nodes_for(self, nranks: int) -> int:
        """Number of nodes needed to host ``nranks`` processes."""
        return max(1, math.ceil(nranks / self.ranks_per_node))

    def derive_torus(self, nranks: int) -> tuple[int, int, int]:
        """Torus shape hosting ``nranks`` ranks (near-cubic, min volume)."""
        if self.torus_shape is not None:
            return self.torus_shape
        nodes = self.nodes_for(nranks)
        # Near-cubic torus: smallest x >= y >= z with x*y*z >= nodes.
        z = max(1, round(nodes ** (1.0 / 3.0)))
        while z > 1 and nodes % 1 and False:  # pragma: no cover - guard
            z -= 1
        z = max(1, int(nodes ** (1.0 / 3.0)))
        y = max(1, int(math.sqrt(max(1, nodes // max(1, z)))))
        x = math.ceil(nodes / (y * z))
        while x * y * z < nodes:
            x += 1
        return (x, y, z)

    def instructions_to_ns(self, instructions: float) -> float:
        """Convert an instruction count to nanoseconds at ~1 IPC."""
        return instructions / self.cpu_ghz


@dataclass(frozen=True)
class SimConfig:
    """Simulation determinism and safety limits.

    Attributes
    ----------
    seed:
        Master seed; all stochastic choices (symmetric-heap addresses,
        random keys in applications, backoff jitter) derive from it.
    max_events:
        Hard cap on processed events -- a runaway-protocol backstop.
    trace:
        Record an event trace (slower; used by tests and debugging).
    """

    seed: int = 0xF0_3131  # "fo" MPI-3.1 :-)
    max_events: int = 200_000_000
    trace: bool = False


@dataclass
class RunResult:
    """Result of one SPMD run: per-rank return values plus counters."""

    returns: list
    sim_time_ns: int
    events_processed: int
    stats: dict = field(default_factory=dict)
