"""Global configuration dataclasses.

`MachineConfig` describes the simulated machine (a Cray-XE6-like system by
default: 32 cores per node, 3-D torus).  `SimConfig` controls simulation
determinism and safety limits.  Timing constants for the network and the
individual transports live in :mod:`repro.machine.params` — this module only
holds the structural knobs shared by every layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineConfig:
    """Structural description of the simulated machine.

    Attributes
    ----------
    ranks_per_node:
        Number of MPI processes placed on each node (Blue Waters XE6 nodes
        have 4 x 8-core Interlagos sockets; the paper runs 32 ranks/node).
    torus_shape:
        Shape of the 3-D torus.  ``None`` derives a near-cubic torus large
        enough for the requested number of nodes.
    cpu_ghz:
        Core clock used to convert instruction counts to nanoseconds.
    batch_delivery:
        Deliver same-edge packets completing at the same simulated tick
        through one shared kernel event (a carrier carrying the packet
        vector) instead of one event per packet.  Per-packet delivery
        times are identical either way; ``False`` restores the pre-gen2
        one-event-per-packet schedule exactly.
    """

    ranks_per_node: int = 32
    torus_shape: tuple[int, int, int] | None = None
    cpu_ghz: float = 2.3
    batch_delivery: bool = True

    def nodes_for(self, nranks: int) -> int:
        """Number of nodes needed to host ``nranks`` processes."""
        return max(1, math.ceil(nranks / self.ranks_per_node))

    def derive_torus(self, nranks: int) -> tuple[int, int, int]:
        """Torus shape hosting ``nranks`` ranks (near-cubic, min volume)."""
        if self.torus_shape is not None:
            return self.torus_shape
        nodes = self.nodes_for(nranks)
        # Near-cubic torus: x >= y >= z with x*y*z >= nodes.
        z = max(1, int(nodes ** (1.0 / 3.0)))
        y = max(1, int(math.sqrt(max(1, nodes // max(1, z)))))
        x = math.ceil(nodes / (y * z))
        while x * y * z < nodes:
            x += 1
        return (x, y, z)

    def instructions_to_ns(self, instructions: float) -> float:
        """Convert an instruction count to nanoseconds at ~1 IPC."""
        return instructions / self.cpu_ghz


@dataclass(frozen=True)
class SimConfig:
    """Simulation determinism and safety limits.

    Attributes
    ----------
    seed:
        Master seed; all stochastic choices (symmetric-heap addresses,
        random keys in applications, backoff jitter, fault injection)
        derive from it.
    max_events:
        Hard cap on processed events -- a runaway-protocol backstop.
    trace:
        Record an event trace (slower; used by tests and debugging).
    watchdog_interval:
        Events between progress-watchdog checks (0 disables the watchdog).
        The watchdog is a pure observer: it never schedules events or
        perturbs timing, so enabling it cannot change simulation results.
    watchdog_stalls:
        Consecutive stale checks (no protocol progress anywhere) before
        the watchdog raises :class:`~repro.errors.LivelockError` -- far
        earlier than the ``max_events`` backstop, and with diagnostics
        naming the stuck ranks.
    scheduler:
        ``"gen2"`` (default) runs the front-slot calendar-queue fast loop;
        ``"legacy"`` forces the pure binary-heap step-per-event loop kept
        as the A/B oracle.  Both produce bit-identical schedules.
    """

    seed: int = 0xF0_3131  # "fo" MPI-3.1 :-)
    max_events: int = 200_000_000
    trace: bool = False
    watchdog_interval: int = 800
    watchdog_stalls: int = 3
    scheduler: str = "gen2"


@dataclass(frozen=True)
class ScaleConfig:
    """Hybrid million-rank scale mode (:mod:`repro.scale`).

    When ``enabled`` is False -- the default -- the full-fidelity DES
    path runs unchanged.  Enabled, a seeded sample of ranks executes
    protocol-faithful generator code on the DES while the remaining
    ranks are folded into vectorized aggregate state evaluated against
    the same calibrated cost models; message counts for *all* ranks come
    from round-exact vectorized protocol models and are cross-checked
    against what the sampled ranks actually issue.

    Attributes
    ----------
    enabled:
        Route runs through the hybrid engine (``repro.scale.run_hybrid``).
    sample_fraction:
        Fraction of ranks promoted to full DES execution.
    sample_min / sample_max:
        Clamp on the sampled-rank count: at least ``sample_min`` (or p,
        if smaller) so tiny fractions still exercise the protocol code,
        at most ``sample_max`` so million-rank runs stay CI-viable.
    """

    enabled: bool = False
    sample_fraction: float = 1.0 / 64.0
    sample_min: int = 8
    sample_max: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction={self.sample_fraction} outside (0, 1]")
        if self.sample_min < 2:
            raise ValueError(
                f"sample_min={self.sample_min} must be >= 2 (ring "
                "workloads need a neighbor)")
        if self.sample_max < self.sample_min:
            raise ValueError(
                f"sample_max={self.sample_max} below "
                f"sample_min={self.sample_min}")

    def sample_count(self, nranks: int) -> int:
        """Sampled-rank count for a ``nranks``-rank hybrid run."""
        want = int(round(nranks * self.sample_fraction))
        want = max(self.sample_min, min(self.sample_max, want))
        return min(nranks, want)


@dataclass(frozen=True)
class ObsConfig:
    """Observability (spans + per-rank metrics) switches.

    When ``enabled`` is False -- the default -- no instrumentation object
    is constructed and every protocol-layer hook reduces to one ``is
    None`` test: schedules are bit-identical to pre-observability code.
    Recording itself is pure observation (list appends and dict updates
    on the simulated clock; nothing is ever scheduled), so enabling it
    does not perturb schedules either -- it only costs host time.

    Attributes
    ----------
    enabled:
        Attach an :class:`~repro.obs.core.Instrumentation` to the run
        (exposed as ``RunResult.obs``).
    max_spans:
        Span-log truncation limit; appends past it are counted in
        ``spans.dropped`` instead of stored.
    nic_marks:
        Record an instant mark on the destination NIC's track for every
        delivered packet (one track per NIC in the Chrome export).
        Metrics (bytes per link) are collected regardless.
    """

    enabled: bool = False
    max_spans: int = 500_000
    nic_marks: bool = True

    def __post_init__(self) -> None:
        if self.max_spans < 0:
            raise ValueError(f"max_spans={self.max_spans} is negative")


@dataclass(frozen=True)
class CheckConfig:
    """Memory-model checker (vector-clock race detection) switches.

    When ``enabled`` is False -- the default -- no checker is constructed
    and every protocol-layer hook reduces to one ``is None`` test:
    schedules are bit-identical to pre-checker code.  Recording itself is
    pure observation (list appends, dict updates and vector-clock
    arithmetic on the simulated clock; nothing is ever scheduled), so
    enabling it does not perturb schedules either.

    Attributes
    ----------
    enabled:
        Attach a :class:`~repro.check.core.RaceChecker` to the run
        (exposed as ``RunResult.check``).
    max_records:
        Cap on live shadow access records.  Past it, recording stops and
        the run is flagged ``truncated`` instead of growing without
        bound; full barriers prune records that can no longer race.
    track_local:
        Record target-side local loads/stores issued through
        ``Window.local_load`` / ``Window.local_store`` (the separate
        memory model's local/remote conflict class).
    """

    enabled: bool = False
    max_records: int = 200_000
    track_local: bool = True

    def __post_init__(self) -> None:
        if self.max_records < 0:
            raise ValueError(f"max_records={self.max_records} is negative")


@dataclass(frozen=True)
class NicStall:
    """The NIC of ``node`` freezes for ``[start_ns, start_ns+duration_ns)``:
    nothing injects from or is serviced at that node during the window."""

    node: int
    start_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"NicStall.node={self.node} is negative")
        if self.start_ns < 0:
            raise ValueError(
                f"NicStall.start_ns={self.start_ns} before t=0")
        if self.duration_ns < 0:
            raise ValueError(
                f"NicStall.duration_ns={self.duration_ns} is negative")

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class NodeCrash:
    """``node`` dies at ``time_ns``: its rank processes are killed, and any
    packet to or from it at/after that instant is lost forever."""

    node: int
    time_ns: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"NodeCrash.node={self.node} is negative")
        if self.time_ns < 0:
            raise ValueError(
                f"NodeCrash.time_ns={self.time_ns} before t=0")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    All randomness (which packet drops, corruption, latency spikes, backoff
    jitter) derives from the master seed, so a faulty run is exactly as
    bit-reproducible as a clean one: same seed + same plan => same drops,
    same retransmit counts, same simulated times.

    Attributes
    ----------
    drop_prob:
        Per-packet probability that the fabric silently loses the packet.
    corrupt_prob:
        Per-packet probability of payload corruption.  Corrupted packets
        arrive, fail the checksum at the receiving NIC and are discarded
        (they never mutate target memory) -- indistinguishable from a drop
        to the sender, but counted separately.
    delay_prob / delay_ns:
        Per-packet probability of a latency spike of ``delay_ns``.
    stalls:
        NIC stall windows (e.g. a PCIe hiccup or throttled NIC).
    crashes:
        Fail-stop node crashes at fixed simulated times.  Killing a node
        that holds a lock is how lock-holder death is injected.
    """

    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    delay_prob: float = 0.0
    delay_ns: int = 5_000
    stalls: tuple = ()
    crashes: tuple = ()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "corrupt_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        if self.delay_ns < 0:
            raise ValueError(f"delay_ns={self.delay_ns} is negative")
        # Accept lists for convenience; store tuples (hashable, frozen).
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for st in self.stalls:
            if not isinstance(st, NicStall):
                raise ValueError(f"stalls entry {st!r} is not a NicStall")
        for cr in self.crashes:
            if not isinstance(cr, NodeCrash):
                raise ValueError(f"crashes entry {cr!r} is not a NodeCrash")


@dataclass(frozen=True)
class RecoveryConfig:
    """Survivor-side recovery policy for planned node crashes.

    Only consulted when the active :class:`FaultPlan` contains crashes;
    without crashes none of the recovery machinery is constructed and the
    fault-free (and crash-free) schedules are untouched.

    Attributes
    ----------
    enabled:
        Master switch for the failure-notification service.  Off, a crash
        leaves survivors to the transport-level quarantine and the
        progress watchdog (the PR-1 behaviour).
    detect_ns:
        Time from the crash instant until the runtime's failure detector
        confirms the death and seeds the notification broadcast.
    notify_round_ns:
        Per-round cost of the binomial notification broadcast; survivor
        ``i`` learns of the failure after O(log p) such rounds.
    revoke_ns:
        Cost of one revocation step (rolling back one lock-word
        contribution, splicing one queue node, reclaiming one region).
    revoke_locks:
        When True, lock words and MCS queues owned by dead ranks are
        revoked so surviving waiters can proceed; when False, survivors
        only receive notifications (pending acquisitions still fail with
        a structured error instead of livelocking).
    ack_policy:
        ``"none"``: revocation starts right after the broadcast completes.
        ``"collective"``: revocation additionally waits for an O(log p)
        acknowledgment combine so every survivor is known to have been
        notified first (safer ordering, slower recovery).
    """

    enabled: bool = True
    detect_ns: int = 3_000
    notify_round_ns: int = 700
    revoke_ns: int = 900
    revoke_locks: bool = True
    ack_policy: str = "none"

    def __post_init__(self) -> None:
        for name in ("detect_ns", "notify_round_ns", "revoke_ns"):
            v = getattr(self, name)
            if v < 0:
                raise ValueError(f"RecoveryConfig.{name}={v} is negative")
        if self.ack_policy not in ("none", "collective"):
            raise ValueError(
                f"RecoveryConfig.ack_policy={self.ack_policy!r} not in "
                "('none', 'collective')")


@dataclass(frozen=True)
class FTConfig:
    """Rollback-recovery (checkpoint + put-log + restart) policy.

    Only consulted when the active :class:`FaultPlan` contains crashes and
    :class:`RecoveryConfig` is enabled; otherwise none of the FT machinery
    is constructed and schedules are bit-identical to FT-free runs.

    Attributes
    ----------
    enabled:
        Master switch for rollback recovery.  Off, crashes are survived
        only in the PR-4 sense (structured errors, revoked locks).
    interval:
        Application steps between coordinated checkpoints (the knob the
        FT paper's headline overhead figure sweeps).
    replicas:
        Buddy copies kept per checkpoint (each on the next ring node).
    spares:
        Spare *nodes* held out of the initial placement.  A crashed
        node's ranks restart on the next unused spare; with no spare
        left (or ``mode="shrink"``) they shrink onto their buddy node.
    mode:
        ``"spare"`` prefers spare nodes, ``"shrink"`` always re-homes
        onto the checkpoint buddy's node (oversubscribing it).
    policy:
        ``"log"``: demand-driven origin-side logging of puts/atomics
        targeting protected windows; a restored rank replays the delta
        since its checkpoint.  ``"ckpt_only"``: no logging -- restore
        rolls remote writes back to the last checkpoint (only sound for
        phases that quiesce remote access around checkpoints; used by
        the overhead benchmark to separate the two costs).
    ckpt_copy_ns_per_byte / restore_ns_per_byte / replay_ns_per_entry /
    rereg_ns_per_segment:
        Cost model for snapshotting into the buddy message, restoring
        bytes on the adopting node, replaying one log entry, and
        re-registering one adopted segment (memory registration +
        XPMEM re-expose).
    """

    enabled: bool = False
    interval: int = 8
    replicas: int = 1
    spares: int = 0
    mode: str = "spare"
    policy: str = "log"
    ckpt_copy_ns_per_byte: float = 0.05
    restore_ns_per_byte: float = 0.1
    replay_ns_per_entry: int = 120
    rereg_ns_per_segment: int = 2_500

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"FTConfig.interval={self.interval} must be >= 1")
        if self.replicas < 1:
            raise ValueError(
                f"FTConfig.replicas={self.replicas} must be >= 1")
        if self.spares < 0:
            raise ValueError(f"FTConfig.spares={self.spares} is negative")
        if self.mode not in ("spare", "shrink"):
            raise ValueError(
                f"FTConfig.mode={self.mode!r} not in ('spare', 'shrink')")
        if self.policy not in ("log", "ckpt_only"):
            raise ValueError(
                f"FTConfig.policy={self.policy!r} not in "
                "('log', 'ckpt_only')")
        for name in ("ckpt_copy_ns_per_byte", "restore_ns_per_byte"):
            if getattr(self, name) < 0:
                raise ValueError(f"FTConfig.{name} is negative")
        for name in ("replay_ns_per_entry", "rereg_ns_per_segment"):
            if getattr(self, name) < 0:
                raise ValueError(f"FTConfig.{name} is negative")


@dataclass(frozen=True)
class FaultConfig:
    """A :class:`FaultPlan` plus the resilience-machinery tuning knobs.

    When no ``FaultConfig`` is supplied to a run, none of the fault or
    retry machinery is constructed at all -- fault-free runs are
    bit-identical to runs of the unhardened code.

    Attributes
    ----------
    plan:
        The faults to inject (``None`` = no injection, machinery off).
    max_retries:
        Retransmissions per operation before the transport gives up and
        raises :class:`~repro.errors.DeadlineError`.
    op_deadline_ns:
        Time the origin NIC waits for the remote-completion ack of one
        transmission attempt before declaring it lost.
    retry_backoff_base_ns / retry_backoff_max_ns:
        Capped exponential backoff between retransmissions.
    retry_jitter_ns:
        Amplitude of the seeded (deterministic) jitter added to each
        backoff step to de-synchronize contending retriers.
    recovery:
        Survivor-side recovery policy applied when the plan crashes nodes
        (:class:`RecoveryConfig`).
    ft:
        Rollback-recovery policy (:class:`FTConfig`); only active on top
        of an enabled ``recovery`` when the plan contains crashes.
    """

    plan: FaultPlan | None = None
    max_retries: int = 64
    op_deadline_ns: int = 30_000
    retry_backoff_base_ns: int = 500
    retry_backoff_max_ns: int = 16_000
    retry_jitter_ns: int = 200
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    ft: FTConfig = field(default_factory=FTConfig)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries={self.max_retries} is negative")
        if self.op_deadline_ns <= 0:
            raise ValueError(
                f"op_deadline_ns={self.op_deadline_ns} must be positive")
        for name in ("retry_backoff_base_ns", "retry_backoff_max_ns",
                     "retry_jitter_ns"):
            v = getattr(self, name)
            if v < 0:
                raise ValueError(f"{name}={v} is negative")
        if self.retry_backoff_max_ns < self.retry_backoff_base_ns:
            raise ValueError(
                f"retry_backoff_max_ns={self.retry_backoff_max_ns} below "
                f"retry_backoff_base_ns={self.retry_backoff_base_ns}")

    @property
    def active(self) -> bool:
        return self.plan is not None


@dataclass
class RunResult:
    """Result of one SPMD run: per-rank return values plus counters.

    ``obs`` is the run's :class:`~repro.obs.core.Instrumentation` when
    observability was enabled (span timeline + metrics registry), else
    None.  ``check`` is the run's :class:`~repro.check.core.RaceChecker`
    when memory-model checking was enabled (shadow accesses + violation
    list), else None.  Neither is folded into ``stats`` -- the stats dict
    stays plain JSON-ready data (checker counters appear there under the
    ``"check"`` key).
    """

    returns: list
    sim_time_ns: int
    events_processed: int
    stats: dict = field(default_factory=dict)
    obs: object | None = None
    check: object | None = None
