"""foMPI-py: a simulated reproduction of the SC'13 foMPI paper.

This package implements the scalable MPI-3.0 one-sided (RMA) protocols of

    Gerstenberger, Besta, Hoefler:
    "Enabling Highly-Scalable Remote Memory Access Programming with
    MPI-3 One Sided", SC 2013

on top of a deterministic discrete-event simulation of a Cray-XE6-like
machine (Gemini-like 3-D torus network exposed through a DMAPP-like RDMA
API, plus an XPMEM-like intra-node shared-memory substrate).

Top-level convenience re-exports cover the most common entry points; see
the subpackages for the full API:

- :mod:`repro.sim`      -- discrete-event simulation kernel
- :mod:`repro.machine`  -- machine/network model
- :mod:`repro.mem`      -- address spaces, atomics, symmetric heap
- :mod:`repro.dmapp`    -- DMAPP-like RDMA substrate
- :mod:`repro.xpmem`    -- XPMEM-like intra-node substrate
- :mod:`repro.runtime`  -- SPMD job launcher and collectives
- :mod:`repro.mpi1`     -- MPI-1 message-passing baseline
- :mod:`repro.rma`      -- the MPI-3 RMA library (the paper's contribution)
- :mod:`repro.pgas`     -- UPC-like and Coarray-like comparators
- :mod:`repro.models`   -- the paper's performance models
- :mod:`repro.apps`     -- hashtable, DSDE, 3-D FFT, MILC proxy
- :mod:`repro.bench`    -- per-figure benchmark harness
"""

from repro._version import __version__
from repro.config import (
    FaultConfig,
    FaultPlan,
    MachineConfig,
    NicStall,
    NodeCrash,
    SimConfig,
)

__all__ = [
    "__version__",
    "MachineConfig",
    "SimConfig",
    "FaultPlan",
    "FaultConfig",
    "NicStall",
    "NodeCrash",
    "Job",
    "run_spmd",
]


def __getattr__(name):
    # Lazy re-exports keep `import repro` cheap and avoid importing the
    # whole stack for users who only want one subsystem.
    if name in ("Job", "run_spmd"):
        from repro.runtime import job

        return getattr(job, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
