"""XPMEM expose/attach and direct-copy operations.

All operations execute synchronously on the calling CPU (charged as
simulated time), with effects visible immediately -- the unified memory
model of same-node shared memory.  Atomics map to CPU ``lock``-prefix
instructions on the same :class:`~repro.mem.atomic.AtomicArray` cells the
NIC AMO engine uses, so intra- and inter-node atomics compose correctly on
a single memory image (required by MPI-3's unified model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RegistrationError
from repro.machine.params import XpmemParams
from repro.mem.address_space import Segment
from repro.mem.atomic import AtomicArray

__all__ = ["XpmemSegment", "XpmemEndpoint"]


@dataclass(frozen=True)
class XpmemSegment:
    """Token for an exposed segment (like an xpmem segid/apid pair)."""

    owner_rank: int
    node: int
    seg: Segment


class XpmemEndpoint:
    """One rank's XPMEM context."""

    def __init__(self, env, rank: int, rank_map, params: XpmemParams | None = None,
                 counters=None) -> None:
        self.env = env
        self.rank = rank
        self.rank_map = rank_map
        self.node = rank_map.node_of(rank)
        self.params = params or XpmemParams()
        self.counters = counters
        # Memory-model checker (attached by the runtime; None when off).
        self.checker = None
        self._attached: dict[tuple[int, int], XpmemSegment] = {}

    # -- expose / attach -------------------------------------------------
    def expose(self, seg: Segment) -> XpmemSegment:
        return XpmemSegment(self.rank, self.node, seg)

    def attach(self, token: XpmemSegment) -> XpmemSegment:
        """Map a same-node peer's exposed segment; raises off-node."""
        if token.node != self.node:
            raise RegistrationError(
                f"rank {self.rank} (node {self.node}) cannot XPMEM-attach "
                f"memory on node {token.node}")
        self._attached[(token.owner_rank, token.seg.seg_id)] = token
        return token

    # -- data movement (CPU copies; synchronous) ---------------------------
    def store(self, token: XpmemSegment, offset: int, data):
        """CPU copy into an attached segment ('put' direction).

        Stores are write-behind: the copy loop runs at SSE bandwidth with
        only a small setup cost, which is what makes the intra-node
        message rate ~12.5 M/s (Figure 5c).
        """
        src = np.ascontiguousarray(np.asarray(data)).view(np.uint8).ravel()
        p = self.params
        cost = int(round(p.store_setup + src.size * p.copy_per_byte))
        if self.counters is not None:
            self.counters.count_issue(self.rank, "xpmem-store", src.size)
        if self.checker is not None:
            self.checker.note_transport(self.rank, "xpmem-store", src.size)
        yield self.env.timeout(cost)
        token.seg.write(offset, src)
        self.env.note_progress()  # completed data movement

    def load(self, token: XpmemSegment, offset: int, nbytes: int):
        """CPU copy out of an attached segment ('get' direction).

        Loads pay the cache-miss chain to the owner's memory (the ~0.35 us
        floor of Figure 4c) plus copy bandwidth.
        """
        p = self.params
        cost = int(round(p.latency + nbytes * p.copy_per_byte))
        if self.counters is not None:
            self.counters.count_issue(self.rank, "xpmem-load", nbytes)
        if self.checker is not None:
            self.checker.note_transport(self.rank, "xpmem-load", nbytes)
        yield self.env.timeout(cost)
        self.env.note_progress()  # completed data movement
        return token.seg.read(offset, nbytes)

    # -- CPU atomics -------------------------------------------------------
    def amo(self, cells: AtomicArray, idx: int, op: str, operand: int,
            operand2: int = 0):
        """lock-prefixed CPU atomic on (possibly remote-on-node) cells."""
        yield self.env.timeout(int(round(self.params.amo_latency)))
        if self.counters is not None:
            self.counters.count_issue(self.rank, f"cpu-amo:{op}", 8)
        if op == "cas":
            return cells.cas(idx, operand, operand2)
        return cells.apply(idx, op, operand)

    def amo_custom(self, mutate):
        """CPU atomic with a caller-supplied read-modify-write.  Like the
        NIC-side ``amo_custom_nbi``, the closure runs atomically at its
        effect time, so bookkeeping chained into ``mutate`` (the recovery
        ledger) can never observe a half-applied op."""
        yield self.env.timeout(int(round(self.params.amo_latency)))
        if self.counters is not None:
            self.counters.count_issue(self.rank, "cpu-amo:custom", 8)
        return mutate()

    def amo_stream(self, cells: AtomicArray, base_idx: int, op: str,
                   operands, fetch: bool = False):
        """Element-wise CPU atomics over consecutive cells."""
        ops = [int(v) for v in np.asarray(operands).ravel()]
        cost = int(round(self.params.amo_latency +
                         self.params.copy_per_byte * 8 * len(ops)))
        yield self.env.timeout(cost)
        old = [cells.apply(base_idx + i, op, v) for i, v in enumerate(ops)]
        if self.counters is not None:
            self.counters.count_issue(self.rank, f"cpu-amo-stream:{op}",
                                      8 * len(ops))
        return np.array(old, dtype=np.uint64) if fetch else None

    def mfence(self):
        """x86 mfence: all prior stores globally visible (instant in the
        unified model; charged at the call sites per the paper's
        instruction counts)."""
        return
        yield  # pragma: no cover - makes this a generator function
