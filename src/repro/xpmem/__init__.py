"""XPMEM-like intra-node substrate.

Models the Linux kernel module the paper uses for intra-node transfers:
a process *exposes* a memory segment, peers on the same node *attach* it
into their own address space, and all subsequent communication is plain
loads/stores (an SSE-optimized copy loop in foMPI) plus CPU atomics.
Because attached memory is accessed by the CPU, copies cannot overlap with
computation -- the reason the XPMEM curves are absent from the overlap
benchmark (Figure 5a).
"""

from repro.xpmem.api import XpmemEndpoint, XpmemSegment

__all__ = ["XpmemEndpoint", "XpmemSegment"]
