"""MPI-1 message-passing baseline.

This is the comparator the paper measures against in Figures 4, 5, 7 and 8:
two-sided send/recv with receiver-side matching, an eager protocol (with
its extra copy) for small messages and a rendezvous handshake (RTS/CTS/data)
for large ones -- exactly the overheads Section 1 argues RMA avoids.
"""

from repro.mpi1.matching import MatchQueue, Message
from repro.mpi1.params import Mpi1Params
from repro.mpi1.pt2pt import ANY_SOURCE, ANY_TAG, Mpi1Endpoint, Request

__all__ = [
    "Mpi1Endpoint",
    "Mpi1Params",
    "Request",
    "Message",
    "MatchQueue",
    "ANY_SOURCE",
    "ANY_TAG",
]
