"""Timing parameters for the MPI-1 baseline (Cray-MPT-like).

Calibrated against Figure 4a: 8-byte ping-pong half-round-trip ~1.3 us
(above foMPI's 1.0 us put -- message matching and the eager copy are the
difference), converging toward wire bandwidth at large sizes where the
rendezvous protocol is zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Mpi1Params"]


@dataclass(frozen=True)
class Mpi1Params:
    """All times in ns, inverse bandwidths in ns/byte."""

    o_send: float = 150.0          # sender-side library overhead
    o_issue: float = 210.0         # per-message descriptor/queue work
    o_recv_match: float = 420.0    # receiver-side matching + completion
    eager_threshold: int = 8192    # switch to rendezvous above this
    eager_copy_per_byte: float = 0.25   # receive-side bounce-buffer copy
    rndv_handshake: float = 300.0  # extra software latency for RTS/CTS each
    header_bytes: int = 32
    intra_latency: float = 250.0   # one-way small-message latency on-node
    intra_copy_per_byte: float = 0.154
