"""Point-to-point messaging: eager and rendezvous protocols over the
simulated machine.

Protocol summary (paper Section 1's "fast message passing libraries over
RDMA usually require different protocols"):

* **eager** (size <= threshold): data travels immediately; the receiver
  pays matching overhead plus an extra bounce-buffer copy.
* **rendezvous** (large, and all synchronous sends): the sender announces
  with an RTS header; when the receiver matches, it returns a CTS; the
  sender's NIC then moves the data zero-copy.  The handshake adds latency
  and couples the sender to the receiver's arrival -- the overhead the
  paper's one-sided protocols avoid.
* **sync-eager** (small synchronous sends, used by the NBX/DSDE protocol):
  the payload rides along with the RTS and the receiver's match is
  acknowledged back to the sender, which completes only then.

Small-message *intra-node* transfers bypass the NIC and use the XPMEM cost
model, matching the intra/inter knees in the application figures.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from repro.errors import Mpi1Error, NodeCrashedError
from repro.machine.network import Network
from repro.machine.params import XpmemParams
from repro.mpi1.matching import (
    ANY_SOURCE,
    ANY_TAG,
    MatchQueue,
    Message,
    PostedRecv,
)
from repro.mpi1.params import Mpi1Params

__all__ = ["Mpi1Endpoint", "Request", "ANY_SOURCE", "ANY_TAG", "wire_size"]


def wire_size(payload: Any) -> int:
    """Default on-wire size estimate for a Python payload."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (tuple, list)):
        return 8 + sum(wire_size(x) for x in payload)
    if isinstance(payload, dict):
        return 8 + sum(8 + wire_size(v) for v in payload.values())
    return 64


def _freeze(payload: Any) -> Any:
    """Capture send buffers at issue time (MPI send-buffer semantics)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


class Request:
    """Completion handle for isend/irecv."""

    __slots__ = ("endpoint", "kind", "event", "_payload", "_recv_cost", "message")

    def __init__(self, endpoint: "Mpi1Endpoint", kind: str) -> None:
        self.endpoint = endpoint
        self.kind = kind
        self.event = endpoint.env.event(name=f"req-{kind}")
        self._payload: Any = None
        self._recv_cost = 0
        self.message: Message | None = None

    def test(self) -> bool:
        """Nonblocking completion check (no cost model: a flag test)."""
        return self.event.triggered

    def wait(self):
        """Block until complete; returns the payload for receives."""
        if not self.event.triggered:
            yield self.event
        if self.kind == "recv" and self._recv_cost:
            cost, self._recv_cost = self._recv_cost, 0
            yield self.endpoint.env.timeout(cost)
        return self._payload


class Mpi1Endpoint:
    """One rank's two-sided messaging engine."""

    _seq = itertools.count(1)
    # Rollback-recovery runtime (repro.ft), assigned by RankContext for
    # FT runs.  Two-sided traffic is NOT logged/replayed -- messages in a
    # dead rank's unexpected queue die with it -- so FT merely holds
    # sends addressed to a recoverable rank until its restart instead of
    # failing them.  Crashes must not overlap two-sided phases (documented
    # V1 limitation; the FT workloads only use collectives during setup).
    ft = None
    # Memory-model checker (repro.check), assigned by RankContext when
    # checking is enabled.  Send/recv match points are happens-before
    # edges: the sender deposits its vector clock on the Message at
    # isend, the receiver acquires it when the match completes -- so
    # mixed two-sided/one-sided programs that order RMA accesses with
    # messages do not report false races (same None-when-disabled
    # zero-cost contract as every other protocol hook).
    checker = None

    def __init__(
        self,
        env,
        rank: int,
        network: Network,
        rank_map,
        params: Mpi1Params | None = None,
        xpmem_params: XpmemParams | None = None,
        registry: dict[int, "Mpi1Endpoint"] | None = None,
    ) -> None:
        self.env = env
        self.rank = rank
        self.network = network
        self.rank_map = rank_map
        self.node = rank_map.node_of(rank)
        self.params = params or Mpi1Params()
        self.xpmem = xpmem_params or XpmemParams()
        self.registry = registry if registry is not None else {}
        self.registry[rank] = self
        self.queue = MatchQueue()

    # ------------------------------------------------------------------
    # transport helpers
    # ------------------------------------------------------------------
    def _peer(self, rank: int) -> "Mpi1Endpoint":
        try:
            return self.registry[rank]
        except KeyError:
            raise Mpi1Error(f"no such rank {rank}") from None

    def _quarantine_check(self, peer_rank: int, op: str) -> None:
        """Fail fast on communication with a crashed node (graceful
        degradation: a structured error instead of a hang)."""
        inj = self.network.injector
        if inj is None or peer_rank == ANY_SOURCE:
            return
        pnode = self.rank_map.node_of(peer_rank)
        if inj.node_crashed(pnode, self.env.now):
            raise NodeCrashedError(
                pnode, inj.crash_time(pnode),
                f"{op} between rank {self.rank} and rank {peer_rank} "
                f"refused (node quarantined)")

    def _ship(self, dest: int, nbytes: int, deliver_cb) -> tuple[int, int]:
        """Move ``nbytes`` to rank ``dest``; run ``deliver_cb`` on arrival.

        Returns ``(local_complete, cpu_free)``: when the buffer is
        reusable and until when the sending CPU is busy (descriptor work
        plus FIFO backpressure -- this bounds the MPI-1 message rate of
        Figure 5b).  Uses the network inter-node and the XPMEM cost model
        intra-node.
        """
        env = self.env
        p = self.params
        dnode = self.rank_map.node_of(dest)
        if dnode == self.node:
            copy = int(round(self.xpmem.store_setup
                             + nbytes * self.xpmem.copy_per_byte))
            arrival = env.now + copy + int(round(self.xpmem.latency))
            ev = env.event(name="intra-msg")
            ev.callbacks.append(lambda _e: deliver_cb(env.now))
            ev.succeed(delay=arrival - env.now)
            self.network.counters.count_issue(self.rank, "mpi1-intra", nbytes)
            cpu_free = env.now + copy + int(round(p.o_issue))
            return cpu_free, cpu_free
        total = nbytes + p.header_bytes
        net = self.network
        inj_start, inj_end = net.occupy_injection(self.node, total)
        # reliable=True enables link-level recovery when a fault injector
        # is installed: the source NIC retransmits lost/corrupted packets
        # with seeded backoff until delivery (a no-op on clean fabrics).
        net.packet(self.node, dnode, total,
                   inject_window=(inj_start, inj_end),
                   on_deliver=deliver_cb, reliable=True)
        net.counters.count_issue(self.rank, "mpi1-inter", nbytes)
        admit = net.injection_admit(self.node, inj_end, total)
        cpu_free = max(env.now, admit) + int(round(
            net.params.o_inject + p.o_issue))
        return inj_end, cpu_free

    # ------------------------------------------------------------------
    # sends
    # ------------------------------------------------------------------
    def isend(self, dest: int, payload: Any, tag: int = 0,
              channel: str = "user", nbytes: int | None = None,
              sync: bool = False):
        """Nonblocking send; generator returning a :class:`Request`."""
        n = wire_size(payload) if nbytes is None else int(nbytes)
        if self.ft is None:
            self._quarantine_check(dest, "send")
        else:
            while True:
                try:
                    self._quarantine_check(dest, "send")
                    break
                except NodeCrashedError as exc:
                    yield from self.ft.pause_for_restore(self.rank, dest, exc)
        self.env.api_sites[f"rank{self.rank}"] = (
            f"mpi.isend(dest={dest}, tag={tag}, {n}B)")
        req = Request(self, "send")
        yield self.env.timeout(int(round(self.params.o_send)))
        data = _freeze(payload)
        msg = Message(self.rank, channel, tag, data, n, "eager",
                      seq=next(self._seq))
        if self.checker is not None:
            msg.clock = self.checker.msg_send(self.rank)
        peer = self._peer(dest)

        if sync or n > self.params.eager_threshold:
            msg.kind = "rts"
            msg.sender_state = {
                "req": req, "sync_eager": sync and n <= self.params.eager_threshold,
                "endpoint": self, "dest": dest,
            }
            if msg.sender_state["sync_eager"]:
                # payload rides with the RTS; sender completes on match-ack
                _done, cpu_free = self._ship(
                    dest, n + self.params.header_bytes,
                    lambda _t, m=msg, p=peer: p._on_arrival(m))
            else:
                msg.sender_state["data"] = data
                msg.payload = None  # data moves only after CTS
                _done, cpu_free = self._ship(
                    dest, self.params.header_bytes,
                    lambda _t, m=msg, p=peer: p._on_arrival(m))
        else:
            local_done, cpu_free = self._ship(
                dest, n, lambda _t, m=msg, p=peer: p._on_arrival(m))
            req.event.succeed(delay=max(0, local_done - self.env.now))
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return req

    def send(self, dest: int, payload: Any, tag: int = 0,
             channel: str = "user", nbytes: int | None = None):
        """Blocking standard send."""
        req = yield from self.isend(dest, payload, tag, channel, nbytes)
        yield from req.wait()

    def issend(self, dest: int, payload: Any, tag: int = 0,
               channel: str = "user", nbytes: int | None = None):
        """Nonblocking synchronous send (completes only once matched) --
        the primitive the NBX dynamic-sparse-data-exchange needs."""
        return (yield from self.isend(dest, payload, tag, channel, nbytes,
                                      sync=True))

    # ------------------------------------------------------------------
    # receives
    # ------------------------------------------------------------------
    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              channel: str = "user") -> Request:
        """Nonblocking receive (plain function -- posting is instant; the
        matching cost is charged when the request completes)."""
        req = Request(self, "recv")
        posted = PostedRecv(src, channel, tag, event=req)
        msg = self.queue.post(posted)
        if msg is not None:
            if msg.kind == "rts":
                if msg.sender_state.get("sync_eager"):
                    self._ack_sync(msg)
                    self._complete_recv(req, msg)
                else:
                    posted.event = req
                    self._send_cts_for(msg, posted)
            else:
                self._complete_recv(req, msg)
        return req

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
             channel: str = "user"):
        """Blocking receive; returns the payload."""
        self._quarantine_check(src, "recv")
        self.env.api_sites[f"rank{self.rank}"] = (
            f"mpi.recv(src={'ANY' if src == ANY_SOURCE else src}, "
            f"tag={'ANY' if tag == ANY_TAG else tag})")
        req = self.irecv(src, tag, channel)
        return (yield from req.wait())

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
               channel: str = "user") -> Message | None:
        """Check the unexpected queue without receiving."""
        return self.queue.probe(src, channel, tag)

    def improbe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
                channel: str = "user") -> Message | None:
        """Match-and-extract from the unexpected queue; pair with mrecv."""
        msg = self.queue.extract(src, channel, tag)
        if msg is not None and msg.kind == "rts":
            if msg.sender_state.get("sync_eager"):
                # Payload rode along with the RTS; ack the match so the
                # synchronous sender can complete.
                self._ack_sync(msg)
            else:
                # An extracted rendezvous message still needs its data.
                self._send_cts_for(msg)
        return msg

    def mrecv(self, msg: Message):
        """Receive a message previously extracted by improbe."""
        req = Request(self, "recv")
        if msg.kind == "eager" or msg.payload is not None:
            self._complete_recv(req, msg)
        else:
            msg.sender_state["recv_req"] = req
        return (yield from req.wait())

    # ------------------------------------------------------------------
    # engine internals (run from delivery callbacks)
    # ------------------------------------------------------------------
    def _on_arrival(self, msg: Message) -> None:
        # Every message arrival is forward progress (it happens once per
        # message -- unlike retry loops, it cannot recur in a livelock).
        self.env.note_progress()
        recv = self.queue.arrive(msg)
        if msg.kind == "rts":
            if msg.sender_state.get("sync_eager"):
                # ack the match back to the sender when matched
                if recv is not None:
                    self._ack_sync(msg)
                    self._complete_recv(recv.event, msg)
                # else: acked when a matching recv is posted (in post path)
            elif recv is not None:
                self._send_cts_for(msg, recv)
        else:
            if recv is not None:
                self._complete_recv(recv.event, msg)

    def _complete_recv(self, req: Request, msg: Message) -> None:
        # A successful match is forward progress for the livelock watchdog.
        self.env.note_progress()
        if self.checker is not None:
            self.checker.msg_recv(self.rank, msg.clock)
        p = self.params
        cost = p.o_recv_match
        if msg.kind == "eager":
            cost += msg.nbytes * p.eager_copy_per_byte
        req._payload = msg.payload
        req._recv_cost = int(round(cost))
        req.message = msg
        if msg.kind == "rts" and msg.sender_state.get("sync_eager"):
            pass  # ack handled by caller
        if not req.event.triggered:
            req.event.succeed(msg)

    def _ack_sync(self, msg: Message) -> None:
        st = msg.sender_state
        sender: Mpi1Endpoint = st["endpoint"]
        sreq: Request = st["req"]

        def _fire(_t):
            if not sreq.event.triggered:
                sreq.event.succeed()

        self._ship(sender.rank, 0, lambda t: _fire(t))

    def _send_cts_for(self, msg: Message, recv: PostedRecv | None = None) -> None:
        """Receiver side of rendezvous: CTS back, then data comes over."""
        st = msg.sender_state
        sender: Mpi1Endpoint = st["endpoint"]

        def _on_cts(_t) -> None:
            data = st["data"]

            def _on_data(_t2) -> None:
                msg.payload = data
                sreq: Request = st["req"]
                if not sreq.event.triggered:
                    sreq.event.succeed()
                target_req = st.get("recv_req") or (recv.event if recv else None)
                if target_req is not None:
                    self._complete_recv(target_req, msg)

            # The sender NIC moves the data without CPU involvement.
            sender._ship(self.rank, msg.nbytes, _on_data)

        extra = int(round(self.params.rndv_handshake))

        def _delayed_cts(_t) -> None:
            _on_cts(_t)

        # CTS header: receiver -> sender, plus software handshake latency.
        ev = self.env.event(name="cts-delay")
        ev.callbacks.append(lambda _e: self._ship(
            sender.rank, self.params.header_bytes, _delayed_cts))
        ev.succeed(delay=extra)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def sendrecv(self, dest: int, payload: Any, src: int = ANY_SOURCE,
                 tag: int = 0, channel: str = "user",
                 nbytes: int | None = None):
        sreq = yield from self.isend(dest, payload, tag, channel, nbytes)
        rreq = self.irecv(src, tag, channel)
        got = yield from rreq.wait()
        yield from sreq.wait()
        return got
