"""Receiver-side message matching.

MPI's two-sided semantics require the receiver to match each incoming
message against posted receives by (source, tag) with wildcard support, in
posting order -- this matching work is one of the overheads the paper's
one-sided protocols eliminate.  The queue keeps MPI's non-overtaking
guarantee: messages from the same source with the same tag match in send
order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "PostedRecv", "MatchQueue", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """An arrived (or announced, for rendezvous) message."""

    src: int
    channel: str
    tag: int
    payload: Any
    nbytes: int
    kind: str              # 'eager' | 'rts'
    seq: int = 0
    sender_state: Any = None  # rendezvous bookkeeping back-pointer
    clock: Any = None      # sender's deposited vector clock (checker runs)


@dataclass
class PostedRecv:
    """A receive posted by the application, awaiting a match."""

    src: int
    channel: str
    tag: int
    event: Any             # sim Event fired with the Message on match
    seq: int = 0


def _matches(recv: PostedRecv, msg: Message) -> bool:
    if recv.channel != msg.channel:
        return False
    if recv.src != ANY_SOURCE and recv.src != msg.src:
        return False
    if recv.tag != ANY_TAG and recv.tag != msg.tag:
        return False
    return True


@dataclass
class MatchQueue:
    """Posted-receive queue plus unexpected-message queue for one rank."""

    posted: deque = field(default_factory=deque)
    unexpected: deque = field(default_factory=deque)

    def post(self, recv: PostedRecv) -> Message | None:
        """Post a receive; returns an unexpected message if one matches."""
        for i, msg in enumerate(self.unexpected):
            if _matches(recv, msg):
                del self.unexpected[i]
                return msg
        self.posted.append(recv)
        return None

    def arrive(self, msg: Message) -> PostedRecv | None:
        """Deliver an arriving message; returns the matching posted recv."""
        for i, recv in enumerate(self.posted):
            if _matches(recv, msg):
                del self.posted[i]
                return recv
        self.unexpected.append(msg)
        return None

    def probe(self, src: int, channel: str, tag: int) -> Message | None:
        """Non-destructive iprobe over the unexpected queue."""
        fake = PostedRecv(src, channel, tag, event=None)
        for msg in self.unexpected:
            if _matches(fake, msg):
                return msg
        return None

    def extract(self, src: int, channel: str, tag: int) -> Message | None:
        """improbe: remove and return the first matching unexpected message."""
        fake = PostedRecv(src, channel, tag, event=None)
        for i, msg in enumerate(self.unexpected):
            if _matches(fake, msg):
                del self.unexpected[i]
                return msg
        return None

    def depth(self) -> tuple[int, int]:
        return len(self.posted), len(self.unexpected)
