"""Deterministic, seed-driven fault injection.

The :class:`FaultInjector` is the single decision point for every injected
fault in a run.  It is wired through the machine model (the network asks it
about each packet) and the resilient transports (which ask it for fates,
backoff jitter and crash/stall state).  Three properties drive the design:

* **Determinism.**  Every stochastic choice comes from an xorshift64*
  stream seeded from ``(master_seed, purpose)`` via
  :func:`repro.sim.random.derive_seed`.  Draws are consumed in event order,
  which the DES kernel already makes reproducible, so the same seed plus
  the same :class:`~repro.config.FaultPlan` yields bit-identical runs --
  the same packets drop, the same retransmits happen, the same simulated
  times result.

* **Zero cost when off.**  No injector is constructed for fault-free runs;
  every hook in the hot paths is guarded by a single ``is None`` test and
  no events, draws or allocations happen.

* **Observability.**  Every injected fault and every recovery action is
  counted in :class:`FaultStats` (surfaced through ``RunResult.stats``)
  and, when a tracer is installed, appended to the event trace so traces
  show where time went under faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import FaultConfig, FaultPlan
from repro.sim.random import derive_seed

__all__ = ["PacketFate", "FaultStats", "FaultInjector"]

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


@dataclass
class PacketFate:
    """What the fabric does to one transmission attempt."""

    drop: bool = False
    corrupt: bool = False
    extra_delay_ns: int = 0

    @property
    def lost(self) -> bool:
        """True when the payload never takes effect at the target (a
        corrupted packet fails the checksum and is discarded there)."""
        return self.drop or self.corrupt


@dataclass
class FaultStats:
    """Counters for injected faults and the recovery work they caused."""

    drops: int = 0
    corruptions: int = 0
    delays: int = 0
    stall_waits: int = 0
    retransmits: int = 0
    amo_replays_suppressed: int = 0
    deadline_failures: int = 0
    crashed_nodes: list = field(default_factory=list)
    # Survivor-side recovery work (repro.runtime.notify / repro.rma.recovery):
    failures_detected: int = 0
    notifications_delivered: int = 0
    locks_revoked: int = 0
    queue_splices: int = 0
    epochs_failed: int = 0
    acquisitions_failed: int = 0
    regions_reclaimed: int = 0
    degraded_frees: int = 0
    # Rollback recovery (repro.ft): ranks brought back by restart.
    ranks_restored: int = 0

    def snapshot(self) -> dict:
        snap = {
            "retransmits": self.retransmits,
            "faults": {
                "drops": self.drops,
                "corruptions": self.corruptions,
                "delays": self.delays,
                "stall_waits": self.stall_waits,
                "amo_replays_suppressed": self.amo_replays_suppressed,
                "deadline_failures": self.deadline_failures,
                "crashed_nodes": list(self.crashed_nodes),
            },
            "recovery": {
                "failures_detected": self.failures_detected,
                "notifications_delivered": self.notifications_delivered,
                "locks_revoked": self.locks_revoked,
                "queue_splices": self.queue_splices,
                "epochs_failed": self.epochs_failed,
                "acquisitions_failed": self.acquisitions_failed,
                "regions_reclaimed": self.regions_reclaimed,
                "degraded_frees": self.degraded_frees,
            },
        }
        # Keyed only when restarts happened, so FT-free golden stats
        # shapes are untouched.
        if self.ranks_restored:
            snap["recovery"]["ranks_restored"] = self.ranks_restored
        return snap


class _XorShift:
    """xorshift64* stream; cheap, deterministic, allocation-free."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = (seed | 1) & _MASK64

    def u64(self) -> int:
        x = self.state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self.state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return self.u64() / 2.0**64


class FaultInjector:
    """Runtime fault oracle for one simulated job."""

    def __init__(self, plan: FaultPlan, config: FaultConfig, seed: int,
                 env=None) -> None:
        self.plan = plan
        self.config = config
        self.env = env
        self.stats = FaultStats()
        self._packet_rng = _XorShift(derive_seed(seed, "fault.packet"))
        self._jitter_rng = _XorShift(derive_seed(seed, "fault.jitter"))
        self._stalls_by_node: dict[int, list] = {}
        for st in plan.stalls:
            self._stalls_by_node.setdefault(st.node, []).append(st)
        for lst in self._stalls_by_node.values():
            lst.sort(key=lambda s: s.start_ns)
        self._crash_time: dict[int, int] = {}
        for cr in plan.crashes:
            t = self._crash_time.get(cr.node)
            self._crash_time[cr.node] = cr.time_ns if t is None else min(t, cr.time_ns)
        # Executed-op cache for AMO replay dedup: a retransmitted atomic
        # whose first transmission took effect (only the ack was lost) must
        # return the cached old value, never re-apply.
        self._amo_results: dict[tuple[int, int], object] = {}
        self._amo_done: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # packet fates
    # ------------------------------------------------------------------
    def packet_fate(self, src_node: int, dst_node: int) -> PacketFate:
        """Draw the fate of one transmission attempt (deterministic)."""
        plan = self.plan
        fate = PacketFate()
        if plan.drop_prob > 0.0 and self._packet_rng.uniform() < plan.drop_prob:
            fate.drop = True
            self.stats.drops += 1
            self._trace("drop", f"{src_node}->{dst_node}")
            return fate
        if (plan.corrupt_prob > 0.0
                and self._packet_rng.uniform() < plan.corrupt_prob):
            fate.corrupt = True
            self.stats.corruptions += 1
            self._trace("corrupt", f"{src_node}->{dst_node}")
            return fate
        if plan.delay_prob > 0.0 and self._packet_rng.uniform() < plan.delay_prob:
            fate.extra_delay_ns = plan.delay_ns
            self.stats.delays += 1
            self._trace("delay", f"{src_node}->{dst_node} +{plan.delay_ns}ns")
        return fate

    # ------------------------------------------------------------------
    # NIC stalls
    # ------------------------------------------------------------------
    def stall_release(self, node: int, t: int) -> int:
        """Earliest instant >= ``t`` at which ``node``'s NIC is not inside
        a stall window.  Returns ``t`` unchanged when unstalled."""
        stalls = self._stalls_by_node.get(node)
        if not stalls:
            return t
        release = int(t)
        for st in stalls:
            if st.start_ns <= release < st.end_ns:
                release = st.end_ns
                self.stats.stall_waits += 1
                self._trace("stall", f"node {node} until {release}ns")
        return release

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    @property
    def has_crashes(self) -> bool:
        return bool(self._crash_time)

    def crash_time(self, node: int) -> int | None:
        return self._crash_time.get(node)

    def node_crashed(self, node: int, t: int) -> bool:
        ct = self._crash_time.get(node)
        return ct is not None and t >= ct

    def mark_crashed(self, node: int) -> None:
        if node not in self.stats.crashed_nodes:
            self.stats.crashed_nodes.append(node)
            self._trace("crash", f"node {node}")

    # ------------------------------------------------------------------
    # retry schedule
    # ------------------------------------------------------------------
    def backoff_ns(self, attempt: int) -> int:
        """Capped exponential backoff with seeded jitter for retransmission
        ``attempt`` (1-based)."""
        cfg = self.config
        base = min(cfg.retry_backoff_base_ns * (1 << min(attempt - 1, 16)),
                   cfg.retry_backoff_max_ns)
        jitter = 0
        if cfg.retry_jitter_ns > 0:
            jitter = int(self._jitter_rng.uniform() * cfg.retry_jitter_ns)
        return int(base) + jitter

    # ------------------------------------------------------------------
    # AMO replay dedup
    # ------------------------------------------------------------------
    def amo_executed(self, origin_rank: int, seq: int) -> bool:
        return (origin_rank, seq) in self._amo_done

    def record_amo(self, origin_rank: int, seq: int, result) -> None:
        key = (origin_rank, seq)
        self._amo_done.add(key)
        self._amo_results[key] = result

    def replay_result(self, origin_rank: int, seq: int):
        """Cached result of an already-executed atomic (exactly-once)."""
        self.stats.amo_replays_suppressed += 1
        self._trace("amo-replay", f"rank {origin_rank} seq {seq}")
        return self._amo_results[(origin_rank, seq)]

    # ------------------------------------------------------------------
    # trace feed
    # ------------------------------------------------------------------
    def _trace(self, kind: str, detail: str) -> None:
        env = self.env
        if env is not None and env.tracer is not None:
            env.tracer.record_fault(env.now, kind, detail)
