"""Cray-UPC-like PGAS layer.

Models the UPC constructs the paper's benchmarks use:

* ``all_alloc`` -- collective shared-array allocation with per-thread
  affinity blocks (``upc_all_alloc``),
* ``memput`` / ``memget`` -- bulk transfers (``upc_memput``/``upc_memget``),
  with ``_nb`` variants corresponding to Cray's ``#pragma pgas defer_sync``,
* ``fence`` -- ``upc_fence`` (completion of outstanding remote accesses),
* ``barrier`` -- ``upc_barrier``,
* ``aadd`` / ``cas`` -- Cray's proprietary atomic extensions
  (``upc_atomic``), used by the UPC hashtable in Section 4.1.

Calibration: Figure 4a shows UPC put latency roughly 2x foMPI's at small
sizes (foMPI claims ">50% lower latency than other PGAS models") and the
same bandwidth at large sizes; atomics land near 2.4 us (Figure 6a);
``upc_barrier`` is the fastest global synchronization in Figure 6b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RmaError
from repro.mem.atomic import SegmentCells

__all__ = ["UpcParams", "UpcContext", "UpcSharedArray"]


@dataclass(frozen=True)
class UpcParams:
    """Cray UPC runtime overheads (ns)."""

    put_overhead: float = 950.0    # compiler runtime on the put path
    get_overhead: float = 600.0
    nb_overhead: float = 120.0     # extra per deferred (defer_sync) op
    amo_overhead: float = 60.0
    barrier_overhead_per_round: float = 50.0
    intra_overhead: float = 150.0


class UpcSharedArray:
    """A UPC shared array: one affinity block per thread (rank)."""

    def __init__(self, ctx, nbytes_per_thread: int, seg, descs, tokens) -> None:
        self.ctx = ctx
        self.block = nbytes_per_thread
        self.seg = seg          # this thread's affinity block
        self.descs = descs      # rank -> MemDescriptor
        self.tokens = tokens    # same-node rank -> XpmemSegment

    def local_view(self, dtype=np.uint8) -> np.ndarray:
        return self.seg.typed(dtype)

    def cells(self, rank: int) -> SegmentCells:
        """Atomic int64 view of a peer's affinity block (for aadd/cas)."""
        seg = self.ctx.world.reg_tables[rank].resolve(self.descs[rank])
        return SegmentCells(seg, 0)


class UpcContext:
    """Per-rank UPC runtime (``ctx.upc``)."""

    def __init__(self, ctx, params: UpcParams | None = None) -> None:
        self.ctx = ctx
        self.params = params or UpcParams()
        self._alloc_seq = 0

    # ------------------------------------------------------------------
    def all_alloc(self, nbytes_per_thread: int):
        """upc_all_alloc: collective; returns the shared array handle."""
        ctx = self.ctx
        self._alloc_seq += 1
        seg = ctx.space.alloc(max(1, nbytes_per_thread),
                              label=f"upc{self._alloc_seq}")
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc, nbytes=32)
        token = ctx.xpmem.expose(seg)
        bb = ctx.world.blackboard
        key = ("upc", self._alloc_seq)
        bb.setdefault(key, {})[ctx.rank] = token
        yield from ctx.coll.barrier()
        tokens = {r: t for r, t in bb[key].items()
                  if r != ctx.rank and ctx.same_node(r)}
        for t in tokens.values():
            ctx.xpmem.attach(t)
        return UpcSharedArray(ctx, nbytes_per_thread, seg,
                              dict(enumerate(descs)), tokens)

    # ------------------------------------------------------------------
    def memput(self, arr: UpcSharedArray, rank: int, offset: int, data):
        """upc_memput + implicit completion on the next fence."""
        ctx = self.ctx
        if rank in arr.tokens:
            yield from ctx.compute(self.params.intra_overhead)
            yield from ctx.xpmem.store(arr.tokens[rank], offset, data)
            return None
        yield from ctx.compute(self.params.put_overhead)
        handle = yield from ctx.dmapp.put_nbi(arr.descs[rank], offset, data)
        return handle

    def memput_nb(self, arr: UpcSharedArray, rank: int, offset: int, data):
        """Deferred put (Cray 'defer_sync' pragma): minimal overhead."""
        ctx = self.ctx
        yield from ctx.compute(self.params.nb_overhead)
        if rank in arr.tokens:
            yield from ctx.xpmem.store(arr.tokens[rank], offset, data)
            return None
        return (yield from ctx.dmapp.put_nbi(arr.descs[rank], offset, data))

    def memget(self, arr: UpcSharedArray, rank: int, offset: int, nbytes: int):
        """upc_memget (blocking)."""
        ctx = self.ctx
        if rank in arr.tokens:
            yield from ctx.compute(self.params.intra_overhead)
            return (yield from ctx.xpmem.load(arr.tokens[rank], offset, nbytes))
        yield from ctx.compute(self.params.get_overhead)
        return (yield from ctx.dmapp.get_b(arr.descs[rank], offset, nbytes))

    def memget_nb(self, arr: UpcSharedArray, rank: int, offset: int,
                  nbytes: int, out: np.ndarray):
        """upc_memget_nb (Cray extension, used by the MILC UPC port)."""
        ctx = self.ctx
        if rank in arr.tokens:
            got = yield from ctx.xpmem.load(arr.tokens[rank], offset, nbytes)
            out.view(np.uint8).ravel()[:] = got
            return None
        yield from ctx.compute(self.params.nb_overhead)
        return (yield from ctx.dmapp.get_nbi(arr.descs[rank], offset, nbytes,
                                             out=out))

    def fence(self):
        """upc_fence: complete all outstanding accesses."""
        yield from self.ctx.dmapp.gsync()
        yield from self.ctx.xpmem.mfence()

    def sync_nb(self, handle):
        """Complete one deferred access."""
        if handle is not None:
            yield from self.ctx.dmapp.wait(handle)

    def barrier(self):
        """upc_barrier (Cray's is the fastest barrier in Figure 6b)."""
        p = self.ctx.nranks
        rounds = max(1, (p - 1).bit_length()) if p > 1 else 0
        yield from self.ctx.compute(
            self.params.barrier_overhead_per_round * rounds)
        yield from self.ctx.coll.barrier()

    # ------------------------------------------------------------------
    def aadd(self, arr: UpcSharedArray, rank: int, word_index: int,
             value: int):
        """Cray atomic fetch-and-add on a shared int64; returns old."""
        ctx = self.ctx
        yield from ctx.compute(self.params.amo_overhead)
        cells = arr.cells(rank)
        if rank in arr.tokens or rank == ctx.rank:
            old = yield from ctx.xpmem.amo(cells, word_index, "add",
                                           int(value))
        else:
            old = yield from ctx.dmapp.amo_b(rank, cells, word_index, "add",
                                             int(value))
        # A completed user-level atomic is forward progress (unlike the
        # protocol-internal AMO retries inside lock acquisition).
        ctx.env.note_progress()
        return old

    def aadd_nb(self, arr: UpcSharedArray, rank: int, word_index: int,
                value: int):
        """Non-fetching atomic add (deferred completion) -- the 'separate
        atomic add' notification of the paper's MILC port."""
        ctx = self.ctx
        cells = arr.cells(rank)
        if rank in arr.tokens or rank == ctx.rank:
            yield from ctx.xpmem.amo(cells, word_index, "add", int(value))
            return
        yield from ctx.compute(self.params.nb_overhead)
        yield from ctx.dmapp.amo_nbi(rank, cells, word_index, "add",
                                     int(value))

    def cas(self, arr: UpcSharedArray, rank: int, word_index: int,
            compare: int, swap: int):
        """Cray atomic compare-and-swap; returns old value."""
        ctx = self.ctx
        yield from ctx.compute(self.params.amo_overhead)
        cells = arr.cells(rank)
        if rank in arr.tokens or rank == ctx.rank:
            old = yield from ctx.xpmem.amo(cells, word_index, "cas",
                                           int(compare), int(swap))
        else:
            old = yield from ctx.dmapp.amo_b(rank, cells, word_index, "cas",
                                             int(compare), int(swap))
        ctx.env.note_progress()
        return old

    def check_affinity(self, arr: UpcSharedArray, offset: int) -> None:
        if not 0 <= offset < arr.block:
            raise RmaError(f"offset {offset} outside affinity block")
