"""PGAS comparators: Cray-UPC-like and Fortran-Coarray-like layers.

The paper benchmarks foMPI against Cray's tuned UPC and Fortran 2008
coarray compilers.  Both compile remote accesses to the same DMAPP
hardware ops foMPI uses, but with compiler-runtime overheads of their own;
these layers reproduce that: thin shims over the DMAPP/XPMEM substrates
with per-transport software constants calibrated to Figures 4-6.
"""

from repro.pgas.caf import CafContext, CafParams
from repro.pgas.upc import UpcContext, UpcParams

__all__ = ["UpcContext", "UpcParams", "CafContext", "CafParams"]
