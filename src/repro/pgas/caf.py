"""Fortran-2008-Coarray-like layer (Cray CAF).

Models the constructs of the paper's CAF benchmarks:

* ``coarray_alloc`` -- symmetric coarray allocation (one image per rank),
* remote assignment ``buf(1:n)[img] = src`` -> :meth:`assign`,
* remote read ``dst = buf(1:n)[img]``      -> :meth:`read`,
* ``sync memory`` / ``sync all``.

Calibration: CAF put latency sits above UPC's in Figure 4a (the compiler
generates descriptor-heavy transfers for array sections); strided sections
pay a per-block penalty; ``sync all`` is slightly costlier than
``upc_barrier`` in Figure 6b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CafParams", "CafContext", "Coarray"]


@dataclass(frozen=True)
class CafParams:
    """Cray CAF runtime overheads (ns)."""

    put_overhead: float = 1750.0
    get_overhead: float = 1100.0
    nb_overhead: float = 700.0          # with 'pgas defer_sync'
    per_block_overhead: float = 250.0   # strided array-section penalty
    sync_all_per_round: float = 450.0
    sync_memory_overhead: float = 90.0
    intra_overhead: float = 200.0


class Coarray:
    """One symmetric coarray (same size on every image)."""

    def __init__(self, ctx, nbytes: int, seg, descs, tokens) -> None:
        self.ctx = ctx
        self.nbytes = nbytes
        self.seg = seg
        self.descs = descs
        self.tokens = tokens

    def local_view(self, dtype=np.float64) -> np.ndarray:
        return self.seg.typed(dtype)


class CafContext:
    """Per-rank CAF runtime (``ctx.caf``); images are 1-based externally
    but this API keeps 0-based ranks for consistency."""

    def __init__(self, ctx, params: CafParams | None = None) -> None:
        self.ctx = ctx
        self.params = params or CafParams()
        self._alloc_seq = 0

    def coarray_alloc(self, nbytes: int):
        """Collective coarray allocation."""
        ctx = self.ctx
        self._alloc_seq += 1
        seg = ctx.space.alloc(max(1, nbytes), label=f"caf{self._alloc_seq}")
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc, nbytes=32)
        token = ctx.xpmem.expose(seg)
        bb = ctx.world.blackboard
        key = ("caf", self._alloc_seq)
        bb.setdefault(key, {})[ctx.rank] = token
        yield from ctx.coll.barrier()
        tokens = {r: t for r, t in bb[key].items()
                  if r != ctx.rank and ctx.same_node(r)}
        for t in tokens.values():
            ctx.xpmem.attach(t)
        return Coarray(ctx, nbytes, seg, dict(enumerate(descs)), tokens)

    # ------------------------------------------------------------------
    def assign(self, co: Coarray, image: int, offset: int, data,
               nblocks: int = 1):
        """Remote assignment buf(...)[image] = data.

        ``nblocks`` models an array-section transfer decomposed into that
        many contiguous pieces (CAF pays per-block runtime cost).
        """
        ctx = self.ctx
        yield from ctx.compute(self.params.put_overhead
                               + self.params.per_block_overhead * (nblocks - 1))
        if image in co.tokens:
            yield from ctx.compute(self.params.intra_overhead)
            yield from ctx.xpmem.store(co.tokens[image], offset, data)
            return None
        return (yield from ctx.dmapp.put_nbi(co.descs[image], offset, data))

    def assign_nb(self, co: Coarray, image: int, offset: int, data):
        """Deferred remote assignment (Cray 'pgas defer_sync' pragma) --
        used by the message-rate benchmark."""
        ctx = self.ctx
        yield from ctx.compute(self.params.nb_overhead)
        if image in co.tokens:
            yield from ctx.xpmem.store(co.tokens[image], offset, data)
            return None
        return (yield from ctx.dmapp.put_nbi(co.descs[image], offset, data))

    def read(self, co: Coarray, image: int, offset: int, nbytes: int,
             nblocks: int = 1):
        """Remote read dst = buf(...)[image]."""
        ctx = self.ctx
        yield from ctx.compute(self.params.get_overhead
                               + self.params.per_block_overhead * (nblocks - 1))
        if image in co.tokens:
            yield from ctx.compute(self.params.intra_overhead)
            return (yield from ctx.xpmem.load(co.tokens[image], offset, nbytes))
        return (yield from ctx.dmapp.get_b(co.descs[image], offset, nbytes))

    # ------------------------------------------------------------------
    def sync_memory(self):
        """sync memory: local completion of outstanding accesses."""
        yield from self.ctx.compute(self.params.sync_memory_overhead)
        yield from self.ctx.dmapp.gsync()
        yield from self.ctx.xpmem.mfence()

    def sync_all(self):
        """sync all: global barrier + memory synchronization."""
        yield from self.sync_memory()
        p = self.ctx.nranks
        rounds = max(1, (p - 1).bit_length()) if p > 1 else 0
        yield from self.ctx.compute(self.params.sync_all_per_round * rounds)
        yield from self.ctx.coll.barrier()
