"""Dynamic Sparse Data Exchange (paper Section 4.2, Figure 7b).

Each rank picks k random targets and sends 8 bytes to each; nobody knows
what they will receive.  The protocols (from Hoefler, Siebert, Lumsdaine,
PPoPP'10 [15]) compared by the paper:

* ``alltoall``       -- dense personalized all-to-all of p entries,
* ``reduce_scatter`` -- reduce_scatter of a count vector, then sends,
* ``nbx``            -- synchronous sends + nonblocking barrier (proved
                        optimal in [15]),
* ``rma``            -- foMPI one-sided: fetch-and-add reserves a slot in
                        the target's window, a put delivers the payload,
                        fence closes the epoch,
* ``rma_cray22``     -- the same idea over Cray MPI-2.2's (slow) one-sided.
"""

from repro.apps.dsde.common import expected_incoming, make_targets
from repro.apps.dsde.protocols import PROTOCOLS, dsde_program

__all__ = ["make_targets", "expected_incoming", "PROTOCOLS", "dsde_program"]
