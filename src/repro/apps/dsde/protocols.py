"""The five DSDE protocols.

Every protocol function is an SPMD generator with signature
``(ctx, k, seed) -> (elapsed_ns, sorted_received_payloads)`` so the test
suite can verify all variants deliver the exact same multiset and the
benchmark can time them uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dsde.common import make_targets, payload_for
from repro.rma.cray22 import win_allocate_cray22
from repro.rma.enums import Op

__all__ = ["PROTOCOLS", "dsde_program"]

_TAG = 7


# ---------------------------------------------------------------------------
def dsde_alltoall(ctx, targets):
    """Dense personalized all-to-all: O(p) work/memory per rank."""
    out = [None] * ctx.nranks
    for t in targets:
        out[t] = payload_for(ctx.rank, t)
    got = yield from ctx.coll.alltoall(out, nbytes_each=8)
    return [v for v in got if v is not None]


# ---------------------------------------------------------------------------
def dsde_reduce_scatter(ctx, targets):
    """Count vector via reduce_scatter, then plain sends."""
    counts = np.zeros(ctx.nranks, dtype=np.int64)
    for t in targets:
        counts[t] += 1
    mine = yield from ctx.coll.reduce_scatter_block(counts)
    reqs = []
    for t in targets:
        r = yield from ctx.mpi.isend(t, payload_for(ctx.rank, t), tag=_TAG,
                                     channel="dsde", nbytes=8)
        reqs.append(r)
    received = []
    for _ in range(int(mine)):
        v = yield from ctx.mpi.recv(tag=_TAG, channel="dsde")
        received.append(v)
    for r in reqs:
        yield from r.wait()
    return received


# ---------------------------------------------------------------------------
def dsde_nbx(ctx, targets):
    """The NBX protocol of [15]: issend + nonblocking barrier."""
    reqs = []
    for t in targets:
        r = yield from ctx.mpi.issend(t, payload_for(ctx.rank, t), tag=_TAG,
                                      channel="dsde", nbytes=8)
        reqs.append(r)
    received = []
    barrier = None
    while True:
        msg = ctx.mpi.improbe(tag=_TAG, channel="dsde")
        if msg is not None:
            received.append((yield from ctx.mpi.mrecv(msg)))
            continue
        if barrier is None:
            if all(r.test() for r in reqs):
                barrier = ctx.coll.ibarrier()
            else:
                yield ctx.env.timeout(200)  # progress poll
        elif barrier.test():
            break
        else:
            yield ctx.env.timeout(200)
    return received


# ---------------------------------------------------------------------------
def dsde_rma_setup(ctx, k):
    """Window setup (outside the timed exchange, as in the paper's runs)."""
    cap = max(8, 4 * k + 8)
    caps = yield from ctx.coll.allreduce(cap, op=max, nbytes=8)
    return (yield from ctx.rma.win_allocate(8 * (1 + caps), disp_unit=8))


def dsde_rma(ctx, targets, win):
    """foMPI one-sided accumulate protocol in active target (fence) mode.

    Window layout (disp_unit 8): word 0 = incoming counter (FADD target),
    words 1.. = payload slots.  A fetch-and-add reserves a slot, a put
    delivers the payload, the closing fence makes everything visible.
    """
    yield from win.fence()
    for t in targets:
        slot = yield from win.fetch_and_op(np.int64(1), t, 0, Op.SUM)
        yield from win.put(np.array([payload_for(ctx.rank, t)], np.int64),
                           t, 1 + int(slot))
    yield from win.fence()
    vals = win.local_view(np.int64)
    received = [int(v) for v in vals[1:1 + int(vals[0])]]
    return received


# ---------------------------------------------------------------------------
def dsde_cray22_setup(ctx, k):
    win = yield from win_allocate_cray22(ctx, 8 * (1 + ctx.nranks))
    win.seg.typed(np.int64)[:] = 0
    return win


def dsde_rma_cray22(ctx, targets, win):
    """The same exchange over Cray MPI-2.2 one-sided (accumulate counts +
    per-sender payload slots; MPI-2.2 has no fetching atomics)."""
    yield from win.fence()
    for t in targets:
        yield from win.accumulate(np.array([1], np.int64), t, 0)
        yield from win.put(np.array([payload_for(ctx.rank, t)], np.int64),
                           t, 8 * (1 + ctx.rank))
    yield from win.fence()
    view = win.seg.typed(np.int64)
    received = [int(v) for v in view[1:] if v != 0]
    assert int(view[0]) == len(received)
    return received


#: protocol -> (setup generator or None, exchange generator)
PROTOCOLS = {
    "alltoall": (None, dsde_alltoall),
    "reduce_scatter": (None, dsde_reduce_scatter),
    "nbx": (None, dsde_nbx),
    "rma": (dsde_rma_setup, dsde_rma),
    "rma_cray22": (dsde_cray22_setup, dsde_rma_cray22),
}


def dsde_program(ctx, protocol: str, k: int, seed: int | None = None):
    """SPMD driver: setup (untimed), one timed exchange; returns
    (elapsed_ns, sorted received payloads)."""
    seed = ctx.world.sim.seed if seed is None else seed
    targets = make_targets(seed, ctx.rank, ctx.nranks, k)
    setup, exchange = PROTOCOLS[protocol]
    state = None
    if setup is not None:
        state = yield from setup(ctx, k)
    yield from ctx.coll.barrier()
    t0 = ctx.now
    if state is not None:
        received = yield from exchange(ctx, targets, state)
    else:
        received = yield from exchange(ctx, targets)
    yield from ctx.coll.barrier()
    elapsed = ctx.now - t0
    return elapsed, sorted(received)
