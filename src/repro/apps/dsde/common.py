"""Target selection and verification for the DSDE benchmark."""

from __future__ import annotations

import numpy as np

from repro.sim.random import stream

__all__ = ["make_targets", "payload_for", "expected_incoming"]


def make_targets(seed: int, rank: int, nranks: int, k: int) -> list[int]:
    """k distinct random targets (never self), deterministic per rank."""
    if nranks == 1:
        return []
    k = min(k, nranks - 1)
    rng = stream(seed, "dsde-targets", rank)
    others = np.array([r for r in range(nranks) if r != rank])
    picks = rng.choice(others, size=k, replace=False)
    return [int(t) for t in picks]


def payload_for(src: int, target: int) -> int:
    """The 8-byte message value (verifiable at the receiver)."""
    return ((src + 1) << 20) | (target + 1)


def expected_incoming(seed: int, nranks: int, k: int) -> dict[int, list[int]]:
    """Ground truth: rank -> sorted list of payloads it must receive."""
    incoming: dict[int, list[int]] = {r: [] for r in range(nranks)}
    for src in range(nranks):
        for t in make_targets(seed, src, nranks, k):
            incoming[t].append(payload_for(src, t))
    return {r: sorted(v) for r, v in incoming.items()}
