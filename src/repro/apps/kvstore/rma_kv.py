"""RMA-backed distributed key-value store (the ``repro.serve`` backend).

Extends the paper's Section 4.1 hashtable from insert-only to a full
get/put/update map.  Every data-plane operation runs inside a striped
MCS critical section (stripe = slot mod ``n_stripes``); the paper's
lock-free idioms survive inside it:

* slot claim:   ``CAS(0 -> key)`` on the slot's key word
* cell claim:   ``FADD(+1)`` on the next-free heap counter (word 0)
* chain link:   ``FADD(REPLACE)`` on the slot's head word
* read-modify:  ``CAS(old -> new)`` on the value word (the CAS-update)

The MCS lock is what makes the *mixed* accesses well-defined: plain gets
of slot/chain words and the atomics above would otherwise be
atomic-vs-nonatomic races under the MPI-3 separate memory model.  The
lock's happens-before edge (checker hooks ``mcs_acquired`` /
``mcs_released``) orders cross-rank critical sections; within a rank,
each section ends with a ``flush`` so the next section's operations are
consecutive (oseq-ordered), not concurrent.  The word-0 FADD crosses
stripe boundaries but is only ever touched by same-op SUM atomics, which
MPI permits unordered.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps.kvstore.layout import KvLayout
from repro.rma.enums import Op
from repro.rma.mcs import McsLock
from repro.rma.window import CTRL_WORDS_BASE

__all__ = ["KvStore"]

_MASK63 = (1 << 63) - 1


class KvStore:
    """One rank's handle on the distributed store.

    Usage (inside an SPMD program)::

        store = KvStore(ctx, KvLayout.default(keys_per_rank))
        yield from store.setup()          # collective
        yield from store.put(key, value)
        value = yield from store.get(key)
        new = yield from store.update(key, delta)
        yield from store.close()          # collective
    """

    def __init__(self, ctx, layout: KvLayout, n_stripes: int = 8) -> None:
        if n_stripes < 1:
            raise ValueError(f"n_stripes={n_stripes} must be >= 1")
        self.ctx = ctx
        self.layout = layout
        self.n_stripes = n_stripes
        self.win = None
        self.locks: list[McsLock] = []

    # ------------------------------------------------------------------
    def setup(self):
        """Allocate the store window and its stripe locks (collective)."""
        ctx = self.ctx
        need = 3 * self.n_stripes
        if ctx.rma.params.user_ctrl_words < need:
            # Each MCS lock takes three control words; widen the window's
            # user-extension area before creation so the stripes fit.
            ctx.rma.params = dataclasses.replace(ctx.rma.params,
                                                 user_ctrl_words=need)
        win = yield from ctx.rma.win_allocate(self.layout.nbytes,
                                              disp_unit=8)
        base0 = CTRL_WORDS_BASE + win.params.pscw_ring_capacity
        self.locks = [McsLock(win, cell_base=base0 + 3 * s)
                      for s in range(self.n_stripes)]
        yield from win.lock_all()
        self.win = win
        return win

    def close(self):
        """End the passive-target epoch (collective free is the caller's
        job if it wants one; the epoch must end before it)."""
        yield from self.win.unlock_all()

    # ------------------------------------------------------------------
    def _lock_for(self, slot: int) -> McsLock:
        return self.locks[slot % self.n_stripes]

    def _read3(self, owner: int, word: int):
        """Three consecutive words from ``owner``'s volume."""
        got = yield from self.win.get_blocking(owner, word, 24, np.int64)
        return int(got[0]), int(got[1]), int(got[2])

    def _write_word(self, owner: int, word: int, value: int):
        yield from self.win.put(np.array([value], dtype=np.int64),
                                owner, word)

    def _locate(self, owner: int, slot: int, key: int):
        """Find ``key`` under the lock: (slot key word, chain hops,
        value-word index or None, current value).  The caller must flush
        before writing so these reads are oseq-ordered ahead of it."""
        lay = self.layout
        kw, val, head = yield from self._read3(owner, lay.slot_key(slot))
        if kw == key:
            return kw, 0, lay.slot_value(slot), val
        hops = 0
        cell = head
        while cell != 0:
            hops += 1
            ck, cv, nxt = yield from self._read3(owner, lay.heap_key(cell))
            if ck == key:
                return kw, hops, lay.heap_value(cell), cv
            cell = nxt
        return kw, hops, None, 0

    def _insert_new(self, owner: int, slot: int, slot_key_word: int,
                    key: int, value: int):
        """Insert a key known (under the lock) to be absent.  Caller has
        flushed its reads already."""
        lay = self.layout
        win = self.win
        if slot_key_word == 0:
            old = yield from win.compare_and_swap(np.int64(0),
                                                  np.int64(key), owner,
                                                  lay.slot_key(slot))
            if int(old) != 0:
                raise RuntimeError("kvstore: slot claim raced under lock")
            yield from self._write_word(owner, lay.slot_value(slot), value)
            return "table"
        cell0 = yield from win.fetch_and_op(np.int64(1), owner, 0, Op.SUM)
        cell = lay.claim_cell(int(cell0))
        yield from self._write_word(owner, lay.heap_key(cell), key)
        yield from self._write_word(owner, lay.heap_value(cell), value)
        old_head = yield from win.fetch_and_op(np.int64(cell), owner,
                                               lay.slot_head(slot),
                                               Op.REPLACE)
        yield from self._write_word(owner, lay.heap_next(cell),
                                    int(old_head))
        return "heap"

    def _note(self, opname: str, owner: int, hops: int) -> None:
        obs = self.ctx.obs
        if obs is not None:
            # Hotspot accounting: who served the request (key-skew
            # heatmap) and how long its chain walk was.
            obs.metrics.count(f"kv.{opname}", self.ctx.rank)
            obs.metrics.count("kv.owner_requests", owner)
            if hops:
                obs.metrics.observe("kv.chain_hops", self.ctx.rank, hops)

    @staticmethod
    def _check_key(key: int) -> None:
        if not 0 < key <= _MASK63:
            raise ValueError(f"kvstore key {key} outside (0, 2^63]")

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def get(self, key: int):
        """Value stored under ``key``, or None."""
        self._check_key(key)
        owner, slot = self.layout.place(key, self.ctx.nranks)
        lock = self._lock_for(slot)
        yield from lock.acquire()
        _kw, hops, loc, val = yield from self._locate(owner, slot, key)
        # Completes the reads before release AND bumps oseq so this
        # rank's next critical section is ordered after them.
        yield from self.win.flush(owner)
        yield from lock.release()
        self._note("get", owner, hops)
        return val if loc is not None else None

    def put(self, key: int, value: int):
        """Store ``value`` under ``key``; returns the path taken
        ('table' | 'heap' | 'update')."""
        self._check_key(key)
        value &= _MASK63
        owner, slot = self.layout.place(key, self.ctx.nranks)
        lock = self._lock_for(slot)
        yield from lock.acquire()
        kw, hops, loc, _val = yield from self._locate(owner, slot, key)
        yield from self.win.flush(owner)  # order reads before the writes
        if loc is not None:
            yield from self._write_word(owner, loc, value)
            path = "update"
        else:
            path = yield from self._insert_new(owner, slot, kw, key, value)
        yield from self.win.flush(owner)
        yield from lock.release()
        self._note("put", owner, hops)
        return path

    def update(self, key: int, delta: int):
        """Add ``delta`` to ``key``'s value (inserting ``delta`` if the
        key is absent) via CAS on the value word; returns the new value."""
        self._check_key(key)
        owner, slot = self.layout.place(key, self.ctx.nranks)
        lock = self._lock_for(slot)
        yield from lock.acquire()
        kw, hops, loc, cur = yield from self._locate(owner, slot, key)
        yield from self.win.flush(owner)
        if loc is None:
            new = delta & _MASK63
            yield from self._insert_new(owner, slot, kw, key, new)
        else:
            new = (cur + delta) & _MASK63
            old = yield from self.win.compare_and_swap(np.int64(cur),
                                                       np.int64(new),
                                                       owner, loc)
            if int(old) != cur:
                raise RuntimeError("kvstore: CAS-update raced under lock")
        yield from self.win.flush(owner)
        yield from lock.release()
        self._note("update", owner, hops)
        return new

    # ------------------------------------------------------------------
    def scan_local(self) -> dict[int, int]:
        """This rank's stored (key, value) pairs via the zero-copy local
        view.  Only sound after the remote traffic is ordered before the
        scan (e.g. flush_all + barrier); the access is declared to the
        race checker through :meth:`Window.note_local`, so an unordered
        scan is *reported*, not silently missed."""
        self.win.note_local("load", self.layout.nbytes)
        return self.layout.scan(self.win.local_view(np.int64))
