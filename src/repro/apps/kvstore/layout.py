"""Word layout of the RMA key-value store.

Extends the fig7a hashtable layout (:mod:`repro.apps.hashtable.common`)
from a key-only set to a key->value map: slots and heap cells grow from
two words to three.  Local-volume word layout (disp_unit = 8):

    word 0                      next-free heap cell counter (FADD target)
    words 1 .. 3T               table: slot s = (key@1+3s, value@2+3s,
                                head@3+3s)
    words 1+3T ..               overflow heap: cell c (1-based) =
                                (key, value, next)

``head``/``next`` hold 1-based heap-cell indices (0 = nil) and keys are
nonzero, so a zeroed volume is a valid empty store.  Placement and the
overflow-claim rule are the shared :func:`place_key` /
:func:`claim_overflow_cell` -- the kvstore cannot drift from the
hashtable geometry it extends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.hashtable.common import (
    DEFAULT_TABLE_SLOTS,
    claim_overflow_cell,
    heap_cells_for,
    place_key,
)

__all__ = ["KvLayout"]


@dataclass(frozen=True)
class KvLayout:
    """Geometry of each rank's local store volume."""

    table_slots: int
    heap_cells: int

    @classmethod
    def default(cls, keys_per_rank: int,
                table_slots: int = DEFAULT_TABLE_SLOTS) -> "KvLayout":
        """Canonical geometry for an expected per-rank key load (same
        sizing rule as the fig7a hashtable)."""
        return cls(table_slots=table_slots,
                   heap_cells=heap_cells_for(keys_per_rank))

    @property
    def words(self) -> int:
        return 1 + 3 * self.table_slots + 3 * self.heap_cells

    @property
    def nbytes(self) -> int:
        return 8 * self.words

    # -- word indices ---------------------------------------------------
    def slot_key(self, slot: int) -> int:
        return 1 + 3 * slot

    def slot_value(self, slot: int) -> int:
        return 2 + 3 * slot

    def slot_head(self, slot: int) -> int:
        return 3 + 3 * slot

    def heap_key(self, cell: int) -> int:
        """``cell`` is 1-based (0 = nil)."""
        return 1 + 3 * self.table_slots + 3 * (cell - 1)

    def heap_value(self, cell: int) -> int:
        return self.heap_key(cell) + 1

    def heap_next(self, cell: int) -> int:
        return self.heap_key(cell) + 2

    # -- placement / claiming -------------------------------------------
    def place(self, key: int, nranks: int) -> tuple[int, int]:
        """(owner rank, table slot) for a key."""
        return place_key(key, nranks, self.table_slots)

    def claim_cell(self, counter: int) -> int:
        return claim_overflow_cell(counter, self.heap_cells)

    # -- local reading (occupancy scans, verification) -------------------
    def scan(self, volume: np.ndarray) -> dict[int, int]:
        """All (key, value) pairs stored in one rank's int64 volume."""
        out: dict[int, int] = {}
        for slot in range(self.table_slots):
            k = int(volume[self.slot_key(slot)])
            if k != 0:
                out[k] = int(volume[self.slot_value(slot)])
            cell = int(volume[self.slot_head(slot)])
            while cell != 0:
                out[int(volume[self.heap_key(cell)])] = \
                    int(volume[self.heap_value(cell)])
                cell = int(volume[self.heap_next(cell)])
        return out
