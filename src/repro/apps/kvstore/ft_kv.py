"""Crash-through serving: the KV workload over rollback recovery.

The full chained store (:mod:`repro.apps.kvstore.rma_kv`) cannot run on
log-protected windows -- its REPLACE-link path and CAS-update are fine
(hardware AMOs), but the *software*-fallback risk and the MCS control
words living outside the logged data volume make replay incomplete.  The
FT serving mode therefore mirrors :func:`repro.ft.workloads.ft_hashtable`
and restructures the store V1-style:

* **Direct-mapped values.**  Key ``k`` owns one 8-byte word on rank
  ``k % nranks`` at byte ``(k // nranks) * 8``; GET is a plain get, PUT
  a logged put, UPDATE a hardware FADD (exactly-once under replay via
  the injector's AMO dedup cache).

* **Single-writer mutations.**  The schedule runs with
  ``ServeSpec.ft_mode`` so each key is mutated by exactly one client
  (:func:`repro.serve.zipf.mutator_of`); with per-rank program order
  preserved (flush after every put), the final bytes are a pure function
  of the seed -- bit-comparable between the crashed and fault-free runs.

* **Collective-free steady state** after window creation: checkpoints
  every ``FTConfig.interval`` requests, completion via a counter in
  window memory, one rank per node (the V1 put-log requirement).

The availability gap is read off the recovered run's observability
timeline: crash instant to the end of the ``ft.restore`` NIC span; the
post-recovery p99 is the tail over requests completing after that point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NodeCrash, ObsConfig, RunResult, SimConfig
from repro.ft.workloads import ft_faults, ft_machine
from repro.rma.enums import Op
from repro.serve.driver import initial_value
from repro.serve.slo import exact_percentiles
from repro.serve.zipf import OP_GET, OP_PUT, ServeSpec, client_schedule

__all__ = ["ft_kv_serve", "run_kv_ft", "run_kv_crash_to_completion",
           "state_bytes", "restore_end_ns", "KvFtOutcome"]

_POLL_NS = 500  # completion-counter poll backoff


def _nlocal(spec: ServeSpec, nranks: int) -> int:
    return (spec.nkeys + nranks - 1) // nranks


def ft_kv_serve(ctx, spec: ServeSpec):
    """One rank of the crash-through serving phase.

    Returns ``(lat, state)``: latency rows ``(scheduled_ns,
    completed_ns, op)`` -- a restarted incarnation reports only its
    post-restore rows -- and the rank's final value region as ``bytes``.
    """
    rank, nranks = ctx.rank, ctx.nranks
    nlocal = _nlocal(spec, nranks)
    size = nlocal * 8 + 8  # value words + completion counter
    ft = ctx.ft
    interval = ft.rt.cfg.interval if ft is not None else 0
    sched = client_schedule(spec, rank, nranks)

    if ft is not None and ft.restarting:
        st = ft.restored_state()
        win = ft.adopt(st["win_id"])
        start_i = st["next_i"]
    else:
        win = yield from ctx.rma.win_allocate(size, disp_unit=1)
        if ft is not None:
            ft.protect(win)
        start_i = 0

    yield from win.lock_all()
    if start_i == 0:
        # Preload this rank's slots, then take the v0 checkpoint so the
        # local writes are inside the restart line.
        for key in range(rank, spec.nkeys, nranks):
            val = np.array([initial_value(spec.seed, key)], np.int64)
            yield from win.put(val, rank, (key // nranks) * 8)
        yield from win.flush_all()
        if ft is not None:
            yield from ft.checkpoint(win, {"win_id": win.win_id,
                                           "next_i": 0})

    lat = []
    # Pacing baseline: arrivals stay schedule-relative; a restarted rank
    # re-bases at its restart request, so the checkpointed backlog drains
    # immediately (that catch-up IS the recovery cost being measured).
    t_base = ctx.now - (int(sched[start_i, 0]) if start_i < len(sched)
                        else 0)
    for i in range(start_i, len(sched)):
        t_arr = t_base + int(sched[i, 0])
        if ctx.now < t_arr:
            yield ctx.env.timeout(t_arr - ctx.now)
        op, key, value = int(sched[i, 1]), int(sched[i, 2]), int(sched[i, 3])
        owner, off = key % nranks, (key // nranks) * 8
        if op == OP_GET:
            yield from win.get_blocking(owner, off, 8, np.int64)
        elif op == OP_PUT:
            yield from win.put(np.array([value], np.int64), owner, off)
            # Per-rank program order on the wire: the next operation to
            # this key must not overtake the put.
            yield from win.flush(owner)
        else:
            yield from win.fetch_and_op(np.int64(value), owner, off,
                                        Op.SUM)
        lat.append((t_arr, ctx.now, op))
        if ft is not None and interval and (i + 1) % interval == 0:
            yield from win.flush_all()
            yield from ft.checkpoint(win, {"win_id": win.win_id,
                                           "next_i": i + 1})

    yield from win.flush_all()
    # Collective-free completion: bump rank 0's counter, poll until all
    # ranks arrived (re-executed bumps deduped by the replay cache).
    done_off = nlocal * 8
    yield from win.fetch_and_op(1, 0, done_off, Op.SUM)
    while True:
        count = yield from win.fetch_and_op(0, 0, done_off, Op.SUM)
        if count >= nranks:
            break
        yield from ctx.compute(_POLL_NS)
    yield from win.unlock_all()
    return (np.array(lat, dtype=np.int64).reshape(-1, 3),
            win.seg.snapshot_bytes()[:nlocal * 8])


# ----------------------------------------------------------------------
# run helpers
# ----------------------------------------------------------------------
def run_kv_ft(nranks: int, spec: ServeSpec, *, faults,
              obs: bool = True) -> RunResult:
    from repro.runtime.job import run_spmd

    return run_spmd(ft_kv_serve, nranks, spec, machine=ft_machine(),
                    sim=SimConfig(seed=spec.seed), faults=faults,
                    obs=ObsConfig(enabled=True) if obs else None)


def state_bytes(result: RunResult) -> bytes:
    """Concatenated final value regions; raises the first rank failure."""
    chunks = []
    for value in result.returns:
        if isinstance(value, BaseException):
            raise value
        chunks.append(value[1])
    return b"".join(chunks)


def restore_end_ns(result: RunResult) -> int | None:
    """End of the last ``ft.restore`` span (None if no restore ran)."""
    if result.obs is None:
        return None
    ends = [s.end_ns() for s in result.obs.spans.spans
            if s.name == "ft.restore"]
    return max(ends) if ends else None


@dataclass
class KvFtOutcome:
    """One crash-through serving experiment."""

    reference: RunResult
    recovered: RunResult
    crash_rank: int
    crash_time_ns: int
    match: bool
    availability_gap_ns: int
    post_recovery_p99_ns: int

    def report_section(self) -> dict:
        return {
            "crash_rank": self.crash_rank,
            "crash_time_ns": self.crash_time_ns,
            "state_match": self.match,
            "availability_gap_ns": self.availability_gap_ns,
            "post_recovery_p99_ns": self.post_recovery_p99_ns,
            "ranks_restored": self.recovered.stats.get(
                "recovery", {}).get("ranks_restored", 0),
        }


def run_kv_crash_to_completion(nranks: int, spec: ServeSpec, *,
                               crash_rank: int = 1,
                               crash_frac: float = 0.5,
                               mode: str = "spare", interval: int = 16,
                               policy: str = "log") -> KvFtOutcome:
    """Crash ``crash_rank`` mid-serve, recover, and compare the final
    store bytes bit-for-bit against a fault-free (but checkpointing)
    reference run of the same spec."""
    import dataclasses as _dc

    spec = _dc.replace(spec, ft_mode=True)
    faults0 = ft_faults(mode=mode, interval=interval, policy=policy)
    ref = run_kv_ft(nranks, spec, faults=faults0)
    t = max(1, int(ref.sim_time_ns * crash_frac))
    faults = ft_faults(crashes=(NodeCrash(crash_rank, t),), mode=mode,
                       interval=interval, policy=policy)
    rec = run_kv_ft(nranks, spec, faults=faults)

    end = restore_end_ns(rec)
    gap = max(0, end - t) if end is not None else 0
    post = []
    for value in rec.returns:
        if isinstance(value, BaseException):
            raise value
        rows = value[0]
        if end is not None and rows.size:
            done = rows[:, 1]
            post.extend((rows[done >= end, 1]
                         - rows[done >= end, 0]).tolist())
    p99 = exact_percentiles(post)["p99"] if post else 0
    return KvFtOutcome(reference=ref, recovered=rec,
                       crash_rank=crash_rank, crash_time_ns=t,
                       match=state_bytes(rec) == state_bytes(ref),
                       availability_gap_ns=gap,
                       post_recovery_p99_ns=p99)
