"""RMA-backed distributed key-value store (paper Section 4.1, extended).

:class:`KvLayout` / :class:`KvStore` are the chained-hash RMA store;
:mod:`repro.apps.kvstore.mpi1_kv` is the two-sided comparator and
:mod:`repro.apps.kvstore.ft_kv` the crash-through serving mode (imported
by path to keep this package free of a ``repro.serve`` import cycle).
"""

from repro.apps.kvstore.layout import KvLayout
from repro.apps.kvstore.rma_kv import KvStore

__all__ = ["KvLayout", "KvStore"]
