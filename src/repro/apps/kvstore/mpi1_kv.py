"""MPI-1 KV comparator: request/reply active messages (fig7a-style).

The two-sided baseline for the serving benchmark: every remote operation
sends a request to the owner, which must *actively receive* it, apply it
to a local dict, and send the reply -- the receiver involvement the RMA
store eliminates.  Clients keep at most one request outstanding, so any
``TAG_REP`` belongs to the current request; while waiting for a reply
(or pacing the open loop), incoming requests are served inline.

Termination mirrors :mod:`repro.apps.hashtable.mpi1_ht`: a rank's DONE
fan-out follows all its requests on the same channel (non-overtaking),
and its requests complete (reply received) before DONE is sent, so after
``nranks - 1`` DONEs no request can still be in flight.
"""

from __future__ import annotations

import numpy as np

from repro.apps.hashtable.common import DEFAULT_TABLE_SLOTS, place_key
from repro.serve.zipf import OP_GET, OP_PUT, ServeSpec, client_schedule

__all__ = ["mpi1_kv_program"]

_MASK63 = (1 << 63) - 1
_TAG_REQ = 1
_TAG_REP = 2
_TAG_DONE = 3
_HANDLER_NS = 60     # owner-side handler cost per served request
_IDLE_POLL_NS = 400  # unexpected-queue poll backoff while pacing


def owner_of(key: int, nranks: int) -> int:
    """Same placement as the RMA store (store key = schedule key + 1)."""
    return place_key(key + 1, nranks, DEFAULT_TABLE_SLOTS)[0]


def apply_local(store: dict, op: int, key: int, value: int) -> int:
    """Owner-side handler; semantics match :class:`KvStore` exactly."""
    if op == OP_GET:
        return store.get(key, 0)
    if op == OP_PUT:
        store[key] = value & _MASK63
        return 0
    # UPDATE: add to the current value, or insert the delta if absent
    # (the RMA store's CAS-update semantics).
    store[key] = (store[key] + value) & _MASK63 if key in store \
        else value & _MASK63
    return store[key]


def mpi1_kv_program(ctx, spec: ServeSpec):
    """One rank of the MPI-1 serving phase.

    Returns ``(lat, contents)`` shaped like
    :func:`repro.serve.driver.kv_serve_program`'s result (1-based store
    keys), so the two backends' final states are directly comparable.
    """
    from repro.serve.driver import initial_value

    rank, nranks = ctx.rank, ctx.nranks
    store: dict[int, int] = {}
    # Owner-side preload: the dict IS the partition, so each owner just
    # installs its keys (the RMA variant pays puts for the same effect).
    for key in range(spec.nkeys):
        if owner_of(key, nranks) == rank:
            store[key + 1] = initial_value(spec.seed, key)
    yield from ctx.coll.barrier()

    pending = []
    done_seen = 0

    def serve(payload):
        op, key, value, src = payload
        yield from ctx.compute(_HANDLER_NS)
        result = apply_local(store, op, key + 1, value)
        req = yield from ctx.mpi.isend(src, result, tag=_TAG_REP,
                                       channel="kv", nbytes=8)
        pending.append(req)

    sched = client_schedule(spec, rank, nranks)
    lat = np.zeros((len(sched), 3), dtype=np.int64)
    t0 = ctx.now
    obs = ctx.obs
    for i in range(len(sched)):
        t_arr = t0 + int(sched[i, 0])
        while ctx.now < t_arr:
            msg = ctx.mpi.improbe(channel="kv")
            if msg is None:
                yield ctx.env.timeout(min(_IDLE_POLL_NS, t_arr - ctx.now))
            else:
                payload = yield from ctx.mpi.mrecv(msg)
                if msg.tag == _TAG_DONE:
                    done_seen += 1
                elif msg.tag == _TAG_REQ:
                    yield from serve(payload)
        op, key, value = int(sched[i, 1]), int(sched[i, 2]), int(sched[i, 3])
        owner = owner_of(key, nranks)
        if owner == rank:
            yield from ctx.compute(_HANDLER_NS)
            apply_local(store, op, key + 1, value)
        else:
            req = yield from ctx.mpi.isend(owner, (op, key, value, rank),
                                           tag=_TAG_REQ, channel="kv",
                                           nbytes=32)
            pending.append(req)
            while True:
                rreq = ctx.mpi.irecv(channel="kv")
                payload = yield from rreq.wait()
                tag = rreq.message.tag
                if tag == _TAG_REP:
                    break
                if tag == _TAG_DONE:
                    done_seen += 1
                else:
                    yield from serve(payload)
        done = ctx.now
        lat[i] = (t_arr, done, op)
        if obs is not None:
            obs.metrics.observe("kv.latency_ns", rank, done - t_arr)

    for req in pending:
        yield from req.wait()
    pending.clear()
    for other in range(nranks):
        if other != rank:
            yield from ctx.mpi.isend(other, None, tag=_TAG_DONE,
                                     channel="kv", nbytes=0)
    while done_seen < nranks - 1:
        rreq = ctx.mpi.irecv(channel="kv")
        payload = yield from rreq.wait()
        if rreq.message.tag == _TAG_DONE:
            done_seen += 1
        elif rreq.message.tag == _TAG_REQ:
            yield from serve(payload)
    for req in pending:
        yield from req.wait()
    yield from ctx.coll.barrier()
    return lat, dict(store)
