"""Halo-exchange engines for the MILC proxy.

The RMA scheme is the paper's (Section 4.4, after the UPC MILC port):

    "A process notifies all neighbors with a separate atomic add as soon
    as the data in the 'send' buffer is initialized.  Then all processes
    wait for this flag before they get [...] the communication data into
    their local buffers."

Window layout (bytes): [0..8) monotone notification counter, then eight
packed send-buffer slots (one per direction).  The counter is never reset;
after exchange round n every rank waits for ``n * incoming`` -- this
avoids any reset race without extra synchronization.
"""

from __future__ import annotations

import numpy as np

from repro.apps.milc.lattice import LatticeDecomp
from repro.rma.enums import Op

__all__ = ["Mpi1Halo", "RmaHalo", "UpcHalo", "DIRECTIONS"]

DIRECTIONS = [(dim, side) for dim in range(4) for side in (-1, +1)]
_POLL_NS = 400


def _slot_offsets(decomp: LatticeDecomp) -> tuple[dict, int]:
    """Byte offsets of the 8 send slots (after the 64-byte header)."""
    offs = {}
    cur = 64
    for dim, side in DIRECTIONS:
        offs[(dim, side)] = cur
        cur += decomp.face_bytes(dim)
    return offs, cur


class _HaloBase:
    def __init__(self, ctx, decomp: LatticeDecomp) -> None:
        self.ctx = ctx
        self.decomp = decomp
        self.rank = ctx.rank
        self.remote_dirs = [(dim, side) for dim, side in DIRECTIONS
                            if decomp.pgrid[dim] > 1]
        self.rounds = 0

    def _local_wrap(self, op, padded) -> None:
        """Periodic wraparound for undecomposed dimensions."""
        for dim in range(4):
            if self.decomp.pgrid[dim] == 1:
                op.set_halo(padded, dim, +1, op.face(padded, dim, -1))
                op.set_halo(padded, dim, -1, op.face(padded, dim, +1))


class Mpi1Halo(_HaloBase):
    """Nonblocking send/recv per direction, waitall, install."""

    def setup(self):
        return
        yield  # pragma: no cover

    def exchange(self, op, padded):
        ctx = self.ctx
        self._local_wrap(op, padded)
        self.rounds += 1
        tagbase = self.rounds * 16
        recvs = {}
        sends = []
        # Pack cost: MILC's MPI path serializes faces into send buffers
        # just like the UPC/RMA paths do (paper Section 4.4).
        yield from ctx.compute(
            sum(self.decomp.face_bytes(d) for d, _ in self.remote_dirs)
            * 0.154)
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            # my (dim, side) halo comes from that neighbor's opposite face
            tag = tagbase + dim * 2 + (0 if side < 0 else 1)
            recvs[(dim, side)] = ctx.mpi.irecv(peer, tag=tag, channel="milc")
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            # the tag encodes the direction *at the receiver*: my low face
            # fills their high halo
            tag = tagbase + dim * 2 + (0 if side > 0 else 1)
            face = op.face(padded, dim, side)
            r = yield from ctx.mpi.isend(peer, face, tag=tag, channel="milc")
            sends.append(r)
        for (dim, side), req in recvs.items():
            data = yield from req.wait()
            op.set_halo(padded, dim, side, data)
        for r in sends:
            yield from r.wait()


class RmaHalo(_HaloBase):
    """foMPI get-based exchange with atomic-add notification."""

    def __init__(self, ctx, decomp: LatticeDecomp) -> None:
        super().__init__(ctx, decomp)
        self.offsets, self.win_bytes = _slot_offsets(decomp)
        self.win = None

    def setup(self):
        self.win = yield from self.ctx.rma.win_allocate(self.win_bytes)
        yield from self.win.lock_all()

    def teardown(self):
        yield from self.win.unlock_all()

    def exchange(self, op, padded):
        ctx = self.ctx
        win = self.win
        self._local_wrap(op, padded)
        self.rounds += 1
        # 1. pack all faces into my window's send slots (local stores)
        view = win.local_view(np.uint8)
        for dim, side in self.remote_dirs:
            face = op.face(padded, dim, side)
            off = self.offsets[(dim, side)]
            view[off:off + face.nbytes] = face.view(np.uint8).ravel()
        yield from ctx.compute(
            sum(self.decomp.face_bytes(d) for d, _ in self.remote_dirs)
            * 0.154)  # pack memcpy
        yield from win.sync()
        # 2. notify every neighbor with a separate atomic add
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            yield from win.accumulate(np.array([1], np.int64), peer, 0,
                                      Op.SUM)
        # 3. wait until all neighbors of this round notified me
        expected = self.rounds * len(self.remote_dirs)
        flag = win.local_view(np.int64)
        while int(flag[0]) < expected:
            yield ctx.env.timeout(_POLL_NS)
        # 4. get each neighbor's opposite face, as late as possible
        outs = {}
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            nbytes = self.decomp.face_bytes(dim)
            src_off = self.offsets[(dim, -side)]  # their opposite slot
            out = np.empty(nbytes, dtype=np.uint8)
            yield from win.get(out, peer, src_off)
            outs[(dim, side)] = out
        yield from win.flush_all()
        for (dim, side), raw in outs.items():
            op.set_halo(padded, dim, side, raw.view(np.complex128))


class UpcHalo(_HaloBase):
    """The original UPC scheme (aadd + upc_memget_nb + fence)."""

    def __init__(self, ctx, decomp: LatticeDecomp) -> None:
        super().__init__(ctx, decomp)
        self.offsets, self.win_bytes = _slot_offsets(decomp)
        self.arr = None

    def setup(self):
        self.arr = yield from self.ctx.upc.all_alloc(self.win_bytes)

    def exchange(self, op, padded):
        ctx = self.ctx
        arr = self.arr
        self._local_wrap(op, padded)
        self.rounds += 1
        view = arr.local_view(np.uint8)
        for dim, side in self.remote_dirs:
            face = op.face(padded, dim, side)
            off = self.offsets[(dim, side)]
            view[off:off + face.nbytes] = face.view(np.uint8).ravel()
        yield from ctx.compute(
            sum(self.decomp.face_bytes(d) for d, _ in self.remote_dirs)
            * 0.154)
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            yield from ctx.upc.aadd_nb(arr, peer, 0, 1)
        expected = self.rounds * len(self.remote_dirs)
        flag = arr.local_view(np.int64)
        while int(flag[0]) < expected:
            yield ctx.env.timeout(_POLL_NS)
        outs = {}
        handles = []
        for dim, side in self.remote_dirs:
            peer = self.decomp.neighbor(self.rank, dim, side)
            nbytes = self.decomp.face_bytes(dim)
            out = np.empty(nbytes, dtype=np.uint8)
            h = yield from ctx.upc.memget_nb(arr, peer,
                                             self.offsets[(dim, -side)],
                                             nbytes, out)
            handles.append(h)
            outs[(dim, side)] = out
        yield from ctx.upc.fence()
        for (dim, side), raw in outs.items():
            op.set_halo(padded, dim, side, raw.view(np.complex128))
