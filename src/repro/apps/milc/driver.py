"""MILC proxy driver: the Figure 8 weak-scaling experiment."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.milc.cg import cg_solve
from repro.apps.milc.comm import Mpi1Halo, RmaHalo, UpcHalo
from repro.apps.milc.lattice import LatticeDecomp
from repro.apps.milc.su3 import StencilOperator, make_source

__all__ = ["MilcSpec", "milc_program"]

_ENGINES = {"mpi1": Mpi1Halo, "rma": RmaHalo, "upc": UpcHalo}


@dataclass(frozen=True)
class MilcSpec:
    """Weak-scaling problem description.

    ``local`` is the per-rank lattice (the paper uses 4^3 x 8);
    ``flop_rate`` is the effective per-core rate used to charge the
    stencil arithmetic.
    """

    local: tuple[int, int, int, int] = (4, 4, 4, 8)
    mass: float = 0.5
    tol: float = 1e-6
    maxiter: int = 60
    #: Effective per-core stencil rate.  2.5e10 sets communication to
    #: ~25-35% of the iteration, the balance su3_rmd exhibits at the
    #: paper's Blue Waters scale (see EXPERIMENTS.md).
    flop_rate: float = 2.5e10
    seed: int = 7


def milc_program(ctx, spec: MilcSpec, variant: str,
                 result_box: dict | None = None):
    """SPMD program; returns (elapsed_ns, iters, residual, checksum)."""
    decomp = LatticeDecomp.weak(spec.local, ctx.nranks)
    op = StencilOperator(decomp, ctx.rank, spec.mass, spec.seed)
    b = make_source(decomp, ctx.rank, spec.seed)
    engine = _ENGINES[variant](ctx, decomp)
    if hasattr(engine, "setup"):
        yield from engine.setup()
    yield from ctx.coll.barrier()
    t0 = ctx.now
    x, iters, residual = yield from cg_solve(
        ctx, op, engine, b, tol=spec.tol, maxiter=spec.maxiter,
        flop_rate=spec.flop_rate)
    yield from ctx.coll.barrier()
    elapsed = ctx.now - t0
    if hasattr(engine, "teardown"):
        yield from engine.teardown()
    checksum = complex(np.sum(x * np.conj(b)))
    if result_box is not None:
        result_box[ctx.rank] = x
    return elapsed, iters, residual, checksum
