"""Distributed conjugate gradient (the su3_rmd solver proxy).

The numerics run for real (numpy) so the solver's convergence verifies
the whole stack end to end; simulated *time* for the local arithmetic is
charged from the flop model so the compute/communication balance matches
the modeled machine rather than the host interpreter.
"""

from __future__ import annotations

import numpy as np

from repro.apps.milc.su3 import StencilOperator, flops_per_site, local_dot

__all__ = ["cg_solve"]


def cg_solve(ctx, op: StencilOperator, halo, b: np.ndarray, *,
             tol: float, maxiter: int, flop_rate: float):
    """Solve A x = b; returns (x, iterations, final_residual_norm).

    ``halo.exchange(op, padded)`` refreshes the halos of the direction
    vector before each operator application; two allreduces per iteration
    reproduce su3_rmd's reduction cadence.
    """
    sites = op.decomp.local_sites
    apply_ns = sites * flops_per_site() / flop_rate * 1e9
    vec_ns = sites * 3 * 8 * 6 / flop_rate * 1e9  # axpy-ish updates

    x = np.zeros_like(b)
    r = b.copy()
    p_pad = op.padded(r)
    rr = yield from ctx.coll.allreduce(local_dot(r, r), nbytes=16)
    bb = rr
    iters = 0
    while iters < maxiter and rr.real > (tol * tol) * bb.real:
        yield from halo.exchange(op, p_pad)
        ap = op.apply(p_pad)
        yield from ctx.compute(apply_ns)
        p_int = StencilOperator.interior(p_pad)
        pap = yield from ctx.coll.allreduce(local_dot(p_int, ap), nbytes=16)
        alpha = rr / pap
        x += alpha * p_int
        r -= alpha * ap
        yield from ctx.compute(vec_ns)
        rr_new = yield from ctx.coll.allreduce(local_dot(r, r), nbytes=16)
        beta = rr_new / rr
        rr = rr_new
        StencilOperator.interior(p_pad)[...] = r + beta * p_int
        iters += 1
    return x, iters, float(np.sqrt(rr.real / bb.real))
