"""MILC-like lattice QCD proxy (paper Section 4.4, Figure 8).

su3_rmd's dominant cost is a conjugate-gradient solve whose operator is a
4-D nearest-neighbor stencil on complex 3-vectors with (gauge-link) matrix
weights; every iteration exchanges halos in all 8 directions and performs
two global reductions.  This proxy preserves exactly that structure:

* a Hermitian positive-definite "hopping" operator
  ``A v(s) = (8+m) v(s) - sum_mu [ e^{i theta_mu(s)} U_mu v(s+mu)
                                 + e^{-i theta_mu(s-mu)} U_mu^H v(s-mu) ]``
  with per-direction unitary 3x3 matrices and deterministic per-link
  phases (so the operator is identical for every decomposition);
* 4-D domain decomposition with halo exchange in 8 directions;
* the paper's three transports: MPI-1 nonblocking send/recv, foMPI RMA
  (notify with an atomic add, then get the neighbor's packed buffer --
  the exact scheme of the UPC MILC port), and the UPC layer.

Weak scaling with a 4^3 x 8 local lattice reproduces Figure 8's shape.
"""

from repro.apps.milc.driver import MilcSpec, milc_program
from repro.apps.milc.lattice import LatticeDecomp

__all__ = ["MilcSpec", "milc_program", "LatticeDecomp"]
