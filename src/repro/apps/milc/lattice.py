"""4-D lattice decomposition and halo geometry."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatticeDecomp", "factorize4"]


def factorize4(p: int) -> tuple[int, int, int, int]:
    """Split p into 4 near-equal factors (largest primes spread first)."""
    dims = [1, 1, 1, 1]
    n = p
    f = 2
    primes = []
    while f * f <= n:
        while n % f == 0:
            primes.append(f)
            n //= f
        f += 1
    if n > 1:
        primes.append(n)
    for q in sorted(primes, reverse=True):
        dims.sort()
        dims[0] *= q
    dims.sort(reverse=True)
    return tuple(dims)  # type: ignore[return-value]


@dataclass(frozen=True)
class LatticeDecomp:
    """Process grid + local lattice geometry (weak scaling: the local
    volume is fixed; global dims are local * pgrid)."""

    local: tuple[int, int, int, int]
    pgrid: tuple[int, int, int, int]

    @classmethod
    def weak(cls, local: tuple[int, int, int, int], p: int) -> "LatticeDecomp":
        return cls(local=local, pgrid=factorize4(p))

    @property
    def nranks(self) -> int:
        a, b, c, d = self.pgrid
        return a * b * c * d

    @property
    def global_dims(self) -> tuple[int, ...]:
        return tuple(l * g for l, g in zip(self.local, self.pgrid))

    @property
    def local_sites(self) -> int:
        a, b, c, d = self.local
        return a * b * c * d

    def coords(self, rank: int) -> tuple[int, int, int, int]:
        g = self.pgrid
        c3 = rank % g[3]
        c2 = (rank // g[3]) % g[2]
        c1 = (rank // (g[3] * g[2])) % g[1]
        c0 = rank // (g[3] * g[2] * g[1])
        return (c0, c1, c2, c3)

    def rank_of(self, coords) -> int:
        g = self.pgrid
        c = [x % gg for x, gg in zip(coords, g)]
        return ((c[0] * g[1] + c[1]) * g[2] + c[2]) * g[3] + c[3]

    def neighbor(self, rank: int, dim: int, step: int) -> int:
        c = list(self.coords(rank))
        c[dim] += step
        return self.rank_of(c)

    def origin(self, rank: int) -> tuple[int, ...]:
        """Global coordinate of this rank's local (0,0,0,0) site."""
        return tuple(c * l for c, l in zip(self.coords(rank), self.local))

    def face_sites(self, dim: int) -> int:
        return self.local_sites // self.local[dim]

    def face_bytes(self, dim: int, words_per_site: int = 3) -> int:
        return self.face_sites(dim) * words_per_site * 16  # complex128


def link_phases(decomp: LatticeDecomp, rank: int) -> np.ndarray:
    """Deterministic per-link phases theta_mu(s) on the *padded* local
    lattice, computed directly from global coordinates (identical for
    every decomposition, so results are decomposition-independent).

    Shape: (4, l0+2, l1+2, l2+2, l3+2).
    """
    l = decomp.local
    gd = decomp.global_dims
    org = decomp.origin(rank)
    coords = [((np.arange(-1, l[d] + 1) + org[d]) % gd[d])
              for d in range(4)]
    x0, x1, x2, x3 = np.meshgrid(*coords, indexing="ij")
    out = np.empty((4,) + tuple(n + 2 for n in l))
    for mu in range(4):
        h = (x0 * 73856093 ^ x1 * 19349663 ^ x2 * 83492791
             ^ x3 * 2654435761 ^ (mu + 1) * 40503) & 0xFFFF
        out[mu] = 2.0 * np.pi * h / 65536.0
    return out
