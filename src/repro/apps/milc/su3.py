"""The SU(3)-like stencil operator and field generation.

Fields are complex 3-vectors on a halo-padded local lattice
(shape ``(l0+2, l1+2, l2+2, l3+2, 3)``); the operator applies one 3x3
unitary per direction with deterministic per-link phases.  Hermiticity and
positive definiteness (mass > 0) are what CG needs -- verified by the
property tests in tests/apps/test_milc.py.
"""

from __future__ import annotations

import numpy as np

from repro.apps.milc.lattice import LatticeDecomp, link_phases

__all__ = ["direction_matrices", "make_source", "StencilOperator",
           "local_dot", "flops_per_site"]

#: Dslash-like arithmetic per site (8 matrix-vector products + sums),
#: used by the simulated-compute charge.
def flops_per_site() -> int:
    # 8 dirs * (3x3 complex mat-vec: 36 cmul + 30 cadd ~ 66 * 4 flops
    # per complex op) + vector updates.
    return 8 * 66 * 4 + 100


def direction_matrices(seed: int) -> np.ndarray:
    """Four deterministic unitary 3x3 matrices (QR of a random complex)."""
    rng = np.random.default_rng(seed ^ 0x5353_5533)
    out = np.empty((4, 3, 3), dtype=np.complex128)
    for mu in range(4):
        m = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        q, r = np.linalg.qr(m)
        # Fix the phase so the decomposition is unique/deterministic.
        q = q * (np.conj(np.diagonal(r)) / np.abs(np.diagonal(r)))
        out[mu] = q
    return out


def make_source(decomp: LatticeDecomp, rank: int, seed: int) -> np.ndarray:
    """Deterministic b(s) from *global* coordinates (interior only)."""
    l = decomp.local
    org = decomp.origin(rank)
    coords = [np.arange(l[d]) + org[d] for d in range(4)]
    x0, x1, x2, x3 = np.meshgrid(*coords, indexing="ij")
    h = (x0 * 2246822519 ^ x1 * 3266489917 ^ x2 * 668265263
         ^ x3 * 374761393 ^ seed) & 0xFFFFFF
    base = h / float(1 << 24)
    out = np.empty(tuple(l) + (3,), dtype=np.complex128)
    for c in range(3):
        out[..., c] = np.sin(base * (c + 1) * 6.28) + 1j * np.cos(
            base * (c + 2) * 3.14)
    return out


class StencilOperator:
    """A = (8 + mass) I - hopping terms; acts on padded fields."""

    def __init__(self, decomp: LatticeDecomp, rank: int, mass: float,
                 seed: int) -> None:
        self.decomp = decomp
        self.rank = rank
        self.mass = mass
        self.U = direction_matrices(seed)
        theta = link_phases(decomp, rank)
        self.phase = np.exp(1j * theta)          # e^{i theta_mu(s)}, padded
        self.l = decomp.local

    def padded(self, interior: np.ndarray) -> np.ndarray:
        """Allocate a halo-padded field holding ``interior``."""
        l = self.l
        out = np.zeros((l[0] + 2, l[1] + 2, l[2] + 2, l[3] + 2, 3),
                       dtype=np.complex128)
        out[1:-1, 1:-1, 1:-1, 1:-1, :] = interior
        return out

    @staticmethod
    def interior(padded: np.ndarray) -> np.ndarray:
        return padded[1:-1, 1:-1, 1:-1, 1:-1, :]

    # -- halo faces -------------------------------------------------------
    def face(self, padded: np.ndarray, dim: int, side: int) -> np.ndarray:
        """The interior face a neighbor needs (side -1: low, +1: high)."""
        sl = [slice(1, -1)] * 4 + [slice(None)]
        sl[dim] = slice(1, 2) if side < 0 else slice(-2, -1)
        return np.ascontiguousarray(padded[tuple(sl)])

    def set_halo(self, padded: np.ndarray, dim: int, side: int,
                 data: np.ndarray) -> None:
        """Install a received face into the halo (side -1: low halo)."""
        sl = [slice(1, -1)] * 4 + [slice(None)]
        sl[dim] = slice(0, 1) if side < 0 else slice(-1, None)
        padded[tuple(sl)] = data.reshape(padded[tuple(sl)].shape)

    # -- the operator ------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """A v on the interior; halos of ``padded`` must be current."""
        v = padded
        out = (8.0 + self.mass) * self.interior(v).copy()
        for mu in range(4):
            plus = [slice(1, -1)] * 4
            minus = [slice(1, -1)] * 4
            plus[mu] = slice(2, None)
            minus[mu] = slice(0, -2)
            ph_int = self.phase[mu][1:-1, 1:-1, 1:-1, 1:-1]
            ph_minus_idx = [slice(1, -1)] * 4
            ph_minus_idx[mu] = slice(0, -2)
            ph_m = self.phase[mu][tuple(ph_minus_idx)]
            fwd = np.einsum("ij,...j->...i", self.U[mu],
                            v[tuple(plus) + (slice(None),)])
            bwd = np.einsum("ji,...j->...i", np.conj(self.U[mu]),
                            v[tuple(minus) + (slice(None),)])
            out -= ph_int[..., None] * fwd + np.conj(ph_m)[..., None] * bwd
        return out


def local_dot(a: np.ndarray, b: np.ndarray) -> complex:
    """<a, b> over interior fields."""
    return complex(np.vdot(a, b))
