"""MPI-3 RMA hashtable (the foMPI curve of Figure 7a).

Insert protocol (mirrors the paper's UPC variant, with MPI-3 standard
atomics + flushes instead of Cray intrinsics):

1. CAS(table[slot].value, 0 -> key); success means the slot was empty.
2. On collision, FADD(next_free) acquires an overflow cell; the losing
   value is put there; a fetch-and-REPLACE on the slot's chain head links
   the new cell in front (the returned old head becomes the cell's next
   pointer).  All operations are one sided within one lock_all epoch.
"""

from __future__ import annotations

import numpy as np

from repro.apps.hashtable.common import HashTableLayout, random_keys
from repro.rma.enums import Op

__all__ = ["rma_insert_program"]


def rma_insert(win, layout: HashTableLayout, key: int):
    """Insert one key (generator); returns 'table' or 'heap'."""
    ctx = win.ctx
    owner, slot = layout.place(key, ctx.nranks)
    old = yield from win.compare_and_swap(np.int64(0), np.int64(key),
                                          owner, layout.slot_value(slot))
    if int(old) == 0:
        return "table"
    # Collision: acquire an overflow cell at the owner ...
    cell0 = yield from win.fetch_and_op(np.int64(1), owner, 0, Op.SUM)
    cell = layout.claim_cell(cell0)  # 1-based
    # ... publish the value, link the chain head, fix the next pointer.
    yield from win.put(np.array([key], np.int64), owner,
                       layout.heap_value(cell))
    old_head = yield from win.fetch_and_op(np.int64(cell), owner,
                                           layout.slot_head(slot), Op.REPLACE)
    yield from win.put(np.array([int(old_head)], np.int64), owner,
                       layout.heap_next(cell))
    yield from win.flush(owner)
    return "heap"


def rma_insert_program(ctx, layout: HashTableLayout, inserts_per_rank: int,
                       verify_box: dict | None = None):
    """SPMD program: batch-insert random keys; returns (elapsed_ns, keys)."""
    win = yield from ctx.rma.win_allocate(layout.nbytes, disp_unit=8)
    keys = random_keys(ctx.rng("ht-keys"), inserts_per_rank)
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    t0 = ctx.now
    for k in keys:
        yield from rma_insert(win, layout, int(k))
    yield from win.flush_all()
    yield from ctx.coll.barrier()
    elapsed = ctx.now - t0
    yield from win.unlock_all()
    if verify_box is not None:
        verify_box.setdefault("volumes", {})[ctx.rank] = \
            win.local_view(np.int64).copy()
        verify_box.setdefault("keys", {})[ctx.rank] = keys
    return elapsed
