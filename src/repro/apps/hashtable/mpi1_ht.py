"""MPI-1 hashtable: active-message inserts over Send/Recv (Figure 7a).

Each remote insert sends the key to the owner, which invokes a handler to
apply it locally; termination uses the paper's simple protocol -- every
rank notifies every other rank of its local termination (tag DONE), and
MPI's non-overtaking rule guarantees all of a sender's inserts are matched
before its DONE.  The owner-side message handling is precisely the
receiver involvement that caps the insert rate once communication goes
inter-node.
"""

from __future__ import annotations

import numpy as np

from repro.apps.hashtable.common import HashTableLayout, random_keys

__all__ = ["mpi1_insert_program"]

_TAG_INSERT = 1
_TAG_DONE = 2
_HANDLER_NS = 60  # owner-side handler cost per applied element


def mpi1_insert_program(ctx, layout: HashTableLayout, inserts_per_rank: int,
                        verify_box: dict | None = None):
    """SPMD program; returns (elapsed_ns)."""
    volume = np.zeros(layout.words, dtype=np.int64)
    keys = random_keys(ctx.rng("ht-keys"), inserts_per_rank)
    yield from ctx.coll.barrier()
    t0 = ctx.now

    reqs = []
    for k in keys:
        owner, slot = layout.place(int(k), ctx.nranks)
        if owner == ctx.rank:
            yield from ctx.compute(_HANDLER_NS)
            layout.insert_local(volume, slot, int(k))
        else:
            r = yield from ctx.mpi.isend(owner, int(k), tag=_TAG_INSERT,
                                         channel="ht", nbytes=8)
            reqs.append(r)
    for r in reqs:
        yield from r.wait()
    for other in range(ctx.nranks):
        if other != ctx.rank:
            yield from ctx.mpi.isend(other, None, tag=_TAG_DONE,
                                     channel="ht", nbytes=0)

    done = 0
    while done < ctx.nranks - 1:
        req = ctx.mpi.irecv(channel="ht")
        payload = yield from req.wait()
        if req.message.tag == _TAG_DONE:
            done += 1
        else:
            key = int(payload)
            _owner, slot = layout.place(key, ctx.nranks)
            yield from ctx.compute(_HANDLER_NS)
            layout.insert_local(volume, slot, key)
    yield from ctx.coll.barrier()
    elapsed = ctx.now - t0
    if verify_box is not None:
        verify_box.setdefault("volumes", {})[ctx.rank] = volume.copy()
        verify_box.setdefault("keys", {})[ctx.rank] = keys
    return elapsed
