"""UPC hashtable (the Cray UPC curve of Figure 7a).

Same protocol as the RMA variant, expressed with UPC's shared array plus
Cray's proprietary CAS/aadd atomic extensions and upc_fence, exactly as
the paper describes its UPC implementation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.hashtable.common import HashTableLayout, random_keys

__all__ = ["upc_insert_program"]


def upc_insert(ctx, arr, layout: HashTableLayout, key: int):
    owner, slot = layout.place(key, ctx.nranks)
    old = yield from ctx.upc.cas(arr, owner, layout.slot_value(slot), 0, key)
    if int(old) == 0:
        return "table"
    cell0 = yield from ctx.upc.aadd(arr, owner, 0, 1)
    cell = layout.claim_cell(cell0)
    yield from ctx.upc.memput_nb(arr, owner, 8 * layout.heap_value(cell),
                                 np.array([key], np.int64))
    # second CAS-style update of the chain head: fetch old head, link
    while True:
        head = yield from ctx.upc.aadd(arr, owner, layout.slot_head(slot), 0)
        got = yield from ctx.upc.cas(arr, owner, layout.slot_head(slot),
                                     int(head), cell)
        if int(got) == int(head):
            break
    yield from ctx.upc.memput_nb(arr, owner, 8 * layout.heap_next(cell),
                                 np.array([int(head)], np.int64))
    yield from ctx.upc.fence()
    return "heap"


def upc_insert_program(ctx, layout: HashTableLayout, inserts_per_rank: int,
                       verify_box: dict | None = None):
    arr = yield from ctx.upc.all_alloc(layout.nbytes)
    keys = random_keys(ctx.rng("ht-keys"), inserts_per_rank)
    yield from ctx.upc.barrier()
    t0 = ctx.now
    for k in keys:
        yield from upc_insert(ctx, arr, layout, int(k))
    yield from ctx.upc.fence()
    yield from ctx.upc.barrier()
    elapsed = ctx.now - t0
    if verify_box is not None:
        verify_box.setdefault("volumes", {})[ctx.rank] = \
            arr.local_view(np.int64).copy()
        verify_box.setdefault("keys", {})[ctx.rank] = keys
    return elapsed
