"""Distributed hashtable (paper Section 4.1, Figure 7a).

Each rank owns a *local volume*: a fixed-size table plus an overflow heap,
with a next-free pointer for heap allocation -- all 8-byte integer cells.
Three implementations share this layout:

* :mod:`~repro.apps.hashtable.rma_ht`  -- MPI-3 RMA: CAS into the table
  slot, fetch-and-add on the next-free pointer, fetch-and-replace on the
  slot's chain head (lock-free chaining, as the paper's UPC code does);
* :mod:`~repro.apps.hashtable.upc_ht`  -- the same protocol through the
  UPC layer's proprietary atomics;
* :mod:`~repro.apps.hashtable.mpi1_ht` -- MPI-1 active messages: the
  element is sent to the owner, which applies it locally; termination by
  all-to-all notification.
"""

from repro.apps.hashtable.common import HashTableLayout, hash_key, verify_contents
from repro.apps.hashtable.mpi1_ht import mpi1_insert_program
from repro.apps.hashtable.rma_ht import rma_insert_program
from repro.apps.hashtable.upc_ht import upc_insert_program

__all__ = [
    "HashTableLayout",
    "hash_key",
    "verify_contents",
    "rma_insert_program",
    "upc_insert_program",
    "mpi1_insert_program",
]
