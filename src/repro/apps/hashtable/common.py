"""Shared layout and verification for the distributed hashtable.

Local-volume word layout (disp_unit = 8; all cells 8-byte integers):

    word 0                      next-free heap cell counter (FADD target)
    words 1 .. 2T               table: slot s = (value@1+2s, head@2+2s)
    words 1+2T .. 1+2T+2H       overflow heap: cell i = (value, next)

``head``/``next`` hold 1-based heap-cell indices (0 = nil), so a zeroed
volume is a valid empty table.  Values are nonzero 63-bit integers; a CAS
of 0 -> value claims an empty slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HashTableLayout", "hash_key", "place_key", "heap_cells_for",
           "claim_overflow_cell", "random_keys", "verify_contents",
           "DEFAULT_TABLE_SLOTS"]

_MIX = 0x9E3779B97F4A7C15
_M64 = (1 << 64) - 1

#: The one source of truth for the fig7a table geometry.  Every consumer
#: (appbench sweeps, the demo, and the kvstore app built on the same
#: placement) derives from these so the apps cannot drift apart.
DEFAULT_TABLE_SLOTS = 64


def heap_cells_for(inserts_per_rank: int) -> int:
    """Overflow-heap sizing rule shared by every hashtable consumer."""
    return max(64, 4 * inserts_per_rank)


def hash_key(key: int) -> int:
    """64-bit finalizer (splitmix64-style), deterministic across ranks."""
    z = (key + _MIX) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def place_key(key: int, nranks: int, table_slots: int) -> tuple[int, int]:
    """(owner rank, table slot) for a key -- the placement function every
    hashtable variant (fig7a RMA/UPC/MPI-1 and the kvstore) agrees on."""
    h = hash_key(key)
    return (h % nranks, (h >> 20) % table_slots)


def claim_overflow_cell(counter: int, heap_cells: int) -> int:
    """1-based heap cell a next-free-counter FADD acquired (``counter``
    is the FADD's *old* value); the one overflow rule shared by the RMA,
    UPC, owner-side, and kvstore variants."""
    cell = int(counter) + 1
    if cell > heap_cells:
        raise OverflowError("hashtable overflow heap exhausted")
    return cell


@dataclass(frozen=True)
class HashTableLayout:
    """Geometry of each rank's local volume."""

    table_slots: int
    heap_cells: int

    @classmethod
    def default(cls, inserts_per_rank: int,
                table_slots: int = DEFAULT_TABLE_SLOTS) -> "HashTableLayout":
        """The canonical fig7a geometry for a given per-rank insert load."""
        return cls(table_slots=table_slots,
                   heap_cells=heap_cells_for(inserts_per_rank))

    @property
    def words(self) -> int:
        return 1 + 2 * self.table_slots + 2 * self.heap_cells

    @property
    def nbytes(self) -> int:
        return 8 * self.words

    # -- word indices ---------------------------------------------------
    def slot_value(self, slot: int) -> int:
        return 1 + 2 * slot

    def slot_head(self, slot: int) -> int:
        return 2 + 2 * slot

    def heap_value(self, cell: int) -> int:
        """``cell`` is 1-based (0 = nil)."""
        return 1 + 2 * self.table_slots + 2 * (cell - 1)

    def heap_next(self, cell: int) -> int:
        return self.heap_value(cell) + 1

    # -- key placement ----------------------------------------------------
    def place(self, key: int, nranks: int) -> tuple[int, int]:
        """(owner rank, table slot) for a key."""
        return place_key(key, nranks, self.table_slots)

    def claim_cell(self, counter: int) -> int:
        """The 1-based heap cell a fetch-and-add of the next-free counter
        acquired (``counter`` is the FADD's *old* value); delegates to the
        module-level rule shared with the kvstore layout."""
        return claim_overflow_cell(counter, self.heap_cells)

    # -- local application (owner-side, used by MPI-1 + verification) ------
    def insert_local(self, volume: np.ndarray, slot: int, value: int) -> None:
        """Apply one insert to a local volume (int64 view)."""
        vslot = self.slot_value(slot)
        if volume[vslot] == 0:
            volume[vslot] = value
            return
        cell = self.claim_cell(volume[0])  # 1-based heap cell
        volume[0] += 1
        volume[self.heap_value(cell)] = value
        old_head = volume[self.slot_head(slot)]
        volume[self.slot_head(slot)] = cell
        volume[self.heap_next(cell)] = old_head

    def slot_contents(self, volume: np.ndarray, slot: int) -> list[int]:
        """All values stored under a slot (table entry + chain)."""
        out = []
        v = int(volume[self.slot_value(slot)])
        if v != 0:
            out.append(v)
        cell = int(volume[self.slot_head(slot)])
        while cell != 0:
            out.append(int(volume[self.heap_value(cell)]))
            cell = int(volume[self.heap_next(cell)])
        return out

    def all_contents(self, volume: np.ndarray) -> list[int]:
        return [v for s in range(self.table_slots)
                for v in self.slot_contents(volume, s)]


def random_keys(rng: np.random.Generator, count: int) -> np.ndarray:
    """Nonzero 62-bit random keys (value 0 is the empty marker)."""
    return rng.integers(1, 1 << 62, size=count, dtype=np.int64)


def verify_contents(layout: HashTableLayout, volumes: list[np.ndarray],
                    all_keys: list[np.ndarray]) -> None:
    """Assert every inserted key is stored exactly once at its owner."""
    nranks = len(volumes)
    expected: dict[int, list[int]] = {r: [] for r in range(nranks)}
    for keys in all_keys:
        for k in keys:
            owner, _slot = layout.place(int(k), nranks)
            expected[owner].append(int(k))
    for r, vol in enumerate(volumes):
        stored = sorted(layout.all_contents(vol))
        want = sorted(expected[r])
        if stored != want:
            missing = set(want) - set(stored)
            extra = set(stored) - set(want)
            raise AssertionError(
                f"rank {r}: hashtable mismatch "
                f"(missing {len(missing)}, extra {len(extra)})")
