"""Pencil decomposition geometry for the 2-D-decomposed 3-D FFT."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A Py x Pz grid of ranks; rank r -> (py, pz) = (r // pz, r % pz)."""

    py: int
    pz: int

    @classmethod
    def for_ranks(cls, p: int) -> "ProcessGrid":
        """Near-square factorization with py >= pz."""
        pz = int(math.isqrt(p))
        while p % pz:
            pz -= 1
        return cls(py=p // pz, pz=pz)

    @property
    def size(self) -> int:
        return self.py * self.pz

    def coords(self, rank: int) -> tuple[int, int]:
        return rank // self.pz, rank % self.pz

    def rank_of(self, py: int, pz: int) -> int:
        return py * self.pz + pz

    def row_group(self, rank: int) -> list[int]:
        """Ranks sharing this rank's pz (transpose-1 partners)."""
        _py, pz = self.coords(rank)
        return [self.rank_of(q, pz) for q in range(self.py)]

    def col_group(self, rank: int) -> list[int]:
        """Ranks sharing this rank's py (transpose-2 partners)."""
        py, _pz = self.coords(rank)
        return [self.rank_of(py, q) for q in range(self.pz)]

    def check_divides(self, nx: int, ny: int, nz: int) -> None:
        if nx % self.py or ny % self.py:
            raise ValueError(f"Py={self.py} must divide Nx={nx} and Ny={ny}")
        if nz % self.pz or ny % self.pz:
            raise ValueError(f"Pz={self.pz} must divide Nz={nz} and Ny={ny}")
