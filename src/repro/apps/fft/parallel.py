"""The distributed 3-D FFT.

Data layouts on rank (py, pz) of a Py x Pz grid, global dims (Nx, Ny, Nz):

    a1[Nx][ly][lz]   x-pencils   ly = Ny/Py, lz = Nz/Pz
    a2[Ny][lx][lz]   y-pencils   lx = Nx/Py
    a3[Nz][lx][ly2]  z-pencils   ly2 = Ny/Pz

Transpose 1 (within the row group, fixed pz): peer qy receives
``a1_f[qy*lx:(qy+1)*lx, :, :]`` transposed to (ly, lx, lz), which lands
*contiguously* at a2 offset ``py*ly * lx*lz`` elements -- one put per
(chunk, peer), no datatype scatter needed.  Transpose 2 is symmetric for
y<->z within the column group.

Chunking along the receiver-contiguous axis (y for phase 1, z for phase
2) is what enables the slab-overlap schedule: each chunk's FFT is followed
immediately by its nonblocking puts while the next chunk computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["FftSpec", "fft_program", "gather_result"]

_COMPLEX = np.complex128
_ELEM = 16  # bytes per complex128


@dataclass(frozen=True)
class FftSpec:
    """Problem + cost-model description.

    ``flop_rate`` is the effective per-core FFT rate (flops/s) used to
    charge simulated compute time; pick it to set the compute/comm ratio
    of the scale being modeled (see EXPERIMENTS.md).  ``chunks`` is the
    slab count for the overlap schedule.
    """

    nx: int
    ny: int
    nz: int
    flop_rate: float = 2.0e9
    chunks: int = 4

    @property
    def points(self) -> int:
        return self.nx * self.ny * self.nz

    def total_flops(self) -> float:
        return 5.0 * self.points * (math.log2(self.nx) + math.log2(self.ny)
                                    + math.log2(self.nz))

    def fft_ns(self, lines: int, length: int) -> float:
        """Simulated time for ``lines`` 1-D FFTs of ``length``."""
        return 5.0 * lines * length * math.log2(length) / self.flop_rate * 1e9


def _initial_block(spec: FftSpec, py: int, pz: int, ly: int, lz: int) -> np.ndarray:
    """Deterministic global input A[x,y,z], sliced for this rank."""
    x = np.arange(spec.nx)[:, None, None]
    y = (py * ly + np.arange(ly))[None, :, None]
    z = (pz * lz + np.arange(lz))[None, None, :]
    re = np.sin(0.7 * x + 0.3 * y + 0.1 * z)
    im = np.cos(0.2 * x - 0.5 * y + 0.9 * z)
    return (re + 1j * im).astype(_COMPLEX)


def fft_program(ctx, spec: FftSpec, variant: str, result_box: dict | None = None):
    """SPMD 3-D FFT; returns (elapsed_ns, gflops).

    variants: 'mpi1', 'rma_overlap', 'upc_overlap'.
    """
    p = ctx.nranks
    from repro.apps.fft.decomposition import ProcessGrid

    grid = ProcessGrid.for_ranks(p)
    grid.check_divides(spec.nx, spec.ny, spec.nz)
    py, pz = grid.coords(ctx.rank)
    ly, lz = spec.ny // grid.py, spec.nz // grid.pz
    lx, ly2 = spec.nx // grid.py, spec.ny // grid.pz

    a1 = _initial_block(spec, py, pz, ly, lz)

    a2_bytes = spec.ny * lx * lz * _ELEM
    a3_bytes = spec.nz * lx * ly2 * _ELEM

    if variant == "rma_overlap":
        win2 = yield from ctx.rma.win_allocate(a2_bytes)
        win3 = yield from ctx.rma.win_allocate(a3_bytes)
        yield from win2.lock_all()
        yield from win3.lock_all()
        comm = _RmaComm(ctx, win2, win3)
    elif variant == "upc_overlap":
        arr2 = yield from ctx.upc.all_alloc(a2_bytes)
        arr3 = yield from ctx.upc.all_alloc(a3_bytes)
        comm = _UpcComm(ctx, arr2, arr3)
    elif variant == "mpi1":
        comm = _MpiComm(ctx)
    else:
        raise ValueError(f"unknown FFT variant {variant!r}")

    yield from ctx.coll.barrier()
    t0 = ctx.now

    # ---- phase 1: FFT along x, transpose x<->y within the row group ----
    row = grid.row_group(ctx.rank)
    # Slab granularity: don't chop per-peer blocks below ~2 KiB -- tiny
    # puts cost more in per-op overhead than the overlap they buy.
    per_peer1 = ly * lx * lz * _ELEM
    nchunk = max(1, min(spec.chunks, ly, per_peer1 // 2048))
    cy = ly // nchunk
    yield from comm.begin_phase(1, row, a2_bytes)
    pieces1 = {}
    for c in range(nchunk):
        y0 = c * cy
        y1 = ly if c == nchunk - 1 else (c + 1) * cy
        a1[:, y0:y1, :] = np.fft.fft(a1[:, y0:y1, :], axis=0)
        yield from ctx.compute(spec.fft_ns((y1 - y0) * lz, spec.nx))
        for qy in range(grid.py):
            peer = row[qy]
            block = np.ascontiguousarray(
                a1[qy * lx:(qy + 1) * lx, y0:y1, :].transpose(1, 0, 2))
            off = (py * ly + y0) * lx * lz * _ELEM
            yield from comm.send_block(1, peer, off, block, pieces1)
    a2 = yield from comm.end_phase(1, row, (spec.ny, lx, lz), pieces1)

    # ---- phase 2: FFT along y, transpose y<->z within the column group --
    col = grid.col_group(ctx.rank)
    per_peer2 = ly2 * lx * lz * _ELEM
    nchunk = max(1, min(spec.chunks, lz, per_peer2 // 2048))
    cz = lz // nchunk
    yield from comm.begin_phase(2, col, a3_bytes)
    pieces2 = {}
    for c in range(nchunk):
        z0 = c * cz
        z1 = lz if c == nchunk - 1 else (c + 1) * cz
        a2[:, :, z0:z1] = np.fft.fft(a2[:, :, z0:z1], axis=0)
        yield from ctx.compute(spec.fft_ns((z1 - z0) * lx, spec.ny))
        for qz in range(grid.pz):
            peer = col[qz]
            block = np.ascontiguousarray(
                a2[qz * ly2:(qz + 1) * ly2, :, z0:z1].transpose(2, 1, 0))
            off = (pz * lz + z0) * lx * ly2 * _ELEM
            yield from comm.send_block(2, peer, off, block, pieces2)
    a3 = yield from comm.end_phase(2, col, (spec.nz, lx, ly2), pieces2)

    # ---- phase 3: FFT along z (no further communication) ----------------
    a3 = np.fft.fft(a3, axis=0)
    yield from ctx.compute(spec.fft_ns(lx * ly2, spec.nz))
    yield from ctx.coll.barrier()
    elapsed = ctx.now - t0
    if variant == "rma_overlap":
        yield from win2.unlock_all()
        yield from win3.unlock_all()

    if result_box is not None:
        result_box[ctx.rank] = a3
    gflops = spec.total_flops() / max(1, elapsed)  # flops/ns == gflops/s
    return elapsed, gflops


def gather_result(spec: FftSpec, p: int, boxes: dict) -> np.ndarray:
    """Reassemble the distributed result into F[x][y][z] for verification."""
    from repro.apps.fft.decomposition import ProcessGrid

    grid = ProcessGrid.for_ranks(p)
    lx, ly2 = spec.nx // grid.py, spec.ny // grid.pz
    out = np.zeros((spec.nx, spec.ny, spec.nz), dtype=_COMPLEX)
    for rank in range(p):
        py, pz = grid.coords(rank)
        a3 = boxes[rank]  # (Nz, lx, ly2)
        out[py * lx:(py + 1) * lx, pz * ly2:(pz + 1) * ly2, :] = \
            a3.transpose(1, 2, 0)
    return out


# ---------------------------------------------------------------------------
# communication engines
# ---------------------------------------------------------------------------
class _RmaComm:
    """foMPI slab-overlap engine: one lock_all epoch for the whole run,
    nonblocking puts per chunk, a single flush_all + barrier to close each
    phase ("completes the communication as late as possible")."""

    def __init__(self, ctx, win2, win3) -> None:
        self.ctx = ctx
        self.wins = {1: win2, 2: win3}

    def begin_phase(self, phase, group, nbytes):
        yield from self.ctx.coll.barrier()

    def send_block(self, phase, peer, offset, block, _pieces):
        yield from self.wins[phase].put(block.view(np.uint8).ravel(),
                                        peer, offset)

    def end_phase(self, phase, group, shape, _pieces):
        win = self.wins[phase]
        yield from win.flush_all()
        yield from self.ctx.coll.barrier()
        return win.local_view(np.uint8).view(_COMPLEX).reshape(shape).copy()


class _UpcComm:
    """UPC slab engine: deferred memputs, upc_fence + barrier to close."""

    def __init__(self, ctx, arr2, arr3) -> None:
        self.ctx = ctx
        self.arrs = {1: arr2, 2: arr3}

    def begin_phase(self, phase, group, nbytes):
        yield from self.ctx.upc.barrier()

    def send_block(self, phase, peer, offset, block, _pieces):
        yield from self.ctx.upc.memput_nb(self.arrs[phase], peer, offset,
                                          block.view(np.uint8).ravel())

    def end_phase(self, phase, group, shape, _pieces):
        yield from self.ctx.upc.fence()
        yield from self.ctx.upc.barrier()
        arr = self.arrs[phase]
        return arr.local_view(np.uint8).view(_COMPLEX).reshape(shape).copy()


class _MpiComm:
    """The 'nonblocking MPI' baseline: chunks are accumulated locally and
    all blocks are exchanged at the end of the phase (no overlap)."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx

    def begin_phase(self, phase, group, nbytes):
        yield from self.ctx.coll.barrier()

    def send_block(self, phase, peer, offset, block, pieces):
        # Defer: coalesce this chunk into the per-peer staging buffer.
        pieces.setdefault(peer, []).append((offset, block))
        return
        yield  # pragma: no cover - generator protocol

    def end_phase(self, phase, group, shape, pieces):
        ctx = self.ctx
        out = np.zeros(shape, dtype=_COMPLEX)
        flat = out.view(np.uint8).ravel()
        reqs = []
        for peer, blocks in pieces.items():
            payload = [(off, b.copy()) for off, b in blocks]
            r = yield from ctx.mpi.isend(
                peer, payload, tag=90 + phase, channel="fft",
                nbytes=sum(b.nbytes for _o, b in blocks))
            reqs.append(r)
        for _ in range(len(pieces)):
            got = yield from ctx.mpi.recv(tag=90 + phase, channel="fft")
            for off, block in got:
                raw = block.view(np.uint8).ravel()
                flat[off:off + raw.size] = raw
        for r in reqs:
            yield from r.wait()
        return out
