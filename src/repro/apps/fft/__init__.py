"""3-D FFT with 2-D (pencil) decomposition (paper Section 4.3, Figure 7c).

Three variants of the NAS-FT-style transform:

* ``mpi1``        -- the "nonblocking MPI" baseline: compute every local
  FFT, then exchange all transpose blocks at once with isend/irecv;
* ``rma_overlap`` -- the "UPC slab" schedule over foMPI: as soon as a slab
  of lines is transformed, its transpose blocks are put into the peers'
  windows, overlapping the remaining computation; completion is deferred
  to a single flush + fence ("completes the communication as late as
  possible");
* ``upc_overlap`` -- the same schedule through the UPC layer.

The transform is numerically real (numpy FFTs, verified against
``np.fft.fftn``); *time* is charged from a flop model so the simulated
compute/communication ratio can be set to match the paper's scale.
"""

from repro.apps.fft.parallel import FftSpec, fft_program, gather_result
from repro.apps.fft.decomposition import ProcessGrid

__all__ = ["FftSpec", "ProcessGrid", "fft_program", "gather_result"]
