"""Application studies from the paper's Section 4.

* :mod:`repro.apps.hashtable` -- distributed hashtable (4.1, Figure 7a)
* :mod:`repro.apps.dsde`      -- dynamic sparse data exchange (4.2, Fig 7b)
* :mod:`repro.apps.fft`       -- 3-D FFT with overlap (4.3, Figure 7c)
* :mod:`repro.apps.milc`      -- MILC-like lattice CG proxy (4.4, Figure 8)

Each app ships the same protocol in multiple transports (MPI-1 message
passing, MPI-3 RMA, UPC where the paper compares one) so the benchmark
harness can regenerate the corresponding figure.
"""
