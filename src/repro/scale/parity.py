"""Scale parity: hybrid vs full-fidelity at overlapping sizes.

The hybrid mode's correctness claim is structural: at sizes the full
DES can execute, a hybrid run must reproduce the full run's
per-protocol message counts **exactly** -- the whole
``OpCounters.snapshot()`` dict (messages, bytes, per-kind counts,
per-rank maxima), compared as plain equality -- and satisfy the
O(log p) structural bounds at every size.  This module produces that
comparison as data: ``parity_case`` for one (workload, p, rpn) cell,
``parity_table`` for the sweep the CI ``scale-parity`` job runs and
uploads as an artifact.
"""

from __future__ import annotations

from typing import Any

from repro.config import MachineConfig, ScaleConfig, SimConfig
from repro.runtime.job import run_spmd
from repro.scale.hybrid import HybridResult, run_hybrid
from repro.scale.units import format_ranks
from repro.scale.workloads import WORKLOADS, full_program

__all__ = ["run_full", "parity_case", "parity_table"]


def run_full(workload: str, nranks: int, *, ranks_per_node: int = 1,
             sim: SimConfig | None = None):
    """Full-fidelity reference run of one canonical workload."""
    spec = WORKLOADS[workload]
    return run_spmd(full_program(workload), nranks,
                    machine=MachineConfig(ranks_per_node=ranks_per_node),
                    sim=sim or SimConfig(),
                    epochs=spec.epochs, nbytes=spec.nbytes)


def _stats_diff(full: dict, hybrid: dict) -> dict[str, Any]:
    """Keys where the two stats dicts disagree (empty == exact parity)."""
    diff: dict[str, Any] = {}
    for key in sorted(set(full) | set(hybrid)):
        fv, hv = full.get(key), hybrid.get(key)
        if fv != hv:
            diff[key] = {"full": fv, "hybrid": hv}
    return diff


def parity_case(workload: str, nranks: int, *, ranks_per_node: int = 1,
                scale: ScaleConfig | None = None,
                sim: SimConfig | None = None) -> dict[str, Any]:
    """One parity cell: run both modes, diff the stats dicts exactly."""
    full = run_full(workload, nranks, ranks_per_node=ranks_per_node,
                    sim=sim)
    hybrid = run_hybrid(workload, nranks, ranks_per_node=ranks_per_node,
                        scale=scale, sim=sim)
    diff = _stats_diff(full.stats, hybrid.stats)
    return {
        "workload": workload,
        "nranks": nranks,
        "ranks": format_ranks(nranks),
        "ranks_per_node": ranks_per_node,
        "sampled": len(hybrid.sample),
        "exact": not diff,
        "diff": diff,
        "messages": hybrid.stats.get("messages"),
        "by_kind": hybrid.stats.get("by_kind"),
        "bounds": hybrid.bounds,
        "full_sim_time_ns": full.sim_time_ns,
        "hybrid_sim_time_ns": hybrid.sim_time_ns,
    }


def parity_table(rank_counts: list[int], *, ranks_per_node: int = 1,
                 workloads: list[str] | None = None,
                 scale: ScaleConfig | None = None,
                 sim: SimConfig | None = None) -> dict[str, Any]:
    """The full parity sweep: every workload at every size.

    Returns a JSON-ready report with per-cell results and an overall
    ``ok`` verdict (every cell exact, every bound satisfied).
    """
    names = workloads or sorted(WORKLOADS)
    cases = [parity_case(w, p, ranks_per_node=ranks_per_node,
                         scale=scale, sim=sim)
             for w in names for p in rank_counts]
    ok = all(c["exact"] and c["bounds"]["max_remote_ops_ok"]
             for c in cases)
    return {
        "ok": ok,
        "ranks_per_node": ranks_per_node,
        "rank_counts": rank_counts,
        "workloads": names,
        "cases": cases,
    }


def hybrid_only_row(workload: str, nranks: int, *,
                    ranks_per_node: int = 1,
                    scale: ScaleConfig | None = None,
                    sim: SimConfig | None = None) -> dict[str, Any]:
    """A beyond-overlap row (no full-fidelity reference, bounds only)."""
    res: HybridResult = run_hybrid(workload, nranks,
                                   ranks_per_node=ranks_per_node,
                                   scale=scale, sim=sim)
    return {
        "workload": workload,
        "nranks": nranks,
        "ranks": format_ranks(nranks),
        "ranks_per_node": ranks_per_node,
        "sampled": len(res.sample),
        "messages": res.stats["messages"],
        "by_kind": res.stats["by_kind"],
        "bounds": res.bounds,
        "hybrid_sim_time_ns": res.sim_time_ns,
        "soa_nbytes": res.soa_nbytes,
    }
