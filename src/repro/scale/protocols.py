"""Vectorized protocol models + sampled-rank mirrors for the hybrid mode.

Each canonical workload (fence, pscw, lock, flush -- the paper's four
synchronization substrates) exists in three forms that must agree:

1. the **full-fidelity SPMD program** (:mod:`repro.scale.workloads`),
   run on the real runtime via ``run_spmd`` at overlapping sizes;
2. the **vectorized aggregate model** here, which replays the same
   protocol round by round over numpy vectors of all p ranks and feeds
   :class:`~repro.scale.soa.ScaleCounters` -- message counts are exact
   by construction;
3. the **sampled-rank DES program** here: a scalar mirror of the same
   protocol run as a real generator process on the DES kernel against
   the shared :class:`~repro.scale.soa.AggregateSoA`, charging the
   paper's measured cost models (:data:`~repro.models.params_fompi.
   PAPER_MODELS`) per operation.

The hybrid engine (:mod:`repro.scale.hybrid`) cross-checks (3) against
(2) per sampled rank and per kind; the parity layer
(:mod:`repro.scale.parity`) checks (2) against (1) as whole-stats dict
equality.

Message-count ground truth (derived from the runtime sources, asserted
by ``tests/scale`` and the CI scale-parity job):

* ``win_allocate`` = bcast(8 B) + allreduce(8 B) + barrier, one control
  block of ``CTRL_WORDS_BASE + ring + 8`` words per rank;
* ``fence`` = one dissemination barrier (mfence/gsync are message-free);
* ``put`` = one ``put`` (inter-node) or ``xpmem-store`` (intra-node)
  per chunk -- 8 B payloads are single-chunk;
* PSCW ``post``/``complete`` = one ``amo:custom``/``amo:add`` per
  *inter-node* group member (same-node appends are CPU atomics with no
  counted message); ``start``/``wait`` are local;
* ``lock``/``unlock`` (shared) = one AMO each on the target's word,
  ``cpu-amo:add`` intra-node; ``lock_all``/``unlock_all`` = one AMO
  each on the master's global word; ``flush`` is message-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.models.params_fompi import PAPER_MODELS
from repro.rma.params import FompiParams
from repro.rma.window import CTRL_WORDS_BASE
from repro.scale import collmodel
from repro.scale.soa import AggregateSoA, ScaleCounters, ScaleTopology

__all__ = ["WorkloadSpec", "model_counts", "model_time_ns",
           "phase_times_ns", "sampled_program", "preapply_aggregates",
           "check_invariants", "olog_bounds", "ctrl_words_per_rank"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one canonical scale workload."""

    name: str
    epochs: int = 2
    nbytes: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs={self.epochs} must be >= 1")
        if not 1 <= self.nbytes <= 4096:
            raise ValueError(f"nbytes={self.nbytes} outside [1, 4096]")


def ctrl_words_per_rank(params: FompiParams | None = None) -> int:
    """Control words win_allocate charges per rank (mirrors _make_ctrl)."""
    params = params or FompiParams()
    return (CTRL_WORDS_BASE + params.pscw_ring_capacity
            + params.user_ctrl_words)


# ---------------------------------------------------------------------------
# Cost model (simulated time): the paper's measured constants.
# ---------------------------------------------------------------------------

def _t_fence_ns(p: int) -> int:
    """P_fence = 2.9 us * log2(p): one fence/barrier phase."""
    return int(round(PAPER_MODELS["fence"](p=max(2, p))))


def _t_alloc_ns(p: int) -> int:
    """win_allocate = bcast + allreduce + barrier, each an O(log p) phase."""
    return 3 * _t_fence_ns(p)


_T_INJECT = int(round(PAPER_MODELS["inject_inter"]()))
_T_POST = int(round(PAPER_MODELS["post"](k=1)))
_T_START = int(round(PAPER_MODELS["start"]()))
_T_COMPLETE = int(round(PAPER_MODELS["complete"](k=1)))
_T_WAIT = int(round(PAPER_MODELS["wait"]()))
_T_LOCK_SHRD = int(round(PAPER_MODELS["lock_shrd"]()))
_T_LOCK_ALL = int(round(PAPER_MODELS["lock_all"]()))
_T_UNLOCK = int(round(PAPER_MODELS["unlock"]()))
_T_FLUSH = int(round(PAPER_MODELS["flush"]()))


def _t_put_ns(nbytes: int) -> int:
    return int(round(PAPER_MODELS["put"](s=nbytes)))


def phase_times_ns(spec: WorkloadSpec, p: int) -> list[tuple[str, int]]:
    """Ordered (phase, duration_ns) schedule every rank follows."""
    name, e = spec.name, spec.epochs
    phases: list[tuple[str, int]] = [("win_allocate", _t_alloc_ns(p))]
    if name == "fence":
        phases.append(("fence", _t_fence_ns(p)))
        for _ in range(e):
            phases.append(("put", _T_INJECT))
            phases.append(("fence", _t_fence_ns(p)))
    elif name == "pscw":
        for _ in range(e):
            phases.append(("post", _T_POST))
            phases.append(("start", _T_START))
            phases.append(("put", _T_INJECT))
            phases.append(("complete", _T_COMPLETE))
            phases.append(("wait", _T_WAIT))
    elif name == "lock":
        for _ in range(e):
            phases.append(("lock", _T_LOCK_SHRD))
            phases.append(("put", _T_INJECT))
            phases.append(("unlock", _T_UNLOCK))
    elif name == "flush":
        phases.append(("lock_all", _T_LOCK_ALL))
        for _ in range(e):
            phases.append(("put", _t_put_ns(spec.nbytes)))
            phases.append(("flush", _T_FLUSH))
        phases.append(("unlock_all", _T_UNLOCK))
    else:
        raise ValueError(f"unknown scale workload {name!r}")
    return phases


def model_time_ns(spec: WorkloadSpec, p: int) -> int:
    """Hybrid simulated completion time (all ranks run in lockstep)."""
    return sum(dur for _name, dur in phase_times_ns(spec, p))


# ---------------------------------------------------------------------------
# Vectorized message counting (exact parity with the full runtime).
# ---------------------------------------------------------------------------

def _count_put_shift1(counters: ScaleCounters, topo: ScaleTopology,
                      nbytes: int) -> None:
    """Every rank puts ``nbytes`` to its right neighbor (single chunk)."""
    p = topo.nranks
    dst = (topo.ranks + 1) % p
    intra = topo.node[topo.ranks] == topo.node[dst]
    n_intra = int(np.count_nonzero(intra))
    if n_intra:
        counters.add("xpmem-store", topo.ranks[intra], nbytes)
    if n_intra < p:
        counters.add("put", topo.ranks[~intra], nbytes)


def _count_amo_shift(counters: ScaleCounters, topo: ScaleTopology,
                     shift: int, kind_inter: str,
                     kind_intra: str | None) -> None:
    """Every rank AMOs the word of rank ``(r + shift) % p``.

    ``kind_intra=None`` models the PSCW CPU-atomic path, which mutates
    the neighbor's list directly without a counted message.
    """
    p = topo.nranks
    dst = (topo.ranks + shift) % p
    intra = topo.node[topo.ranks] == topo.node[dst]
    n_intra = int(np.count_nonzero(intra))
    if n_intra and kind_intra is not None:
        counters.add(kind_intra, topo.ranks[intra], 8)
    if n_intra < p:
        counters.add(kind_inter, topo.ranks[~intra], 8)


def _count_amo_master(counters: ScaleCounters, topo: ScaleTopology) -> None:
    """Every rank AMOs the master's (rank 0) global lock word."""
    intra = topo.node == topo.node[0]
    n_intra = int(np.count_nonzero(intra))
    if n_intra:
        counters.add("cpu-amo:add", topo.ranks[intra], 8)
    if n_intra < topo.nranks:
        counters.add("amo:add", topo.ranks[~intra], 8)


def _count_win_allocate(counters: ScaleCounters, topo: ScaleTopology) -> None:
    collmodel.bcast(counters, topo, 8)
    collmodel.allreduce(counters, topo, 8)
    counters.add_control_memory_all(ctrl_words_per_rank())
    collmodel.barrier(counters, topo)


def model_counts(spec: WorkloadSpec, counters: ScaleCounters,
                 topo: ScaleTopology) -> None:
    """Feed the exact full-fidelity message counts for one workload."""
    name, e = spec.name, spec.epochs
    _count_win_allocate(counters, topo)
    if name == "fence":
        collmodel.barrier(counters, topo)
        for _ in range(e):
            _count_put_shift1(counters, topo, spec.nbytes)
            collmodel.barrier(counters, topo)
    elif name == "pscw":
        p = topo.nranks
        for _ in range(e):
            _count_amo_shift(counters, topo, p - 1, "amo:custom", None)
            _count_put_shift1(counters, topo, spec.nbytes)
            _count_amo_shift(counters, topo, 1, "amo:add", None)
    elif name == "lock":
        for _ in range(e):
            _count_amo_shift(counters, topo, 1, "amo:add", "cpu-amo:add")
            _count_put_shift1(counters, topo, spec.nbytes)
            _count_amo_shift(counters, topo, 1, "amo:add", "cpu-amo:add")
    elif name == "flush":
        _count_amo_master(counters, topo)
        for _ in range(e):
            _count_put_shift1(counters, topo, spec.nbytes)
        _count_amo_master(counters, topo)
    else:
        raise ValueError(f"unknown scale workload {name!r}")


# ---------------------------------------------------------------------------
# Scalar per-rank mirrors of the collectives (for sampled DES ranks).
# ---------------------------------------------------------------------------

def _rank_barrier_sends(rank: int, p: int):
    for step in range(collmodel.ceil_log2(p)):
        yield (rank + (1 << step)) % p


def _rank_bcast_sends(rank: int, p: int):
    m = 1
    while m < p:
        if rank % (2 * m) == 0 and rank + m < p:
            yield rank + m
        m <<= 1


def _rank_allreduce_sends(rank: int, p: int):
    if p == 1:
        return
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    if rank < 2 * rem and rank % 2 == 0:
        yield rank + 1
        return
    newrank = rank // 2 if rank < 2 * rem else rank - rem
    mask = 1
    while mask < pof2:
        partner_new = newrank ^ mask
        yield (partner_new * 2 + 1 if partner_new < rem
               else partner_new + rem)
        mask <<= 1
    if rank < 2 * rem and rank % 2 == 1:
        yield rank - 1


# ---------------------------------------------------------------------------
# Sampled-rank DES programs.
# ---------------------------------------------------------------------------

class SampledRank:
    """One sampled rank's protocol context over the shared SoA.

    ``issued`` records every counted message the rank's DES process
    issues, by kind -- the hybrid engine diffs it against the
    vectorized model's per-rank expectations after the run.
    """

    def __init__(self, env, soa: AggregateSoA, rank: int) -> None:
        self.env = env
        self.soa = soa
        self.topo = soa.topo
        self.rank = rank
        p = self.topo.nranks
        self.left = (rank - 1) % p
        self.right = (rank + 1) % p
        self.issued: dict[str, int] = {}
        self.waited_done = 0

    def charge(self, ns: int):
        # Every phase is real protocol progress; keep the livelock
        # watchdog (a pure observer) satisfied on long sampled runs.
        self.env.note_progress()
        return self.env.timeout(int(ns))

    def issue(self, kind: str) -> None:
        self.issued[kind] = self.issued.get(kind, 0) + 1

    def intra(self, other: int) -> bool:
        return self.topo.node_of(self.rank) == self.topo.node_of(other)

    def issue_send(self, dst: int) -> None:
        self.issue("mpi1-intra" if self.intra(dst) else "mpi1-inter")

    def issue_put(self, dst: int) -> None:
        self.issue("xpmem-store" if self.intra(dst) else "put")

    def issue_amo(self, dst: int, op: str = "add") -> None:
        self.issue(f"cpu-amo:{op}" if self.intra(dst) else f"amo:{op}")

    # -- protocol phases (each mutates state, then lets time pass) ------
    def coll_barrier(self) -> None:
        p = self.topo.nranks
        for dst in _rank_barrier_sends(self.rank, p):
            self.issue_send(dst)

    def win_allocate(self) -> None:
        p = self.topo.nranks
        for dst in _rank_bcast_sends(self.rank, p):
            self.issue_send(dst)
        for dst in _rank_allreduce_sends(self.rank, p):
            self.issue_send(dst)
        self.coll_barrier()

    def fence(self) -> None:
        self.coll_barrier()
        self.soa.fence_close(self.rank)

    def put_right(self) -> None:
        self.issue_put(self.right)

    def lock_shared_right(self) -> None:
        self.soa.lock_acquire_shared(self.right)
        self.issue_amo(self.right)

    def unlock_right(self) -> None:
        self.soa.lock_release_shared(self.right)
        self.issue_amo(self.right)

    def lock_all(self) -> None:
        from repro.rma.locks import GLOBAL_SHARED_UNIT
        self.soa.global_lock += GLOBAL_SHARED_UNIT
        self.issue_amo(0)

    def unlock_all(self) -> None:
        from repro.rma.locks import GLOBAL_SHARED_UNIT
        self.soa.global_lock -= GLOBAL_SHARED_UNIT
        self.issue_amo(0)

    def pscw_post(self) -> None:
        # Announce to the access peer (left accesses us): append into its
        # local matching list; CPU atomic intra-node (no counted message).
        self.soa.pscw_post_to(self.left)
        if not self.intra(self.left):
            self.issue("amo:custom")

    def pscw_start(self) -> None:
        self.soa.pscw_start_consume(self.rank)

    def pscw_complete(self) -> None:
        self.soa.pscw_complete_to(self.right)
        if not self.intra(self.right):
            self.issue("amo:add")

    def pscw_wait(self) -> None:
        if self.soa.pscw_done[self.rank] - self.waited_done < 1:
            raise RuntimeError(
                f"hybrid PSCW model: wait() on rank {self.rank} saw no "
                "completion")
        self.waited_done += 1


def sampled_program(spec: WorkloadSpec, ctx: SampledRank):
    """Generator process for one sampled rank: the scalar protocol
    mirror, phase-for-phase in lockstep with :func:`phase_times_ns`.

    State is mutated *before* each phase's timeout and checked only
    after a later nonzero timeout, so all same-tick mutations across
    sampled ranks are visible before any rank's blocking check runs.
    """
    name, e = spec.name, spec.epochs
    ctx.win_allocate()
    yield ctx.charge(_t_alloc_ns(ctx.topo.nranks))
    if name == "fence":
        ctx.fence()
        yield ctx.charge(_t_fence_ns(ctx.topo.nranks))
        for _ in range(e):
            ctx.put_right()
            yield ctx.charge(_T_INJECT)
            ctx.fence()
            yield ctx.charge(_t_fence_ns(ctx.topo.nranks))
    elif name == "pscw":
        for _ in range(e):
            ctx.pscw_post()
            yield ctx.charge(_T_POST)
            ctx.pscw_start()
            yield ctx.charge(_T_START)
            ctx.put_right()
            yield ctx.charge(_T_INJECT)
            ctx.pscw_complete()
            yield ctx.charge(_T_COMPLETE)
            ctx.pscw_wait()
            yield ctx.charge(_T_WAIT)
    elif name == "lock":
        for _ in range(e):
            ctx.lock_shared_right()
            yield ctx.charge(_T_LOCK_SHRD)
            ctx.put_right()
            yield ctx.charge(_T_INJECT)
            ctx.unlock_right()
            yield ctx.charge(_T_UNLOCK)
    elif name == "flush":
        ctx.lock_all()
        yield ctx.charge(_T_LOCK_ALL)
        for _ in range(e):
            ctx.put_right()
            yield ctx.charge(_t_put_ns(spec.nbytes))
            yield ctx.charge(_T_FLUSH)
        ctx.unlock_all()
        yield ctx.charge(_T_UNLOCK)
    else:
        raise ValueError(f"unknown scale workload {name!r}")
    return ctx.rank


# ---------------------------------------------------------------------------
# Aggregate pre-application + end-of-run invariants.
# ---------------------------------------------------------------------------

def preapply_aggregates(spec: WorkloadSpec, soa: AggregateSoA,
                        sampled_mask: np.ndarray) -> None:
    """Apply the aggregate ranks' state effects vectorized.

    The canonical workloads are contention-free by construction (shared
    locks only, one PSCW poster/completer per rank, uniform fence
    epochs), so aggregate effects commute with the sampled DES
    processes and can be applied up front.  Shared-lock traffic between
    aggregate ranks is a net no-op on the lock words (acquire+release
    cancel within each iteration) and is therefore not materialized;
    lock_all registrations *are* held across the epoch and are released
    by :func:`release_aggregates` after the DES drains.
    """
    agg = ~sampled_mask
    e = spec.epochs
    p = soa.topo.nranks
    if spec.name == "fence":
        soa.fence_epoch[agg] += e + 1
    elif spec.name == "pscw":
        agg_ranks = soa.topo.ranks[agg]
        # posts land in the left neighbor's list; completes in the
        # right neighbor's counter; starts consume the rank's own list.
        np.add.at(soa.pscw_posted, (agg_ranks - 1) % p, e)
        np.add.at(soa.pscw_done, (agg_ranks + 1) % p, e)
        soa.pscw_consumed[agg] += e
    elif spec.name == "flush":
        from repro.rma.locks import GLOBAL_SHARED_UNIT
        soa.global_lock += GLOBAL_SHARED_UNIT * int(np.count_nonzero(agg))


def release_aggregates(spec: WorkloadSpec, soa: AggregateSoA,
                       sampled_mask: np.ndarray) -> None:
    """Undo the held aggregate registrations after the epoch closes."""
    if spec.name == "flush":
        from repro.rma.locks import GLOBAL_SHARED_UNIT
        agg = int(np.count_nonzero(~sampled_mask))
        soa.global_lock -= GLOBAL_SHARED_UNIT * agg


def check_invariants(spec: WorkloadSpec, soa: AggregateSoA) -> list[str]:
    """End-of-run state invariants across sampled + aggregate tiers."""
    bad: list[str] = []
    e = spec.epochs
    if spec.name == "fence":
        if not bool(np.all(soa.fence_epoch == e + 1)):
            bad.append("fence epoch counters not uniform at epochs+1")
    elif spec.name == "pscw":
        if not bool(np.all(soa.pscw_posted == e)):
            bad.append("PSCW matching lists did not receive epochs posts")
        if not bool(np.all(soa.pscw_consumed == soa.pscw_posted)):
            bad.append("PSCW matching lists not fully consumed")
        if not bool(np.all(soa.pscw_done == e)):
            bad.append("PSCW completion counters not at epochs")
    elif spec.name in ("lock", "flush"):
        if not bool(np.all(soa.lock_word == 0)):
            bad.append("lock words not released")
        if soa.global_lock != 0:
            bad.append("global lock word not released")
    return bad


# ---------------------------------------------------------------------------
# O(log p) structural bounds.
# ---------------------------------------------------------------------------

def olog_bounds(spec: WorkloadSpec, p: int,
                counters: ScaleCounters) -> dict:
    """Structural O(log p)/O(k) bounds the hybrid run must satisfy.

    ``max_remote_ops`` is checked against an explicit per-rank budget
    derived from the protocol structure: every rank participates in a
    bounded number of O(log p) collective phases plus O(1) ops per
    epoch, so the per-rank message count is O(log p) -- the paper's
    scalability claim, asserted on *counted* operations.
    """
    logp = collmodel.ceil_log2(p)
    e = spec.epochs
    barriers = {"fence": 2 + e, "pscw": 1, "lock": 1, "flush": 1}[spec.name]
    # win_allocate adds one bcast send + <= log2(pof2)+2 allreduce sends.
    # win_allocate: bcast root sends log p messages, an allreduce
    # participant sends log2(pof2) + 1 (fold or foldback) at most.
    coll_extra = 2 * logp + 2
    per_epoch = {"fence": 1, "pscw": 3, "lock": 3, "flush": 1}[spec.name]
    fixed = 2 if spec.name == "flush" else 0
    budget = barriers * max(1, logp) + coll_extra + e * per_epoch + fixed
    max_ops = int(counters.remote_ops.max(initial=0))
    return {
        "log2p": logp,
        "fence_rounds": logp,
        "notify_fanout_rounds": logp,
        "lock_remote_amos_per_acquire": 1,
        "pscw_msgs_per_epoch_per_rank": 3,
        "max_remote_ops": max_ops,
        "max_remote_ops_budget": budget,
        "max_remote_ops_ok": max_ops <= budget,
        "control_words_per_rank": int(counters.control_memory.max(initial=0)),
    }


def olog_violations(spec: WorkloadSpec, p: int,
                    counters: ScaleCounters) -> list[str]:
    bounds = olog_bounds(spec, p, counters)
    bad: list[str] = []
    if not bounds["max_remote_ops_ok"]:
        bad.append(
            f"{spec.name}@p={p}: max per-rank ops {bounds['max_remote_ops']}"
            f" exceeds O(log p) budget {bounds['max_remote_ops_budget']}")
    ctrl = bounds["control_words_per_rank"]
    if ctrl > ctrl_words_per_rank():
        bad.append(f"{spec.name}@p={p}: control memory {ctrl} words/rank "
                   f"exceeds O(1) budget {ctrl_words_per_rank()}")
    if math.log2(max(2, p)) < bounds["log2p"] - 1:
        bad.append("inconsistent log2p bound")  # pragma: no cover
    return bad
