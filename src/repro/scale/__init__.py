"""Hybrid million-rank scale mode (ROADMAP item 1).

The paper runs foMPI at up to 524,288 processes; the DES executes real
protocol code only up to thousands of ranks.  This package closes the
gap with a *hybrid* execution mode: a sampled subset of ranks runs
protocol-faithful generator code on the DES kernel while the remaining
ranks are folded into vectorized aggregate state (numpy
structure-of-arrays for lock words, epoch counters and PSCW matching
queues), evaluated against the same calibrated cost models
(:mod:`repro.models.params_fompi`).

Validation is structural, not vibes: the vectorized models mirror the
full runtime's collective and protocol algorithms *round by round*, so
at overlapping sizes a hybrid run reproduces the full-fidelity run's
per-protocol message counts **exactly** (``tests/scale``, the CI
``scale-parity`` job, and ``repro scale parity``), and its O(log p)
bounds (fence rounds, lock-acquire AMOs, notification fan-out) are
asserted at every size up to 1Mi ranks.
"""

from repro.scale.hybrid import HybridParityError, HybridResult, run_hybrid
from repro.scale.parity import parity_case, parity_table, run_full
from repro.scale.units import format_ranks, parse_ranks
from repro.scale.workloads import WORKLOADS

__all__ = [
    "HybridParityError",
    "HybridResult",
    "WORKLOADS",
    "format_ranks",
    "parity_case",
    "parity_table",
    "parse_ranks",
    "run_full",
    "run_hybrid",
]
