"""Paper-scale extensions of Figure 7a and Figure 8 via the hybrid mode.

The full-fidelity sweeps (``benchmarks/bench_fig7_apps.py``,
``bench_fig8_milc.py``) stop where per-rank DES execution stops being
CI-viable (p = 512 / 128).  The paper's headline curves run to 512Ki
processes; this module extends both figures there (and to 1Mi) using
the hybrid engine:

* the O(log p) synchronization terms are *measured on the hybrid DES*
  (two fence-workload runs per size, differenced to isolate the
  per-epoch cost) -- every such run carries the engine's built-in
  tier-parity and O(log p) bound checks, so a figure point at 1Mi is
  backed by the same structural validation as a parity cell at 256;
* the per-variant constants are calibrated once, at the overlap size,
  against the *committed* full-fidelity anchor values -- the hybrid
  curve passes through the full-fidelity curve by construction, and
  the extension's shape comes entirely from the protocol cost models.

The curve-shape claims preserved (asserted by the hybrid bench tests):
Figure 7a's foMPI/UPC near-linear aggregate insert rate vs MPI-1's
flat-to-declining rate ("the insert rate of a single node cannot be
achieved..."), Figure 8's 5-15% full-application improvement band with
UPC and foMPI essentially identical.
"""

from __future__ import annotations

import math

from repro.bench import Series
from repro.scale.hybrid import run_hybrid
from repro.scale.protocols import WorkloadSpec

__all__ = ["FIG7A_ANCHOR_P", "FIG7A_ANCHORS", "FIG8_ANCHOR_P",
           "FIG8_ANCHORS", "HT_PS_HYBRID", "MILC_PS_HYBRID",
           "fig7a_hybrid_series", "fig8_hybrid_series"]

# Committed full-fidelity values at the largest overlap sizes
# (benchmarks/results/fig7a.json / fig8.json); the hybrid curves are
# pinned to these, so any drift in the full pipeline shows up as a
# continuity break in the extended figures.
FIG7A_ANCHOR_P = 512
FIG7A_ANCHORS = {"fompi": 80.932, "upc": 66.981, "mpi1": 17.373}
FIG7A_MPI1_PREV = (128, 20.421)   # second anchor fixes mpi1's decline

FIG8_ANCHOR_P = 128
FIG8_ANCHORS = {"mpi1": 3.747, "fompi": 3.611, "upc": 3.609}

HT_PS_HYBRID = [512, 4096, 65536, 524288, 1048576]
MILC_PS_HYBRID = [128, 1024, 8192, 65536, 524288, 1048576]

INSERTS_PER_RANK = 64             # matches the full-fidelity fig7a sweep
MILC_SYNCS_PER_SOLVE = 50         # 25 CG iterations x 2 reductions
MILC_MPI1_SYNC_FACTOR = 1.3       # two-sided progress overhead per sync


def _insert_loop_ns(p: int, ranks_per_node: int) -> int:
    """Hybrid-measured time for the passive-target insert loop.

    One shared-lock / put / unlock iteration per insert -- the protocol
    skeleton of the hashtable's remote insert -- run on the hybrid
    engine (bounds-checked at every size).
    """
    spec = WorkloadSpec("lock", epochs=INSERTS_PER_RANK)
    return run_hybrid(spec, p, ranks_per_node=ranks_per_node).sim_time_ns


def _sync_epoch_ns(p: int, ranks_per_node: int) -> int:
    """Hybrid-measured cost of one global sync epoch (put + fence).

    Two fence-workload runs differenced: epoch count 3 minus epoch
    count 1, halved -- window allocation and the opening fence cancel,
    leaving exactly the per-epoch inject + O(log p) fence term.
    """
    r1 = run_hybrid(WorkloadSpec("fence", epochs=1), p,
                    ranks_per_node=ranks_per_node)
    r3 = run_hybrid(WorkloadSpec("fence", epochs=3), p,
                    ranks_per_node=ranks_per_node)
    return (r3.sim_time_ns - r1.sim_time_ns) // 2


def fig7a_hybrid_series(rank_counts: list[int] | None = None, *,
                        ranks_per_node: int = 32) -> list[Series]:
    """Figure 7a extended to paper scale: hashtable Minserts/s.

    foMPI/UPC aggregate rate = p * inserts / hybrid insert-loop time,
    calibrated at the overlap anchor (the calibration constant absorbs
    the hashing compute and collision handling the protocol skeleton
    does not model).  MPI-1 follows the committed decline fitted
    through its two largest full-fidelity anchors.
    """
    ps = rank_counts or HT_PS_HYBRID
    anchor_loop = _insert_loop_ns(FIG7A_ANCHOR_P, ranks_per_node)

    def raw_rate(p: int, loop_ns: int) -> float:
        return p * INSERTS_PER_RANK / (loop_ns * 1e-9) / 1e6

    cal = {label: FIG7A_ANCHORS[label] /
           raw_rate(FIG7A_ANCHOR_P, anchor_loop)
           for label in ("fompi", "upc")}
    # mpi1: rate = A / (1 + B log2 p) through the two committed anchors.
    p0, r0 = FIG7A_MPI1_PREV
    p1, r1 = FIG7A_ANCHOR_P, FIG7A_ANCHORS["mpi1"]
    l0, l1 = math.log2(p0), math.log2(p1)
    b = (r0 - r1) / (r1 * l1 - r0 * l0)
    a = r1 * (1 + b * l1)

    series = []
    for label in ("fompi", "upc", "mpi1"):
        series.append(Series(label=label, meta={
            "unit": "Minserts/s", "mode": "hybrid",
            "inserts_per_rank": INSERTS_PER_RANK,
            "anchor_p": FIG7A_ANCHOR_P,
            "anchor": FIG7A_ANCHORS[label]}))
    by = {s.label: s for s in series}
    for p in ps:
        loop_ns = _insert_loop_ns(p, ranks_per_node)
        for label in ("fompi", "upc"):
            by[label].add(p, round(cal[label] * raw_rate(p, loop_ns), 3))
        by["mpi1"].add(p, round(a / (1 + b * math.log2(p)), 3))
    return series


def fig8_hybrid_series(rank_counts: list[int] | None = None, *,
                       ranks_per_node: int = 32) -> list[Series]:
    """Figure 8 extended to paper scale: MILC solve time [ms].

    Weak scaling: per-rank compute and halo volume are constant, so the
    solve time grows only by the O(log p) global-reduction term --
    measured on the hybrid engine and added to the committed anchor.
    MPI-1 pays a constant factor more per sync (two-sided progress);
    foMPI and UPC stay essentially identical, preserving the paper's
    improvement band.
    """
    ps = rank_counts or MILC_PS_HYBRID
    anchor_sync = _sync_epoch_ns(FIG8_ANCHOR_P, ranks_per_node)
    factors = {"mpi1": MILC_MPI1_SYNC_FACTOR, "fompi": 1.0, "upc": 1.0}

    series = []
    for label in ("mpi1", "fompi", "upc"):
        series.append(Series(label=label, meta={
            "unit": "ms (simulated)", "mode": "hybrid",
            "anchor_p": FIG8_ANCHOR_P, "anchor": FIG8_ANCHORS[label],
            "syncs_per_solve": MILC_SYNCS_PER_SOLVE}))
    by = {s.label: s for s in series}
    for p in ps:
        extra_ns = ((_sync_epoch_ns(p, ranks_per_node) - anchor_sync)
                    * MILC_SYNCS_PER_SOLVE)
        for label, factor in factors.items():
            ms = FIG8_ANCHORS[label] + factor * extra_ns * 1e-6
            by[label].add(p, round(ms, 3))
    imp = Series(label="fompi improvement %",
                 meta={"mode": "derived"})
    for p, m, f in zip(ps, by["mpi1"].ys, by["fompi"].ys):
        imp.add(p, round(100 * (m - f) / m, 1))
    series.append(imp)
    return series
