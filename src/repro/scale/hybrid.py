"""The hybrid execution engine: sampled DES ranks + vectorized aggregates.

``run_hybrid`` is the scale-mode counterpart of
:func:`repro.runtime.job.run_spmd`.  It

1. draws a seeded, deterministic sample of ranks
   (:func:`repro.sim.random.stream` on the master seed -- same seed,
   same sample, bit-identical results);
2. builds the :class:`~repro.scale.soa.AggregateSoA` for *all* p ranks
   and pre-applies the aggregate tier's state effects vectorized;
3. runs the vectorized protocol model
   (:func:`repro.scale.protocols.model_counts`) to produce the exact
   full-fidelity message counts for all p ranks, recording per-rank
   expectations for the sample;
4. runs one real DES (:class:`repro.sim.kernel.Environment`) hosting a
   protocol-faithful generator process per sampled rank, each charging
   the paper's calibrated cost models and mutating the shared SoA;
5. cross-checks the two tiers: every sampled rank's issued message
   counts must equal the vectorized model's expectation *exactly*, the
   DES clock must land on the analytic completion time, and the
   end-of-run SoA invariants and O(log p) bounds must hold.

Any mismatch raises :class:`HybridParityError` -- the hybrid mode
refuses to return numbers its two tiers disagree on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ObsConfig, ScaleConfig, SimConfig
from repro.scale import protocols
from repro.scale.protocols import SampledRank, WorkloadSpec
from repro.scale.soa import AggregateSoA, ScaleCounters, ScaleTopology
from repro.scale.workloads import WORKLOADS
from repro.sim.kernel import Environment
from repro.sim.random import stream

__all__ = ["HybridParityError", "HybridResult", "run_hybrid",
           "sample_ranks"]


class HybridParityError(AssertionError):
    """The sampled-DES tier and the vectorized tier disagreed."""


@dataclass
class HybridResult:
    """Result of one hybrid run: the scale twin of ``RunResult``.

    ``stats`` has the exact shape of a full-fidelity run's ``stats``
    (``OpCounters.snapshot()``), so parity against ``run_spmd`` is plain
    dict equality.  ``bounds`` carries the O(log p) structural bounds
    the run was checked against, ``sample`` the sampled rank ids,
    ``soa_nbytes`` the aggregate-state footprint (the O(p)-words memory
    claim, asserted by the 1Mi smoke test).
    """

    workload: str
    nranks: int
    ranks_per_node: int
    sample: tuple[int, ...]
    sim_time_ns: int
    events_processed: int
    stats: dict = field(default_factory=dict)
    bounds: dict = field(default_factory=dict)
    soa_nbytes: int = 0
    obs: object | None = None

    @property
    def sample_fraction(self) -> float:
        return len(self.sample) / self.nranks


def sample_ranks(nranks: int, scale: ScaleConfig, seed: int) -> np.ndarray:
    """Deterministic seeded rank sample (sorted, unique).

    Rank 0 is always sampled (it is special: collective root, lock
    master), the rest are drawn without replacement from the master
    seed's ``"scale-sample"`` stream -- independent of every other
    consumer of the seed, stable across runs.
    """
    count = scale.sample_count(nranks)
    if count >= nranks:
        return np.arange(nranks, dtype=np.int64)
    rng = stream(seed, "scale-sample")
    rest = 1 + rng.choice(nranks - 1, size=count - 1, replace=False)
    picked = np.concatenate(([0], rest)).astype(np.int64)
    picked.sort()
    return picked


def _check_tier_parity(spec: WorkloadSpec, counters: ScaleCounters,
                       contexts: list[SampledRank]) -> None:
    """Issued-vs-expected per sampled rank, per kind -- exact."""
    for ctx in contexts:
        expected = counters.expected[ctx.rank]
        if ctx.issued != expected:
            missing = {k: v for k, v in expected.items()
                       if ctx.issued.get(k) != v}
            extra = {k: v for k, v in ctx.issued.items()
                     if expected.get(k) != v}
            raise HybridParityError(
                f"{spec.name}: sampled rank {ctx.rank} issued counts "
                f"diverge from the vectorized model; expected {missing}, "
                f"issued {extra}")


def run_hybrid(workload: str | WorkloadSpec, nranks: int, *,
               ranks_per_node: int = 1,
               scale: ScaleConfig | None = None,
               sim: SimConfig | None = None,
               obs: ObsConfig | None = None) -> HybridResult:
    """Run one canonical workload in hybrid scale mode.

    ``workload`` is a name from :data:`~repro.scale.workloads.WORKLOADS`
    or an explicit :class:`WorkloadSpec`.  ``nranks`` may be any size
    from 2 to millions; memory is O(p) machine words plus O(samples)
    Python objects.
    """
    spec = WORKLOADS[workload] if isinstance(workload, str) else workload
    if nranks < 2:
        raise ValueError("hybrid ring workloads need at least 2 ranks")
    scale = scale or ScaleConfig(enabled=True)
    sim = sim or SimConfig()
    obs_cfg = obs or ObsConfig()

    topo = ScaleTopology(nranks, ranks_per_node)
    sample = sample_ranks(nranks, scale, sim.seed)
    sampled_mask = np.zeros(nranks, dtype=bool)
    sampled_mask[sample] = True

    # Tier 1: vectorized protocol model -> exact counts for all p ranks.
    counters = ScaleCounters(nranks, tuple(int(r) for r in sample))
    protocols.model_counts(spec, counters, topo)

    # Tier 2: aggregate state effects, applied vectorized.
    soa = AggregateSoA(topo)
    protocols.preapply_aggregates(spec, soa, sampled_mask)

    # Tier 3: sampled ranks as real DES processes over the shared SoA.
    env = Environment(max_events=sim.max_events,
                      watchdog_interval=sim.watchdog_interval,
                      watchdog_stalls=sim.watchdog_stalls)
    instrumentation = None
    if obs_cfg.enabled:
        from repro.obs.core import Instrumentation
        instrumentation = Instrumentation(nranks,
                                          max_spans=obs_cfg.max_spans,
                                          nic_marks=False)
        instrumentation.meta.update(
            mode="hybrid", workload=spec.name, nranks=nranks,
            sampled=len(sample))
    contexts = [SampledRank(env, soa, int(r)) for r in sample]
    for ctx in contexts:
        env.process(protocols.sampled_program(spec, ctx),
                    name=f"scale-rank{ctx.rank}")
    env.run(fast=(sim.scheduler != "legacy"))

    # Tier parity: the DES must land exactly where the model says.
    expected_t = protocols.model_time_ns(spec, nranks)
    if env.now != expected_t:
        raise HybridParityError(
            f"{spec.name}@p={nranks}: DES clock {env.now} ns != analytic "
            f"completion time {expected_t} ns")
    _check_tier_parity(spec, counters, contexts)
    protocols.release_aggregates(spec, soa, sampled_mask)
    violations = protocols.check_invariants(spec, soa)
    violations += protocols.olog_violations(spec, nranks, counters)
    if violations:
        raise HybridParityError(
            f"{spec.name}@p={nranks}: " + "; ".join(violations))

    if instrumentation is not None:
        t = 0
        for phase, dur in protocols.phase_times_ns(spec, nranks):
            for ctx in contexts:
                instrumentation.rank_span(ctx.rank, f"scale.{phase}",
                                          t, t + dur, cat="scale")
            instrumentation.metrics.count(f"scale.{phase}", 0)
            t += dur
        instrumentation.metrics.gauge("scale.sampled_ranks", 0, len(sample))
        instrumentation.metrics.gauge("scale.soa_bytes", 0, soa.nbytes)

    return HybridResult(
        workload=spec.name,
        nranks=nranks,
        ranks_per_node=ranks_per_node,
        sample=tuple(int(r) for r in sample),
        sim_time_ns=env.now,
        events_processed=env.events_processed,
        stats=counters.snapshot(),
        bounds=protocols.olog_bounds(spec, nranks, counters),
        soa_nbytes=soa.nbytes,
        obs=instrumentation,
    )
