"""Vectorized round-by-round mirrors of the MPI-1 collectives.

Exact message-count parity with the full runtime cannot come from
closed-form formulas alone (non-powers-of-two fold, binomial-tree leaf
truncation, intra- vs inter-node classification); instead each function
here replays the *same algorithm* as :mod:`repro.runtime.collectives`,
round by round, with the per-round sender/receiver sets held as numpy
vectors over all p ranks.  Counts are then exact by construction: the
dissemination barrier issues ``p * ceil_log2(p)`` sends with the same
``(r + 2^step) % p`` destinations, the binomial bcast the same ``p - 1``
parent->child edges, the recursive-doubling allreduce the same
fold/sendrecv/foldback pattern -- and every send is classified
``mpi1-intra`` vs ``mpi1-inter`` with the block placement the real
:class:`~repro.machine.topology.RankMap` uses.
"""

from __future__ import annotations

import numpy as np

from repro.scale.soa import ScaleCounters, ScaleTopology

__all__ = ["ceil_log2", "barrier", "bcast", "allreduce", "count_sends"]


def ceil_log2(p: int) -> int:
    """Dissemination/binomial round count (same as collectives._ceil_log2)."""
    return max(1, (p - 1).bit_length()) if p > 1 else 0


def count_sends(counters: ScaleCounters, topo: ScaleTopology,
                src: np.ndarray, dst: np.ndarray, nbytes: int) -> None:
    """One point-to-point send per (src, dst) pair, intra/inter classified.

    ``src`` must be sorted and unique (every mirrored round satisfies
    this); boolean masking preserves sortedness for the counter's
    sampled-rank membership tests.
    """
    intra = topo.node[src] == topo.node[dst]
    n_intra = int(np.count_nonzero(intra))
    if n_intra:
        counters.add("mpi1-intra", src[intra], nbytes)
    if n_intra < src.shape[0]:
        counters.add("mpi1-inter", src[~intra], nbytes)


def barrier(counters: ScaleCounters, topo: ScaleTopology) -> int:
    """Dissemination barrier: every rank sends each round; returns rounds."""
    p = topo.nranks
    rounds = ceil_log2(p)
    for step in range(rounds):
        dst = (topo.ranks + (1 << step)) % p
        count_sends(counters, topo, topo.ranks, dst, 0)
    return rounds


def bcast(counters: ScaleCounters, topo: ScaleTopology, nbytes: int) -> None:
    """Binomial-tree broadcast from root 0: p - 1 sends total.

    Level ``m`` senders are the virtual ranks with ``vr % 2m == 0`` and
    ``vr + m < p`` (the root participates at every level) -- the exact
    send set of ``Collectives.bcast``'s descending-mask loop.
    """
    p = topo.nranks
    m = 1
    levels = []
    while m < p:
        levels.append(m)
        m <<= 1
    for m in levels:
        src = np.arange(0, p - m, 2 * m, dtype=np.int64)
        count_sends(counters, topo, src, src + m, nbytes)


def allreduce(counters: ScaleCounters, topo: ScaleTopology,
              nbytes: int) -> None:
    """Recursive-doubling allreduce with the non-power-of-two fold.

    Three phases exactly as ``Collectives.allreduce``: even ranks below
    ``2*rem`` fold into their odd neighbor, the ``pof2`` participants
    sendrecv for ``log2(pof2)`` rounds (a sendrecv counts one message,
    the send side -- ``recv`` is not a counted issue), and the folded
    ranks get the result pushed back.
    """
    p = topo.nranks
    if p == 1:
        return
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    if rem:
        fold_src = np.arange(0, 2 * rem, 2, dtype=np.int64)
        count_sends(counters, topo, fold_src, fold_src + 1, nbytes)
    newranks = np.arange(pof2, dtype=np.int64)
    real = np.where(newranks < rem, newranks * 2 + 1, newranks + rem)
    mask = 1
    while mask < pof2:
        partner_new = newranks ^ mask
        partner = np.where(partner_new < rem, partner_new * 2 + 1,
                           partner_new + rem)
        count_sends(counters, topo, real, partner, nbytes)
        mask <<= 1
    if rem:
        back_src = np.arange(1, 2 * rem, 2, dtype=np.int64)
        count_sends(counters, topo, back_src, back_src - 1, nbytes)
