"""Rank-count units: ``"512Ki"``-style strings for the scale CLI.

The paper quotes process counts in binary units (512Ki = 524,288 on
Blue Waters); the CLI, the benchmarks and the CI scale-parity job all
accept and print the same notation.
"""

from __future__ import annotations

__all__ = ["parse_ranks", "format_ranks", "parse_ranks_list"]

_SUFFIXES = {
    "": 1,
    "K": 1000,
    "M": 1000_000,
    "KI": 1 << 10,
    "MI": 1 << 20,
    "GI": 1 << 30,
}


def parse_ranks(text: str | int) -> int:
    """``"4096"`` -> 4096, ``"512Ki"`` -> 524288, ``"1Mi"`` -> 1048576."""
    if isinstance(text, int):
        n = text
    else:
        s = str(text).strip().upper()
        for suffix in sorted(_SUFFIXES, key=len, reverse=True):
            if suffix and s.endswith(suffix):
                digits = s[: -len(suffix)].strip()
                break
        else:
            digits, suffix = s, ""
        if not digits:
            raise ValueError(f"bad rank count {text!r}")
        try:
            n = int(digits) * _SUFFIXES[suffix]
        except ValueError:
            raise ValueError(f"bad rank count {text!r}") from None
    if n < 1:
        raise ValueError(f"rank count {text!r} must be >= 1")
    return n


def parse_ranks_list(text: str) -> list[int]:
    """Comma-separated rank counts: ``"256,1Ki,4Ki"`` -> [256, 1024, 4096]."""
    out = [parse_ranks(part) for part in text.split(",") if part.strip()]
    if not out:
        raise ValueError(f"no rank counts in {text!r}")
    return out


def format_ranks(n: int) -> str:
    """1048576 -> ``"1Mi"``; 4096 -> ``"4Ki"``; 192 -> ``"192"``."""
    for suffix, mult in (("Mi", 1 << 20), ("Ki", 1 << 10)):
        if n % mult == 0 and n >= mult:
            return f"{n // mult}{suffix}"
    return str(n)
