"""Aggregate rank state as numpy structure-of-arrays.

At 1Mi ranks the full runtime's one-object-per-rank state (address
spaces, registration tables, window control blocks) is unaffordable;
the hybrid mode folds every *aggregate* (non-sampled) rank into flat
int64 arrays: one lock word per rank, one fence-epoch counter, the PSCW
matching-queue depths.  Memory is O(p) machine words -- a few dozen MB
at 1Mi ranks -- instead of O(p) Python objects.

:class:`ScaleCounters` is the aggregate twin of
:class:`repro.sim.trace.OpCounters`: the vectorized protocol models
(:mod:`repro.scale.collmodel` / :mod:`repro.scale.protocols`) feed it
whole origin vectors per algorithm round, and its :meth:`snapshot`
returns the exact dict shape ``OpCounters.snapshot()`` produces, so
parity can be asserted as plain dict equality against a full-fidelity
:class:`~repro.config.RunResult`'s ``stats``.
"""

from __future__ import annotations

import numpy as np

from repro.rma.locks import WRITER_BIT

__all__ = ["AggregateSoA", "ScaleCounters", "ScaleTopology"]


class ScaleTopology:
    """Vectorized block placement: ``node[r] = r // ranks_per_node``.

    Mirrors :class:`repro.machine.topology.RankMap`'s default placement
    (consecutive ranks fill a node), precomputed as arrays so every
    algorithm round classifies intra- vs inter-node edges with one
    vector compare.
    """

    def __init__(self, nranks: int, ranks_per_node: int = 1) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        self.nranks = nranks
        self.ranks_per_node = ranks_per_node
        self.ranks = np.arange(nranks, dtype=np.int64)
        self.node = (self.ranks // ranks_per_node).astype(np.int32)

    def node_of(self, rank: int) -> int:
        return int(rank) // self.ranks_per_node

    def same_node(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return self.node[src] == self.node[dst]


class AggregateSoA:
    """Protocol state for *all* ranks as flat arrays.

    ``lock_word`` follows :mod:`repro.rma.locks`' local reader-writer
    word layout (``WRITER_BIT`` | shared count); ``global_lock`` is the
    master rank's two-halves word.  ``pscw_posted``/``pscw_consumed``
    count matching-list appends and ``start()`` consumptions per rank;
    ``pscw_done`` the completion-counter value.  ``fence_epoch`` counts
    closed fence epochs.  Sampled ranks mutate their entries from real
    DES processes; aggregate ranks' contributions are applied
    vectorized -- both sides land in the same arrays, which is what
    makes end-of-run invariant checks (balanced locks, fully consumed
    matching lists, uniform epoch counters) meaningful.
    """

    def __init__(self, topo: ScaleTopology) -> None:
        p = topo.nranks
        self.topo = topo
        # uint64: the word layout has WRITER_BIT at bit 63.
        self.lock_word = np.zeros(p, dtype=np.uint64)
        self.global_lock = 0
        self.pscw_posted = np.zeros(p, dtype=np.int64)
        self.pscw_consumed = np.zeros(p, dtype=np.int64)
        self.pscw_done = np.zeros(p, dtype=np.int64)
        self.fence_epoch = np.zeros(p, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        """Total aggregate-state footprint in bytes (arrays only)."""
        arrays = (self.lock_word, self.pscw_posted, self.pscw_consumed,
                  self.pscw_done, self.fence_epoch,
                  self.topo.ranks, self.topo.node)
        return int(sum(a.nbytes for a in arrays))

    # -- sampled-rank protocol operations (scalar, on the shared arrays) --
    def lock_acquire_shared(self, target: int) -> int:
        """Fetch-add the reader count; returns the old word (one AMO)."""
        old = int(self.lock_word[target])
        if old & WRITER_BIT:
            raise RuntimeError(
                f"hybrid lock model: unexpected writer on rank {target} "
                "(canonical workloads are contention-free by construction)")
        self.lock_word[target] = old + 1
        return old

    def lock_release_shared(self, target: int) -> None:
        self.lock_word[target] -= 1

    def pscw_post_to(self, target: int) -> None:
        self.pscw_posted[target] += 1

    def pscw_start_consume(self, rank: int, k: int = 1) -> None:
        avail = int(self.pscw_posted[rank] - self.pscw_consumed[rank])
        if avail < k:
            raise RuntimeError(
                f"hybrid PSCW model: start() on rank {rank} found "
                f"{avail} posts, needs {k}")
        self.pscw_consumed[rank] += k

    def pscw_complete_to(self, target: int) -> None:
        self.pscw_done[target] += 1

    def fence_close(self, rank: int) -> None:
        self.fence_epoch[rank] += 1


class ScaleCounters:
    """Vector-fed operation counters mirroring ``OpCounters``.

    ``add(kind, origins, nbytes_each)`` records one counted message per
    origin; ``origins`` is a sorted int64 array of unique issuing ranks
    (or ``None`` for "every rank once").  Alongside the totals, the
    counters accumulate the *expected per-rank per-kind counts* for the
    sampled ranks, which the hybrid engine cross-checks against what
    the sampled DES processes actually issued -- the internal parity
    gate between the two execution tiers.
    """

    def __init__(self, nranks: int, sample: tuple[int, ...] = ()) -> None:
        self.nranks = nranks
        self.by_kind: dict[str, int] = {}
        self.bytes_moved = 0
        self.messages = 0
        self.remote_ops = np.zeros(nranks, dtype=np.int64)
        self.control_memory = np.zeros(nranks, dtype=np.int64)
        self.sample = tuple(int(r) for r in sample)
        self.expected: dict[int, dict[str, int]] = {
            r: {} for r in self.sample}

    def add(self, kind: str, origins: np.ndarray | None,
            nbytes_each: int = 0) -> None:
        """Count one ``kind`` message from each origin rank."""
        if origins is None:
            n = self.nranks
            self.remote_ops += 1
            for r in self.sample:
                exp = self.expected[r]
                exp[kind] = exp.get(kind, 0) + 1
        else:
            n = int(origins.shape[0])
            if n == 0:
                return
            # Origins are unique per round in every mirrored algorithm,
            # so buffered fancy-index add is exact (and fast at 1Mi).
            self.remote_ops[origins] += 1
            for r in self.sample:
                # Sorted-origins membership test: O(log p) per sample.
                lo = int(np.searchsorted(origins, r, side="left"))
                hi = int(np.searchsorted(origins, r, side="right"))
                if hi > lo:
                    exp = self.expected[r]
                    exp[kind] = exp.get(kind, 0) + (hi - lo)
        self.by_kind[kind] = self.by_kind.get(kind, 0) + n
        self.messages += n
        self.bytes_moved += n * nbytes_each

    def add_control_memory_all(self, words: int) -> None:
        """Every rank allocates ``words`` control words (win ctrl block)."""
        self.control_memory += words

    def snapshot(self) -> dict:
        """Exact mirror of ``OpCounters.snapshot()``."""
        return {
            "messages": int(self.messages),
            "bytes_moved": int(self.bytes_moved),
            "max_remote_ops": int(self.remote_ops.max(initial=0)),
            "max_control_memory": int(self.control_memory.max(initial=0)),
            "by_kind": {k: int(v) for k, v in self.by_kind.items()},
        }
