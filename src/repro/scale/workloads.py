"""Canonical scale workloads: full-fidelity SPMD form + hybrid spec.

One workload per synchronization substrate the paper benchmarks
(Figure 6): active-target **fence**, generalized active-target **pscw**,
passive-target **lock**, and **flush** under a shared lock_all.  Each
exists as a module-level SPMD generator (picklable, runnable through
``run_spmd`` on the real runtime) and as a :class:`~repro.scale.
protocols.WorkloadSpec` driving the vectorized hybrid model -- the pair
is what the parity gate compares.

The shapes are contention-free ring patterns (every rank talks to its
neighbors), chosen so message counts are deterministic at any rank
count and the hybrid aggregate tier needs no conflict resolution:

* ``fence``  -- allocate; fence; epochs x (put 8 B right; fence)
* ``pscw``   -- allocate; epochs x (post [left]; start [right];
  put right; complete; wait)
* ``lock``   -- allocate; iters x (lock SHARED right; put; unlock)
* ``flush``  -- allocate; lock_all; iters x (put right; flush); unlock_all
"""

from __future__ import annotations

import numpy as np

from repro.rma.enums import LockType
from repro.scale.protocols import WorkloadSpec

__all__ = ["WORKLOADS", "WIN_BYTES", "full_program"]

WIN_BYTES = 4096

WORKLOADS: dict[str, WorkloadSpec] = {
    "fence": WorkloadSpec(
        "fence", epochs=2, nbytes=8,
        description="active-target fence epochs with ring puts"),
    "pscw": WorkloadSpec(
        "pscw", epochs=2, nbytes=8,
        description="generalized active target: post/start/complete/wait"),
    "lock": WorkloadSpec(
        "lock", epochs=2, nbytes=8,
        description="passive target: shared lock / put / unlock ring"),
    "flush": WorkloadSpec(
        "flush", epochs=2, nbytes=8,
        description="passive target: puts flushed under a shared lock_all"),
}


def _payload(ctx, nbytes: int) -> np.ndarray:
    return np.full(nbytes, ctx.rank % 127 + 1, dtype=np.uint8)


def _fence_program(ctx, epochs: int, nbytes: int):
    win = yield from ctx.rma.win_allocate(WIN_BYTES)
    right = (ctx.rank + 1) % ctx.nranks
    data = _payload(ctx, nbytes)
    yield from win.fence()
    for e in range(epochs):
        yield from win.put(data, right, 0)
        yield from win.fence(no_succeed=(e == epochs - 1))
    return ctx.now


def _pscw_program(ctx, epochs: int, nbytes: int):
    win = yield from ctx.rma.win_allocate(WIN_BYTES)
    left = (ctx.rank - 1) % ctx.nranks
    right = (ctx.rank + 1) % ctx.nranks
    data = _payload(ctx, nbytes)
    for _ in range(epochs):
        yield from win.post([left])
        yield from win.start([right])
        yield from win.put(data, right, 0)
        yield from win.complete()
        yield from win.wait()
    return ctx.now


def _lock_program(ctx, epochs: int, nbytes: int):
    win = yield from ctx.rma.win_allocate(WIN_BYTES)
    right = (ctx.rank + 1) % ctx.nranks
    data = _payload(ctx, nbytes)
    for _ in range(epochs):
        yield from win.lock(right, LockType.SHARED)
        yield from win.put(data, right, 0)
        yield from win.unlock(right)
    return ctx.now


def _flush_program(ctx, epochs: int, nbytes: int):
    win = yield from ctx.rma.win_allocate(WIN_BYTES)
    right = (ctx.rank + 1) % ctx.nranks
    data = _payload(ctx, nbytes)
    yield from win.lock_all()
    for _ in range(epochs):
        yield from win.put(data, right, 0)
        yield from win.flush(right)
    yield from win.unlock_all()
    return ctx.now


_PROGRAMS = {
    "fence": _fence_program,
    "pscw": _pscw_program,
    "lock": _lock_program,
    "flush": _flush_program,
}


def full_program(name: str):
    """Module-level SPMD program for ``name`` (for run_spmd / pools)."""
    try:
        return _PROGRAMS[name]
    except KeyError:
        raise ValueError(f"unknown scale workload {name!r}; "
                         f"have {sorted(WORKLOADS)}") from None
