"""SPMD runtime: world assembly, rank contexts, job launcher, collectives.

`run_spmd(program, nranks)` is the main entry point of the whole package:
it builds a simulated machine, spawns ``nranks`` copies of ``program`` (a
generator taking a :class:`~repro.runtime.process.RankContext`), runs the
simulation to completion and returns per-rank results plus counters.
"""

from repro.runtime.collectives import Collectives
from repro.runtime.job import Job, run_spmd
from repro.runtime.process import RankContext
from repro.runtime.world import World

__all__ = ["World", "RankContext", "Collectives", "Job", "run_spmd"]
