"""Collectives over the MPI-1 point-to-point layer.

foMPI itself needs only a handful of collectives (window creation uses
allgather/allreduce/bcast/barrier), and the DSDE study (Figure 7b) compares
alltoall, reduce_scatter, and the NBX nonblocking-barrier protocol.  All
algorithms are the standard O(log p) ones the paper assumes ("a good
barrier implementation"):

* barrier, ibarrier -- dissemination [Hoefler et al., PPoPP'10 for NBX]
* bcast            -- binomial tree
* allreduce        -- recursive doubling (with pre/post folding for
                      non-powers of two)
* allgather        -- recursive doubling (pow2) / ring (general)
* reduce_scatter   -- recursive halving (pow2) / allreduce-then-slice
* alltoall         -- pairwise exchange

Each call draws a fresh tag from a per-rank counter; MPI's ordering rules
(all ranks issue collectives in the same order) keep the counters aligned.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

import numpy as np

from repro.errors import FaultError, Mpi1Error

__all__ = ["Collectives", "IBarrier"]


def _ceil_log2(p: int) -> int:
    return max(1, (p - 1).bit_length()) if p > 1 else 0


def _collective(fn):
    """Fault-context wrapper: a :class:`FaultError` escaping a collective
    (a crashed or unreachable peer hit mid-algorithm) is annotated with
    the collective's name and participant set, so diagnostics name the
    operation rather than just the underlying point-to-point send.

    Doubling as the observability hook: every collective call opens one
    ``coll.<name>`` span on the calling rank's track (entry to return on
    the simulated clock; recording only, nothing scheduled)."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        obs = self.ctx.obs
        t0 = self.ctx.now if obs is not None else 0
        ck = self.ctx.checker
        seq = ck.coll_enter(self.ctx.rank) if ck is not None else 0
        try:
            result = yield from fn(self, *args, **kwargs)
        except FaultError as exc:
            exc.annotate_collective(name,
                                    tuple(range(self.ctx.nranks)))
            raise
        if obs is not None:
            obs.rank_span(self.ctx.rank, f"coll.{name}", t0,
                          self.ctx.now, cat="coll")
            obs.metrics.count(f"coll.{name}", self.ctx.rank)
        if ck is not None:
            ck.coll_exit(self.ctx.rank, seq)
        return result
    return wrapper


class IBarrier:
    """Handle for a nonblocking dissemination barrier."""

    def __init__(self, ctx, tag: int) -> None:
        self.ctx = ctx
        # Race checker: the ibarrier is a collective too -- deposit at
        # issue, acquire once at the first completion *observation*
        # (test() or wait()); before that, no happens-before edge exists
        # for this rank even if the child process finished already.
        ck = ctx.checker
        self._cseq = ck.coll_enter(ctx.rank) if ck is not None else None
        self._acquired = False
        self._proc = ctx.env.process(self._run(tag), name=f"ibarrier@{ctx.rank}")

    def _observe_completion(self) -> None:
        if self._acquired:
            return
        self._acquired = True
        if self._cseq is not None:
            self.ctx.checker.coll_exit(self.ctx.rank, self._cseq)

    def _run(self, tag: int):
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        try:
            for step in range(_ceil_log2(p)):
                dst = (r + (1 << step)) % p
                src = (r - (1 << step)) % p
                sreq = yield from ctx.mpi.isend(dst, None, tag=tag + step,
                                                channel="nbx", nbytes=0)
                yield from ctx.mpi.recv(src, tag=tag + step, channel="nbx")
                yield from sreq.wait()
        except FaultError as exc:
            exc.annotate_collective("ibarrier", tuple(range(p)))
            raise

    def test(self) -> bool:
        done = self._proc.triggered
        if done:
            self._observe_completion()
        return done

    def wait(self):
        if not self._proc.triggered:
            yield self._proc
        self._observe_completion()


class Collectives:
    """Collective operations bound to one rank's context."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self._tag = 0
        self._nbx_tag = 0

    def _next_tag(self, width: int = 64) -> int:
        """Reserve a tag range for one collective instance."""
        t = self._tag
        self._tag += width
        return t

    # ------------------------------------------------------------------
    @_collective
    def barrier(self):
        """Dissemination barrier: ceil(log2 p) rounds."""
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        tag = self._next_tag()
        for step in range(_ceil_log2(p)):
            dst = (r + (1 << step)) % p
            src = (r - (1 << step)) % p
            sreq = yield from ctx.mpi.isend(dst, None, tag=tag + step,
                                            channel="coll", nbytes=0)
            yield from ctx.mpi.recv(src, tag=tag + step, channel="coll")
            yield from sreq.wait()

    def ibarrier(self) -> IBarrier:
        """Nonblocking barrier (the heart of the NBX DSDE protocol)."""
        tag = self._nbx_tag
        self._nbx_tag += 64
        return IBarrier(self.ctx, tag)

    # ------------------------------------------------------------------
    @_collective
    def bcast(self, value: Any, root: int = 0, nbytes: int | None = None):
        """Binomial-tree broadcast; returns the root's value on every rank."""
        ctx = self.ctx
        p = ctx.nranks
        tag = self._next_tag()
        vr = (ctx.rank - root) % p  # virtual rank, root -> 0
        mask = 1
        while mask < p:
            if vr & mask:
                parent = (vr - mask + root) % p
                value = yield from ctx.mpi.recv(parent, tag=tag, channel="coll")
                break
            mask <<= 1
        mask >>= 1
        while mask >= 1:
            if vr + mask < p:
                child = (vr + mask + root) % p
                yield from ctx.mpi.send(child, value, tag=tag,
                                        channel="coll", nbytes=nbytes)
            mask >>= 1
        return value

    # ------------------------------------------------------------------
    @_collective
    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None,
                  nbytes: int | None = None):
        """Recursive-doubling allreduce.

        ``op`` must be associative and commutative; defaults to elementwise
        sum for numpy arrays and ``+`` otherwise.
        """
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        if op is None:
            op = _default_sum
        tag = self._next_tag()
        acc = value

        # Fold non-power-of-two remainder into the low power-of-two block.
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        if r < 2 * rem:
            if r % 2 == 0:
                yield from ctx.mpi.send(r + 1, acc, tag=tag, channel="coll",
                                        nbytes=nbytes)
                newrank = -1
            else:
                other = yield from ctx.mpi.recv(r - 1, tag=tag, channel="coll")
                acc = op(acc, other)
                newrank = r // 2
        else:
            newrank = r - rem

        if newrank >= 0:
            mask = 1
            while mask < pof2:
                partner_new = newrank ^ mask
                partner = (partner_new * 2 + 1 if partner_new < rem
                           else partner_new + rem)
                got = yield from ctx.mpi.sendrecv(
                    partner, acc, src=partner, tag=tag + 1 + mask.bit_length(),
                    channel="coll", nbytes=nbytes)
                acc = op(acc, got)
                mask <<= 1

        # Push results back to the folded ranks.
        if r < 2 * rem:
            if r % 2 == 1:
                yield from ctx.mpi.send(r - 1, acc, tag=tag + 40,
                                        channel="coll", nbytes=nbytes)
            else:
                acc = yield from ctx.mpi.recv(r + 1, tag=tag + 40,
                                              channel="coll")
        return acc

    # ------------------------------------------------------------------
    @_collective
    def allgather(self, value: Any, nbytes: int | None = None):
        """Allgather; returns a list indexed by rank."""
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        tag = self._next_tag()
        if p == 1:
            return [value]
        if p & (p - 1) == 0:
            # Recursive doubling: blocks double each round.
            blocks: dict[int, Any] = {r: value}
            mask = 1
            round_no = 0
            while mask < p:
                partner = r ^ mask
                payload = dict(blocks)
                got = yield from ctx.mpi.sendrecv(
                    partner, payload, src=partner, tag=tag + round_no,
                    channel="coll",
                    nbytes=None if nbytes is None else nbytes * len(payload))
                blocks.update(got)
                mask <<= 1
                round_no += 1
            return [blocks[i] for i in range(p)]
        # Ring algorithm for general p.
        out: list[Any] = [None] * p
        out[r] = value
        left, right = (r - 1) % p, (r + 1) % p
        cur = value
        cur_idx = r
        for step in range(p - 1):
            sreq = yield from ctx.mpi.isend(right, (cur_idx, cur),
                                            tag=tag + step, channel="coll",
                                            nbytes=nbytes)
            idx, got = yield from ctx.mpi.recv(left, tag=tag + step,
                                               channel="coll")
            yield from sreq.wait()
            out[idx] = got
            cur, cur_idx = got, idx
        return out

    # ------------------------------------------------------------------
    @_collective
    def reduce_scatter_block(self, vector, op: Callable | None = None):
        """Reduce a length-p vector across ranks; rank i gets element i.

        Recursive halving for powers of two (the cost the DSDE benchmark
        compares), allreduce-then-slice otherwise.
        """
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        vec = np.asarray(vector)
        if vec.shape[0] != p:
            raise Mpi1Error(f"reduce_scatter needs a length-{p} vector")
        if op is None:
            op = np.add
        if p == 1:
            return vec[0]
        tag = self._next_tag()
        if p & (p - 1) == 0:
            lo, hi = 0, p
            acc = vec.copy()
            mask = p >> 1
            round_no = 0
            while mask >= 1:
                mid = lo + (hi - lo) // 2
                partner = r ^ mask
                if r < mid:
                    send_part = acc[mid:hi]
                    keep_lo, keep_hi = lo, mid
                else:
                    send_part = acc[lo:mid]
                    keep_lo, keep_hi = mid, hi
                got = yield from ctx.mpi.sendrecv(
                    partner, send_part, src=partner, tag=tag + round_no,
                    channel="coll")
                acc[keep_lo:keep_hi] = op(acc[keep_lo:keep_hi], got)
                lo, hi = keep_lo, keep_hi
                mask >>= 1
                round_no += 1
            return acc[r]
        total = yield from self.allreduce(vec, lambda a, b: op(a, b))
        return total[r]

    # ------------------------------------------------------------------
    @_collective
    def alltoall(self, per_dest: list, nbytes_each: int | None = None):
        """Personalized all-to-all (pairwise exchange); returns list by src."""
        ctx = self.ctx
        p, r = ctx.nranks, ctx.rank
        if len(per_dest) != p:
            raise Mpi1Error(f"alltoall needs {p} outgoing items")
        tag = self._next_tag(width=max(64, p + 1))
        out: list[Any] = [None] * p
        out[r] = per_dest[r]
        for step in range(1, p):
            if p & (p - 1) == 0:
                partner = r ^ step
                send_to = recv_from = partner
            else:
                send_to = (r + step) % p
                recv_from = (r - step) % p
            sreq = yield from ctx.mpi.isend(send_to, per_dest[send_to],
                                            tag=tag + step, channel="coll",
                                            nbytes=nbytes_each)
            out[recv_from] = yield from ctx.mpi.recv(recv_from, tag=tag + step,
                                                     channel="coll")
            yield from sreq.wait()
        return out


def _default_sum(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return a + b
    return a + b
