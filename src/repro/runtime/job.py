"""SPMD job launcher.

Every :meth:`Job.run` builds a fresh :class:`~repro.runtime.world.World`,
so runs are independent and deterministic -- which also makes benchmark
points embarrassingly parallel.  :class:`RunSpec` packages one complete
run (program + configs + arguments) as a picklable value so
:mod:`repro.bench.pool` can ship it to worker processes, and
:meth:`Job.snapshot` exposes the full config state for content-addressed
cache keys (:mod:`repro.bench.cache`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.config import (
    CheckConfig,
    FaultConfig,
    MachineConfig,
    ObsConfig,
    RunResult,
    SimConfig,
)
from repro.machine.params import GeminiParams, XpmemParams
from repro.mpi1.params import Mpi1Params
from repro.runtime.process import RankContext
from repro.runtime.world import World

__all__ = ["Job", "RunSpec", "execute_spec", "run_spmd"]


@dataclass
class Job:
    """Reusable launch configuration.

    ``Job(nranks=64).run(program)`` builds a fresh world each time, so runs
    are independent and deterministic.
    """

    nranks: int
    machine: MachineConfig = field(default_factory=MachineConfig)
    sim: SimConfig = field(default_factory=SimConfig)
    gemini: GeminiParams = field(default_factory=GeminiParams)
    xpmem: XpmemParams = field(default_factory=XpmemParams)
    mpi1: Mpi1Params = field(default_factory=Mpi1Params)
    faults: FaultConfig = field(default_factory=FaultConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    check: CheckConfig = field(default_factory=CheckConfig)

    def build_world(self) -> World:
        return World(self.nranks, self.machine, self.sim, self.gemini,
                     self.xpmem, self.mpi1, self.faults, self.obs,
                     self.check)

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(ctx, *args, **kwargs)`` on every rank."""
        world = self.build_world()
        return run_on_world(world, program, *args, **kwargs)

    def snapshot(self) -> dict:
        """Canonical nested-dict view of every config knob (incl. the
        master seed) -- the "full config snapshot" of a cache key."""
        snap = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            snap[f.name] = (dataclasses.asdict(value)
                            if dataclasses.is_dataclass(value)
                            and not isinstance(value, type) else value)
        return snap

    def spec(self, program: Callable, *args, **kwargs) -> "RunSpec":
        """Bind a program to this configuration as a picklable RunSpec."""
        return RunSpec(program=program, job=self, args=tuple(args),
                       kwargs=dict(kwargs))


@dataclass
class RunSpec:
    """One complete SPMD run as a value: pickle it, ship it, run it.

    ``program`` must be a module-level callable for the parallel path;
    everything else (configs, arguments) is plain data.
    """

    program: Callable
    job: Job
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def run(self) -> RunResult:
        return self.job.run(self.program, *self.args, **self.kwargs)


def execute_spec(spec: RunSpec) -> RunResult:
    """Pool-worker entry point (module-level so it pickles)."""
    return spec.run()


def _crash_reaper(world, procs):
    """Kill the rank processes of crashed nodes at their crash times.

    Fail-stop semantics: at each planned crash instant the node's ranks are
    interrupted (they never run again) and the node is quarantined -- every
    later operation addressed to it fails fast with
    :class:`~repro.errors.NodeCrashedError`.
    """
    inj = world.injector
    events = sorted({(inj.crash_time(cr.node), cr.node)
                     for cr in world.faults.plan.crashes})
    for when, node in events:
        delta = when - world.env.now
        if delta > 0:
            yield world.env.timeout(delta)
        inj.mark_crashed(node)
        for rank, proc in enumerate(procs):
            if world.rank_map.node_of(rank) == node and proc.is_alive:
                proc.interrupt(cause=f"node {node} crashed at {when}ns")
        world.env.note_progress()


def run_on_world(world: World, program: Callable, *args, **kwargs) -> RunResult:
    """Run an SPMD program on an existing world (exposed for tests that
    need to inspect world state afterwards)."""
    from repro.errors import NodeCrashedError
    from repro.sim.kernel import Interrupt

    contexts = [RankContext(world, r) for r in range(world.nranks)]
    procs = [world.env.process(program(ctx, *args, **kwargs),
                               name=f"rank{ctx.rank}")
             for ctx in contexts]
    inj = world.injector
    if world.ft is not None:
        # Restarts re-enter the program from its checkpointed state; the
        # runtime must know what to re-enter.
        world.ft.bind(program, args, kwargs)
    if inj is not None and inj.has_crashes:
        world.env.process(_crash_reaper(world, procs), name="crash-reaper")
    if world.notifier is not None:
        world.notifier.start()
    world.env.run(fast=(world.sim.scheduler != "legacy"))

    returns = []
    for rank, p in enumerate(procs):
        value = p.value
        if isinstance(value, BaseException):
            # Normalize deaths to structured diagnostics: ranks killed by
            # the reaper report the crash; survivors that tripped over a
            # quarantined peer already carry a NodeCrashedError.
            if isinstance(value, Interrupt):
                node = world.rank_map.node_of(rank)
                value = NodeCrashedError(node, inj.crash_time(node) or 0,
                                         f"rank {rank} killed")
        if world.ft is not None and rank in world.ft.returns:
            # A restarted incarnation ran the rank to completion; its
            # return value supersedes the dead incarnation's Interrupt.
            value = world.ft.returns[rank]
        returns.append(value)

    stats = world.counters.snapshot()
    if inj is not None:
        stats.update(inj.stats.snapshot())
        if world.env.tracer is not None:
            stats["fault_trace_counts"] = dict(world.env.tracer.fault_counts)
    if world.checker is not None:
        stats["check"] = world.checker.stats_snapshot()
    if world.ft is not None:
        stats["ft"] = world.ft.stats.snapshot()
    return RunResult(
        returns=returns,
        sim_time_ns=world.env.now,
        events_processed=world.env.events_processed,
        stats=stats,
        obs=world.obs,
        check=world.checker,
    )


def run_spmd(program: Callable, nranks: int, *args,
             machine: MachineConfig | None = None,
             sim: SimConfig | None = None,
             gemini: GeminiParams | None = None,
             xpmem: XpmemParams | None = None,
             mpi1: Mpi1Params | None = None,
             faults: FaultConfig | None = None,
             obs: ObsConfig | None = None,
             check: CheckConfig | None = None,
             **kwargs) -> RunResult:
    """One-shot SPMD run; the package's main entry point.

    Parameters mirror :class:`Job`; extra positional/keyword arguments are
    forwarded to ``program`` after the rank context.  ``faults`` attaches a
    :class:`~repro.config.FaultConfig`; without one, no fault machinery is
    constructed and runs are bit-identical to the unhardened code.
    ``obs`` enables the observability layer (``RunResult.obs``); ``check``
    attaches the memory-model checker (``RunResult.check``).
    """
    job = Job(nranks=nranks,
              machine=machine or MachineConfig(),
              sim=sim or SimConfig(),
              gemini=gemini or GeminiParams(),
              xpmem=xpmem or XpmemParams(),
              mpi1=mpi1 or Mpi1Params(),
              faults=faults or FaultConfig(),
              obs=obs or ObsConfig(),
              check=check or CheckConfig())
    return job.run(program, *args, **kwargs)
