"""SPMD job launcher."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.config import MachineConfig, RunResult, SimConfig
from repro.machine.params import GeminiParams, XpmemParams
from repro.mpi1.params import Mpi1Params
from repro.runtime.process import RankContext
from repro.runtime.world import World

__all__ = ["Job", "run_spmd"]


@dataclass
class Job:
    """Reusable launch configuration.

    ``Job(nranks=64).run(program)`` builds a fresh world each time, so runs
    are independent and deterministic.
    """

    nranks: int
    machine: MachineConfig = field(default_factory=MachineConfig)
    sim: SimConfig = field(default_factory=SimConfig)
    gemini: GeminiParams = field(default_factory=GeminiParams)
    xpmem: XpmemParams = field(default_factory=XpmemParams)
    mpi1: Mpi1Params = field(default_factory=Mpi1Params)

    def build_world(self) -> World:
        return World(self.nranks, self.machine, self.sim, self.gemini,
                     self.xpmem, self.mpi1)

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(ctx, *args, **kwargs)`` on every rank."""
        world = self.build_world()
        return run_on_world(world, program, *args, **kwargs)


def run_on_world(world: World, program: Callable, *args, **kwargs) -> RunResult:
    """Run an SPMD program on an existing world (exposed for tests that
    need to inspect world state afterwards)."""
    contexts = [RankContext(world, r) for r in range(world.nranks)]
    procs = [world.env.process(program(ctx, *args, **kwargs),
                               name=f"rank{ctx.rank}")
             for ctx in contexts]
    world.env.run()
    return RunResult(
        returns=[p.value for p in procs],
        sim_time_ns=world.env.now,
        events_processed=world.env.events_processed,
        stats=world.counters.snapshot(),
    )


def run_spmd(program: Callable, nranks: int, *args,
             machine: MachineConfig | None = None,
             sim: SimConfig | None = None,
             gemini: GeminiParams | None = None,
             xpmem: XpmemParams | None = None,
             mpi1: Mpi1Params | None = None,
             **kwargs) -> RunResult:
    """One-shot SPMD run; the package's main entry point.

    Parameters mirror :class:`Job`; extra positional/keyword arguments are
    forwarded to ``program`` after the rank context.
    """
    job = Job(nranks=nranks,
              machine=machine or MachineConfig(),
              sim=sim or SimConfig(),
              gemini=gemini or GeminiParams(),
              xpmem=xpmem or XpmemParams(),
              mpi1=mpi1 or Mpi1Params())
    return job.run(program, *args, **kwargs)
