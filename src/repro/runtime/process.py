"""Per-rank execution context.

A rank program is a generator taking a :class:`RankContext`::

    def program(ctx):
        win = yield from ctx.rma.win_allocate(4096)
        yield from win.lock(1, exclusive=True)
        yield from win.put(data, target=1, offset=0)
        yield from win.flush(1)
        yield from win.unlock(1)
        return ctx.now

The context exposes every substrate (dmapp, xpmem, mpi, collectives, rma,
pgas) plus time-charging helpers; ``compute``/``instr`` model local CPU
work, which is how the overlap benchmark (Figure 5a) measures what the NIC
can hide.
"""

from __future__ import annotations

from repro.dmapp.api import DmappEndpoint, ResilientDmappEndpoint
from repro.mpi1.pt2pt import Mpi1Endpoint
from repro.xpmem.api import XpmemEndpoint

__all__ = ["RankContext"]


class RankContext:
    """One rank's view of the world."""

    def __init__(self, world, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.nranks = world.nranks
        self.env = world.env
        self.node = world.rank_map.node_of(rank)
        self.space = world.spaces[rank]
        self.reg = world.reg_tables[rank]
        # Observability sink (None when disabled -- every hook below the
        # runtime tests exactly that before recording anything).
        self.obs = world.obs
        # Memory-model checker (same None-when-disabled contract).
        self.checker = world.checker
        if world.injector is not None:
            # Faulty fabric: the hardened transport (deadlines, seeded
            # backoff, idempotent retransmit, AMO replay dedup).
            self.dmapp = ResilientDmappEndpoint(
                world.env, rank, world.network, world.rank_map,
                world.reg_tables, world.injector, world.faults)
        else:
            self.dmapp = DmappEndpoint(world.env, rank, world.network,
                                       world.rank_map, world.reg_tables)
        self.dmapp.obs = world.obs
        self.xpmem = XpmemEndpoint(world.env, rank, world.rank_map,
                                   world.xpmem, world.counters)
        self.xpmem.checker = world.checker
        self.mpi = Mpi1Endpoint(world.env, rank, world.network,
                                world.rank_map, world.mpi1, world.xpmem,
                                world.mpi_registry)
        self.mpi.checker = world.checker
        # Recovery services (both None on fault-free runs: the single
        # ``is None`` gate every protocol-layer recovery hook tests).
        self.notifier = world.notifier
        self.lock_ledger = world.lock_ledger
        # Rollback recovery (same None-when-off contract).
        self.ft = None
        if world.ft is not None:
            from repro.ft.core import FTContext

            self.ft = FTContext(world.ft, self)
            self.dmapp.ft = world.ft
            self.mpi.ft = world.ft
        self._coll = None
        self._rma = None
        self._upc = None
        self._caf = None

    # -- lazy heavy layers -------------------------------------------------
    @property
    def coll(self):
        if self._coll is None:
            from repro.runtime.collectives import Collectives

            self._coll = Collectives(self)
        return self._coll

    @property
    def rma(self):
        if self._rma is None:
            from repro.rma.runtime import RmaContext

            self._rma = RmaContext(self)
        return self._rma

    @property
    def upc(self):
        if self._upc is None:
            from repro.pgas.upc import UpcContext

            self._upc = UpcContext(self)
        return self._upc

    @property
    def caf(self):
        if self._caf is None:
            from repro.pgas.caf import CafContext

            self._caf = CafContext(self)
        return self._caf

    # -- diagnostics -----------------------------------------------------
    def note_api(self, site: str) -> None:
        """Record this rank's last API call site for deadlock/livelock
        diagnostics (a dict write; never perturbs simulation state)."""
        self.env.api_sites[f"rank{self.rank}"] = site

    # -- time -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.env.now

    def compute(self, ns: float):
        """Model local computation taking ``ns`` nanoseconds."""
        if ns > 0:
            yield self.env.timeout(int(round(ns)))

    def instr(self, count: float):
        """Charge ``count`` CPU instructions at the machine clock."""
        yield from self.compute(self.world.machine.instructions_to_ns(count))

    # -- topology helpers -------------------------------------------------
    def same_node(self, other_rank: int) -> bool:
        return self.world.rank_map.same_node(self.rank, other_rank)

    def node_of(self, rank: int) -> int:
        return self.world.rank_map.node_of(rank)

    def rng(self, purpose: str):
        return self.world.rng(purpose, self.rank)
