"""World: one simulated machine plus all per-rank state."""

from __future__ import annotations

from repro.config import MachineConfig, SimConfig
from repro.machine.network import Network
from repro.machine.params import GeminiParams, XpmemParams
from repro.machine.topology import RankMap, Torus3D
from repro.mem.address_space import AddressSpace
from repro.mem.registration import RegistrationTable
from repro.mpi1.params import Mpi1Params
from repro.sim.kernel import Environment
from repro.sim.random import stream
from repro.sim.trace import OpCounters

__all__ = ["World"]


class World:
    """Everything shared by the ranks of one simulated job."""

    def __init__(
        self,
        nranks: int,
        machine: MachineConfig | None = None,
        sim: SimConfig | None = None,
        gemini: GeminiParams | None = None,
        xpmem: XpmemParams | None = None,
        mpi1: Mpi1Params | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.machine = machine or MachineConfig()
        self.sim = sim or SimConfig()
        self.gemini = gemini or GeminiParams()
        self.xpmem = xpmem or XpmemParams()
        self.mpi1 = mpi1 or Mpi1Params()

        self.env = Environment(max_events=self.sim.max_events)
        self.rank_map = RankMap.for_config(nranks, self.machine)
        self.torus = Torus3D(self.machine.derive_torus(nranks))
        self.counters = OpCounters()
        self.network = Network(self.env, self.torus, self.rank_map,
                               self.gemini, self.counters)
        self.spaces = {r: AddressSpace(r) for r in range(nranks)}
        self.reg_tables = {r: RegistrationTable(r) for r in range(nranks)}
        self.mpi_registry: dict = {}
        # Cross-rank rendezvous spots used by collective protocols
        # (window-creation exchanges etc.); keyed by (kind, instance).
        self.blackboard: dict = {}

    def rng(self, purpose: str, rank: int = 0):
        """Deterministic random stream for (purpose, rank)."""
        return stream(self.sim.seed, purpose, rank)

    @property
    def now(self) -> int:
        return self.env.now
