"""World: one simulated machine plus all per-rank state."""

from __future__ import annotations

from repro.config import (CheckConfig, FaultConfig, MachineConfig, ObsConfig,
                          SimConfig)
from repro.machine.network import Network
from repro.machine.params import GeminiParams, XpmemParams
from repro.machine.topology import RankMap, Torus3D
from repro.mem.address_space import AddressSpace
from repro.mem.registration import RegistrationTable
from repro.mpi1.params import Mpi1Params
from repro.sim.kernel import Environment
from repro.sim.random import stream
from repro.sim.trace import OpCounters, Tracer

__all__ = ["RankTable", "World"]


class RankTable:
    """Lazily materialized ``rank -> per-rank object`` table.

    ``World`` used to build every rank's :class:`AddressSpace` and
    :class:`RegistrationTable` eagerly at construction -- O(p) Python
    objects before the first event runs, which is exactly the per-rank
    state the hybrid scale mode (:mod:`repro.scale`) exists to avoid.
    This table is dict-compatible for every existing access pattern
    (``table[rank]``, ``rank in table``, iteration, ``len``) but only
    constructs an entry on first use, so a world's footprint scales
    with the ranks that actually touch memory, not with ``nranks``.
    """

    def __init__(self, nranks: int, factory) -> None:
        self.nranks = nranks
        self._factory = factory
        self._entries: dict = {}

    def __getitem__(self, rank: int):
        entry = self._entries.get(rank)
        if entry is None:
            if not 0 <= rank < self.nranks:
                raise KeyError(rank)
            entry = self._entries[rank] = self._factory(rank)
        return entry

    def __contains__(self, rank: int) -> bool:
        return 0 <= rank < self.nranks

    def __len__(self) -> int:
        return self.nranks

    def __iter__(self):
        return iter(range(self.nranks))

    def keys(self):
        return range(self.nranks)

    def values(self):
        return (self[r] for r in range(self.nranks))

    def items(self):
        return ((r, self[r]) for r in range(self.nranks))

    @property
    def materialized(self) -> int:
        """Entries actually constructed (asserted by the laziness tests)."""
        return len(self._entries)


class World:
    """Everything shared by the ranks of one simulated job."""

    def __init__(
        self,
        nranks: int,
        machine: MachineConfig | None = None,
        sim: SimConfig | None = None,
        gemini: GeminiParams | None = None,
        xpmem: XpmemParams | None = None,
        mpi1: Mpi1Params | None = None,
        faults: FaultConfig | None = None,
        obs: ObsConfig | None = None,
        check: CheckConfig | None = None,
    ) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self.nranks = nranks
        self.machine = machine or MachineConfig()
        self.sim = sim or SimConfig()
        self.gemini = gemini or GeminiParams()
        self.xpmem = xpmem or XpmemParams()
        self.mpi1 = mpi1 or Mpi1Params()
        self.faults = faults or FaultConfig()
        self.obs_config = obs or ObsConfig()

        # With planned crashes, rank processes die by Interrupt; the run
        # must survive those instead of aborting (non-strict kernel).
        has_crashes = (self.faults.plan is not None
                       and bool(self.faults.plan.crashes))
        self.env = Environment(max_events=self.sim.max_events,
                               strict=not has_crashes,
                               watchdog_interval=self.sim.watchdog_interval,
                               watchdog_stalls=self.sim.watchdog_stalls)
        if self.sim.trace:
            self.env.tracer = Tracer()
        # The injector exists only when a FaultPlan is active; every fault
        # hook in the machine/transport layers is behind an ``is None``
        # test, so fault-free runs stay bit-identical to pre-fault code.
        if self.faults.active:
            from repro.faults import FaultInjector

            self.injector = FaultInjector(self.faults.plan, self.faults,
                                          self.sim.seed, self.env)
        else:
            self.injector = None
        # Observability: spans + per-rank metrics.  Constructed when the
        # config enables it, or when a repro.obs.capture() block is live
        # (the benchmark-harness hook); None otherwise, and every
        # protocol-layer hook is behind a single ``is None`` test.
        self.obs = None
        if self.obs_config.enabled:
            from repro.obs.core import Instrumentation

            self.obs = Instrumentation(nranks,
                                       max_spans=self.obs_config.max_spans,
                                       nic_marks=self.obs_config.nic_marks)
        else:
            from repro.obs.core import active_capture

            sink = active_capture()
            if sink is not None:
                from repro.obs.core import Instrumentation

                self.obs = Instrumentation(
                    nranks, max_spans=self.obs_config.max_spans,
                    nic_marks=self.obs_config.nic_marks)
                sink.append(self.obs)
        # Memory-model checker: same contract as obs -- constructed when
        # the config enables it or a repro.check capture block is live;
        # None otherwise, one ``is None`` test per protocol hook.
        self.check_config = check or CheckConfig()
        self.checker = None
        if self.check_config.enabled:
            from repro.check.core import RaceChecker

            self.checker = RaceChecker(nranks, config=self.check_config,
                                       obs=self.obs)
        else:
            from repro.check.core import active_check_capture

            csink = active_check_capture()
            if csink is not None:
                from repro.check.core import RaceChecker

                self.checker = RaceChecker(nranks,
                                           config=self.check_config,
                                           obs=self.obs)
                csink.append(self.checker)
        self.rank_map = RankMap.for_config(nranks, self.machine)
        # Rollback recovery holds spare nodes out of the initial placement;
        # the torus must cover them so replica/restore traffic to spares
        # pays real modeled hop counts.
        ft_cfg = self.faults.ft
        if ft_cfg.enabled and ft_cfg.spares > 0:
            torus_ranks = nranks + ft_cfg.spares * self.rank_map.ranks_per_node
        else:
            torus_ranks = nranks
        self.torus = Torus3D(self.machine.derive_torus(torus_ranks))
        self.counters = OpCounters()
        self.network = Network(self.env, self.torus, self.rank_map,
                               self.gemini, self.counters,
                               injector=self.injector,
                               batch_delivery=self.machine.batch_delivery)
        self.network.obs = self.obs
        self.spaces = RankTable(nranks, AddressSpace)
        self.reg_tables = RankTable(nranks, RegistrationTable)
        self.mpi_registry: dict = {}
        # Cross-rank rendezvous spots used by collective protocols
        # (window-creation exchanges etc.); keyed by (kind, instance).
        self.blackboard: dict = {}
        # Survivor-side recovery: a failure-notification service plus the
        # lock-revocation ledger, constructed only for runs with planned
        # crashes and recovery enabled (same zero-cost-when-off contract
        # as the injector).
        self.notifier = None
        self.lock_ledger = None
        if (self.injector is not None and self.injector.has_crashes
                and self.faults.recovery.enabled):
            from repro.rma import recovery
            from repro.runtime.notify import FailureNotifier

            self.notifier = FailureNotifier(self)
            if self.faults.recovery.revoke_locks:
                self.lock_ledger = recovery.RevocationLedger()
            recovery.install(self)
        # Rollback recovery (checkpoint + log + restart).  Constructed for
        # any FT-enabled run -- including fault-free ones, so the overhead
        # benchmark can measure checkpoint cost without an injector.  The
        # restore hook needs the notifier and runs after revocation.
        self.ft = None
        if self.faults.ft.enabled:
            from repro.ft.core import FTRuntime

            self.ft = FTRuntime(self)
            if self.notifier is not None:
                self.notifier.on_revoke(self.ft.make_restore_hook())

    def rng(self, purpose: str, rank: int = 0):
        """Deterministic random stream for (purpose, rank)."""
        return stream(self.sim.seed, purpose, rank)

    @property
    def now(self) -> int:
        return self.env.now
