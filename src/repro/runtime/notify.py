"""ULFM-style failure-notification service.

The transport layer (PR 1) already *quarantines* crashed nodes: any new
packet addressed to one fails fast with
:class:`~repro.errors.NodeCrashedError`.  That is link-level knowledge --
the NIC notices its peer is gone.  What the protocol layers (locks,
epochs, teardown) need is *user-level* knowledge: every survivor must
eventually learn "rank r failed" so pending acquisitions can fail with a
structured error and state owned by the dead rank can be revoked.

:class:`FailureNotifier` models that propagation the way a scalable
runtime would implement it (and the way ULFM implementations do): a local
failure detector confirms the death after ``detect_ns``, then a binomial
broadcast seeded at the first survivor disseminates the notification in
``ceil(log2 p)`` rounds of ``notify_round_ns`` each -- the same O(log p)
round structure the paper uses for its scalability bounds.  Survivor
``i`` (in rank order among survivors) learns of the failure after
``depth(i) = bit_length(i)`` rounds, so the last survivor learns after at
most ``ceil(log2 p)`` rounds and total notification cost is O(log p)
regardless of job size.

Everything is derived from the planned crash times, the
:class:`~repro.config.RecoveryConfig` constants and the deterministic DES
kernel -- no randomness is consumed -- so a recovered run replays
bit-identically under the same seed.

The notifier is only constructed when the active
:class:`~repro.config.FaultPlan` contains crashes and recovery is
enabled; every hook in the protocol layers is behind a single
``notifier is None`` test, keeping fault-free schedules byte-identical.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.kernel import Event

__all__ = ["FailureNotifier"]


class FailureNotifier:
    """Per-world failure-notification service.

    One dissemination process is spawned per planned crash event.  Each
    runs:

    1. *detect*   -- wait until ``crash_time + detect_ns``;
    2. *notify*   -- binomial broadcast over survivors, one
       ``notify_round_ns`` charge per tree depth, updating each
       survivor's known-failure set and firing its pending
       :meth:`failure_event`;
    3. *ack*      -- with ``ack_policy="collective"``, a second O(log p)
       combine so every survivor is known to be notified before any
       state is mutated;
    4. *revoke*   -- run the registered revocation hooks
       (:mod:`repro.rma.recovery`) after a ``revoke_ns`` charge.
    """

    def __init__(self, world) -> None:
        self.world = world
        self.env = world.env
        self.recovery = world.faults.recovery
        self._known: list[set[int]] = [set() for _ in range(world.nranks)]
        self._events: list[Event | None] = [None] * world.nranks
        self._hooks: list[Callable] = []
        # (time_ns, node, failed_ranks) per planned crash, in time order.
        inj = world.injector
        crashes = sorted({(inj.crash_time(cr.node), cr.node)
                          for cr in world.faults.plan.crashes})
        self._crash_events: list[tuple[int, int, tuple[int, ...]]] = []
        node_of = world.rank_map.node_of
        for when, node in crashes:
            ranks = tuple(r for r in range(world.nranks)
                          if node_of(r) == node)
            self._crash_events.append((when, node, ranks))

    # ------------------------------------------------------------------
    # queries (used by the protocol layers)
    # ------------------------------------------------------------------
    def known(self, rank: int) -> set[int]:
        """Failed ranks that ``rank`` has been notified about so far."""
        return self._known[rank]

    def rank_failed(self, rank: int, peer: int) -> bool:
        """Has ``rank`` been notified that ``peer`` failed?"""
        return peer in self._known[rank]

    def failure_event(self, rank: int) -> Event:
        """Condition event that fires at ``rank``'s next failure
        notification.  Protocol waits race this against their normal
        completion (via ``AnyOf``) so they wake on either."""
        ev = self._events[rank]
        if ev is None or ev.triggered:
            ev = Event(self.env, name=f"failnotify:r{rank}")
            self._events[rank] = ev
        return ev

    def absolve(self, ranks: Iterable[int]) -> None:
        """Rollback recovery restored ``ranks``: erase them from every
        survivor's known-failure set, so post-restore acquisitions and
        epochs treat them as live peers again."""
        dead = set(ranks)
        for known in self._known:
            known -= dead

    def on_revoke(self, hook: Callable) -> None:
        """Register a revocation hook: a callable
        ``hook(failed_ranks) -> generator`` run (in registration order)
        inside the dissemination process after notification completes."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    # dissemination
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one dissemination process per planned crash event."""
        for when, node, ranks in self._crash_events:
            self.env.process(self._disseminate(when, node, ranks),
                             name=f"failure-notify:n{node}")

    def _survivors(self, when: int) -> list[int]:
        """Ranks whose node has no planned crash at/before ``when``."""
        inj = self.world.injector
        node_of = self.world.rank_map.node_of
        out = []
        for r in range(self.world.nranks):
            ct = inj.crash_time(node_of(r))
            if ct is None or ct > when:
                out.append(r)
        return out

    def _deliver(self, rank: int, failed_ranks: Iterable[int]) -> None:
        known = self._known[rank]
        before = len(known)
        known.update(failed_ranks)
        if len(known) == before:
            return
        stats = self.world.injector.stats
        stats.notifications_delivered += 1
        obs = self.world.obs
        if obs is not None:
            obs.rank_instant(rank, "notify.failure", self.env.now,
                             cat="fault",
                             args={"failed": len(self._known[rank])})
            obs.metrics.count("failure.notifications", rank)
        ev = self._events[rank]
        if ev is not None and not ev.triggered:
            self._events[rank] = None
            ev.succeed(frozenset(known))

    def _disseminate(self, when: int, node: int, failed_ranks: tuple):
        env = self.env
        rec = self.recovery
        inj = self.world.injector
        delta = (when + rec.detect_ns) - env.now
        if delta > 0:
            yield env.timeout(delta)
        inj.stats.failures_detected += 1
        inj._trace("detect", f"node {node} death confirmed")
        t_detect = env.now
        env.note_progress()

        survivors = self._survivors(when)
        if survivors:
            # Binomial broadcast: survivor at position v receives at depth
            # bit_length(v); one notify_round_ns charge per depth level.
            max_depth = ((len(survivors) - 1).bit_length()
                         if len(survivors) > 1 else 0)
            by_depth: dict[int, list[int]] = {}
            for v, r in enumerate(survivors):
                by_depth.setdefault(v.bit_length(), []).append(r)
            for depth in range(max_depth + 1):
                if depth > 0:
                    yield env.timeout(rec.notify_round_ns)
                for r in by_depth.get(depth, ()):
                    self._deliver(r, failed_ranks)
                env.note_progress()
            if rec.ack_policy == "collective" and max_depth > 0:
                # Ack combine: the notification tree in reverse, so the
                # root knows every survivor saw the failure before any
                # revocation mutates shared state.
                yield env.timeout(max_depth * rec.notify_round_ns)
                env.note_progress()

        if rec.revoke_ns > 0:
            yield env.timeout(rec.revoke_ns)
        for hook in self._hooks:
            yield from hook(failed_ranks)
        inj._trace("revoke", f"node {node} state revoked")
        obs = self.world.obs
        if obs is not None:
            # Detection-to-revocation on the dead node's NIC track: the
            # recovery machinery acts on its behalf while it is gone.
            obs.nic_span(node, "failure.recover", t_detect, env.now,
                         cat="fault",
                         args={"ranks": len(failed_ranks)})
            obs.metrics.observe("failure_recover_ns", 0,
                                env.now - t_detect)
        env.note_progress()
