"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``            run the quickstart program and print the results
``figure <id>``     regenerate one figure series (4a 4b 4c 5a 5b 5c 6a 6b
                    6c 7a 7b 7c 8) and print it as a table + ASCII chart
``models``          print the paper's performance-model catalog
``calibrate``       fit the simulated put/get/atomics series against the
                    paper's measured functions and report errors
``trace <wl>``      run a named workload (putget, locks, fence, pscw)
                    under observability and write a Chrome trace-event
                    JSON file (open in Perfetto / chrome://tracing)
``report [wl]``     run a named workload and print the plain-text run
                    report (span aggregates, counters, histograms, links)
``check <wl>``      run a named workload (or a ``.py`` example script)
                    under the memory-model checker and report every RMA
                    semantics violation; ``--perturb N`` sweeps N seeded
                    schedule perturbations to manifest latent races
                    (exit code 1 when violations are found)
``scale <action>``  hybrid million-rank scale mode: ``parity`` diffs
                    hybrid vs full-fidelity message counts exactly at
                    overlapping sizes (exit 1 on any mismatch),
                    ``smoke`` runs every workload hybrid at paper scale
                    (``--ranks 512Ki``) under a wall-clock budget,
                    ``run`` runs one workload and prints its stats
``serve kvstore``   serve a seeded Zipfian open-loop workload against the
                    RMA KV store (or the ``--variant mpi1`` comparator)
                    and print the deterministic tail-latency report;
                    ``--slo-p99-us`` gates the exact p99 (exit 1 on
                    violation); ``--ft --crash R`` crashes rank R
                    mid-serve, recovers, verifies the final store state
                    bit-for-bit and reports the availability gap and
                    post-recovery p99
``ft <wl>``         crash-to-completion experiment: run the FT workload
                    (``hashtable``) fault-free, crash ``--crash-rank`` at
                    ``--crash-frac`` of the reference run, recover, and
                    compare final states bit-for-bit; ``ft soak`` sweeps
                    ``--runs`` seeded randomized crash schedules (exit
                    code 1 on any mismatch)
"""

from __future__ import annotations

import argparse

from repro.bench import Series, format_series_table
from repro.bench.report import ascii_chart


def _figure(fig: str, fast: bool) -> tuple[str, list]:
    from repro.bench import microbench as mb
    from repro.bench import syncbench as sb
    from repro.bench.appbench import dsde_time_us, hashtable_rate, milc_time_s

    sizes = [8, 512, 8192, 65536] if fast else [8, 64, 512, 4096, 32768,
                                                262144]
    ps = [2, 8, 32] if fast else [2, 8, 32, 128]

    if fig in ("4a", "4b"):
        fn = mb.put_latency if fig == "4a" else mb.get_latency
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, fn(t, size) / 1e3)
            series.append(s)
        return (f"Figure {fig}: inter-node latency [us]", series)
    if fig == "4c":
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, mb.put_latency(t, size, intra=True) / 1e3)
            series.append(s)
        return ("Figure 4c: intra-node put latency [us]", series)
    if fig == "5a":
        series = []
        for t in ("fompi", "upc", "cray22"):
            s = Series(label=t)
            for size in sizes:
                s.add(size, 100 * mb.overlap_fraction(t, size))
            series.append(s)
        return ("Figure 5a: overlap [%]", series)
    if fig in ("5b", "5c"):
        intra = fig == "5c"
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, mb.message_rate(t, size, intra=intra,
                                            nmsgs=200) / 1e6)
            series.append(s)
        return (f"Figure {fig}: message rate [M/s]", series)
    if fig == "6a":
        series = []
        for kind in ("fompi_sum", "fompi_min"):
            s = Series(label=kind)
            for n in (1, 64, 4096):
                s.add(n, mb.atomic_latency(kind, n, reps=2) / 1e3)
            series.append(s)
        return ("Figure 6a: atomics [us]", series)
    if fig == "6b":
        series = []
        for t in ("fompi", "upc", "caf", "cray22"):
            s = Series(label=t)
            for p in ps:
                s.add(p, sb.global_sync_latency(t, p) / 1e3)
            series.append(s)
        return ("Figure 6b: global sync [us]", series)
    if fig == "6c":
        series = []
        for t in ("fompi", "cray22"):
            s = Series(label=t)
            for p in [4, 16, 64]:
                s.add(p, sb.pscw_ring_latency(t, p) / 1e3)
            series.append(s)
        return ("Figure 6c: PSCW ring [us]", series)
    if fig == "7a":
        series = []
        for t in ("fompi", "upc", "mpi1"):
            s = Series(label=t)
            for p in [2, 8, 32] + ([] if fast else [128]):
                s.add(p, hashtable_rate(t, p, 32) / 1e6)
            series.append(s)
        return ("Figure 7a: hashtable [M inserts/s]", series)
    if fig == "7b":
        series = []
        for proto in ("alltoall", "reduce_scatter", "nbx", "rma"):
            s = Series(label=proto)
            for p in [4, 16] + ([] if fast else [64]):
                s.add(p, dsde_time_us(proto, p, 6))
            series.append(s)
        return ("Figure 7b: DSDE [us]", series)
    if fig == "7c":
        from repro.apps.fft import FftSpec
        from repro.bench.appbench import fft_gflops

        spec = FftSpec(nx=32, ny=32, nz=32, flop_rate=2.5e10)
        series = []
        for v, label in (("mpi1", "mpi1"), ("rma_overlap", "fompi")):
            s = Series(label=label)
            for p in (8, 32):
                s.add(p, fft_gflops(v, p, spec, ranks_per_node=2))
            series.append(s)
        return ("Figure 7c: FFT [GFlop/s]", series)
    if fig == "8":
        series = []
        for v, label in (("mpi1", "mpi1"), ("rma", "fompi"), ("upc", "upc")):
            s = Series(label=label)
            for p in (8, 32):
                s.add(p, milc_time_s(v, p) * 1e3)
            series.append(s)
        return ("Figure 8: MILC [ms]", series)
    raise SystemExit(f"unknown figure {fig!r}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    sub.add_parser("demo")
    f = sub.add_parser("figure")
    f.add_argument("id")
    f.add_argument("--full", action="store_true",
                   help="larger sweeps (slower)")
    f.add_argument("--hybrid", action="store_true",
                   help="extend the figure to paper scale with the "
                        "hybrid engine (figures 7a and 8)")
    f.add_argument("--ranks", default=None,
                   help="comma-separated rank counts for --hybrid "
                        "(binary units OK: 512,4Ki,512Ki,1Mi)")
    f.add_argument("--trace", metavar="PATH", default=None,
                   help="re-run the figure under observability and write "
                        "a Chrome trace of its slowest simulated point")
    sub.add_parser("models")
    sub.add_parser("calibrate")
    t = sub.add_parser("trace")
    t.add_argument("workload")
    t.add_argument("--ranks", type=int, default=4)
    t.add_argument("--seed", type=int, default=None)
    t.add_argument("--out", default=None,
                   help="output path (default trace_<workload>.json)")
    r = sub.add_parser("report")
    r.add_argument("workload", nargs="?", default="putget")
    r.add_argument("--ranks", type=int, default=4)
    r.add_argument("--seed", type=int, default=None)
    c = sub.add_parser("check")
    c.add_argument("workload",
                   help="named workload (racy_*/clean_*/putget/locks/"
                        "fence/pscw) or path to a .py script to run "
                        "under check_capture()")
    c.add_argument("--ranks", type=int, default=4)
    c.add_argument("--seed", type=int, default=None)
    c.add_argument("--rpn", type=int, default=1,
                   help="ranks per node (default 1)")
    c.add_argument("--perturb", type=int, metavar="N", default=0,
                   help="additionally rerun under N seeded schedule "
                        "perturbations (latency jitter)")
    c.add_argument("--jitter", action="store_true",
                   help="perturb this single run (used by the printed "
                        "reproducer commands)")
    sc = sub.add_parser("scale")
    sc.add_argument("action", choices=("parity", "smoke", "run"),
                    help="parity: hybrid vs full-fidelity exact message "
                         "counts; smoke: paper-scale hybrid run under a "
                         "wall budget; run: one hybrid run, print stats")
    sc.add_argument("--ranks", default=None,
                    help="rank count(s); comma-separated for parity "
                         "(binary units OK: 256,1Ki,4Ki or 512Ki)")
    sc.add_argument("--rpn", type=int, default=32,
                    help="ranks per node (default 32, as in the paper)")
    sc.add_argument("--workloads", default=None,
                    help="comma-separated subset of "
                         "fence,pscw,lock,flush (default: all)")
    sc.add_argument("--workload", default="fence",
                    help="workload for 'run' (default fence)")
    sc.add_argument("--budget-s", type=float, default=None,
                    help="hard wall-clock budget for 'smoke' (exit 1 if "
                         "exceeded)")
    sc.add_argument("--out", metavar="PATH", default=None,
                    help="write the JSON report (parity table / smoke "
                         "rows)")
    sv = sub.add_parser("serve")
    sv.add_argument("workload", nargs="?", default="kvstore",
                    help="only 'kvstore' for now")
    sv.add_argument("--ranks", type=int, default=8)
    sv.add_argument("--clients", type=int, default=None,
                    help="alias for --ranks (one client per rank)")
    sv.add_argument("--requests", type=int, default=4000,
                    help="total requests across all clients")
    sv.add_argument("--nkeys", type=int, default=512)
    sv.add_argument("--skew", type=float, default=0.99,
                    help="Zipf theta (0 = uniform)")
    sv.add_argument("--rate", type=float, default=2e5,
                    help="per-client open-loop arrival rate [req/s]")
    sv.add_argument("--get-frac", type=float, default=0.8)
    sv.add_argument("--update-frac", type=float, default=0.1)
    sv.add_argument("--seed", type=int, default=None)
    sv.add_argument("--rpn", type=int, default=8,
                    help="ranks per node (fault-free runs; --ft always "
                         "places one rank per node)")
    sv.add_argument("--stripes", type=int, default=8,
                    help="MCS lock stripes per store rank")
    sv.add_argument("--variant", choices=("rma", "mpi1"), default="rma")
    sv.add_argument("--check", action="store_true",
                    help="also attach the memory-model checker (exit 1 "
                         "on violations)")
    sv.add_argument("--ft", action="store_true",
                    help="crash-through serving over rollback recovery")
    sv.add_argument("--crash", type=int, default=1, metavar="RANK")
    sv.add_argument("--crash-frac", type=float, default=0.5)
    sv.add_argument("--interval", type=int, default=16,
                    help="checkpoint every N requests (--ft)")
    sv.add_argument("--slo-p99-us", type=float, default=None,
                    help="fail (exit 1) if exact p99 exceeds this")
    sv.add_argument("--slo-gap-us", type=float, default=None,
                    help="fail (exit 1) if the availability gap "
                         "exceeds this (--ft)")
    sv.add_argument("--out", metavar="PATH", default=None,
                    help="write the JSON report")
    ft = sub.add_parser("ft")
    ft.add_argument("workload", nargs="?", default="hashtable",
                    help="'hashtable' (single crash-to-completion "
                         "experiment) or 'soak' (seeded randomized sweep)")
    ft.add_argument("--ranks", type=int, default=4)
    ft.add_argument("--inserts", type=int, default=4,
                    help="inserts per rank")
    ft.add_argument("--seed", type=int, default=None)
    ft.add_argument("--crash-rank", type=int, default=1)
    ft.add_argument("--crash-frac", type=float, default=0.5,
                    help="crash time as a fraction of the fault-free "
                         "run's length")
    ft.add_argument("--mode", choices=("spare", "shrink"), default="spare")
    ft.add_argument("--interval", type=int, default=2,
                    help="checkpoint every N inserts")
    ft.add_argument("--policy", choices=("log", "ckpt_only"), default="log")
    ft.add_argument("--runs", type=int, default=5,
                    help="number of soak runs (soak workload only)")
    ft.add_argument("--stats-out", metavar="PATH", default=None,
                    help="write per-run recovery stats as JSON")
    args = ap.parse_args(argv)

    if args.cmd == "demo":
        import numpy as np

        from repro import run_spmd
        from repro.config import MachineConfig
        from repro.rma.enums import Op

        def program(ctx):
            win = yield from ctx.rma.win_allocate(4096, disp_unit=8)
            yield from win.fence()
            yield from win.put(np.array([100 + ctx.rank], np.int64),
                               (ctx.rank + 1) % ctx.nranks, 0)
            yield from win.fence(no_succeed=True)
            yield from win.lock_all()
            old = yield from win.fetch_and_op(np.int64(1), 0, 1, Op.SUM)
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return int(win.local_view(np.int64)[0]), int(old)

        res = run_spmd(program, 4, machine=MachineConfig(ranks_per_node=1))
        print(f"simulated {res.sim_time_ns / 1e3:.1f} us, "
              f"{res.events_processed} events")
        for rank, (received, ticket) in enumerate(res.returns):
            print(f"rank {rank}: received {received}, atomic ticket {ticket}")
    elif args.cmd == "figure":
        if args.hybrid:
            from repro.scale.figures import (fig7a_hybrid_series,
                                             fig8_hybrid_series)
            from repro.scale.units import parse_ranks_list

            ranks = parse_ranks_list(args.ranks) if args.ranks else None
            if args.id == "7a":
                title = ("Figure 7a (hybrid, paper scale): hashtable "
                         "[M inserts/s]")
                series = fig7a_hybrid_series(ranks)
            elif args.id == "8":
                title = "Figure 8 (hybrid, paper scale): MILC [ms]"
                series = fig8_hybrid_series(ranks)
            else:
                raise SystemExit(
                    f"--hybrid supports figures 7a and 8, not {args.id!r}")
            print(format_series_table(title, "p", series))
            print()
            print(ascii_chart(title, series))
            return 0
        title, series = _figure(args.id, fast=not args.full)
        print(format_series_table(title, "x", series))
        print()
        print(ascii_chart(title, series))
        if args.trace:
            from repro.bench.harness import slowest_point, trace_point

            worst = slowest_point(series)
            path = trace_point(
                lambda: _figure(args.id, fast=not args.full),
                args.trace, label=f"figure {args.id}")
            if path is None:
                print("no simulation captured (all points cached?)")
            else:
                if worst is not None:
                    print(f"slowest point: {worst[0]} at x={worst[1]} "
                          f"(y={worst[2]:.3g})")
                print(f"wrote {path} (load it in https://ui.perfetto.dev)")
    elif args.cmd == "models":
        from repro.models.params_fompi import PAPER_MODELS

        for name, m in sorted(PAPER_MODELS.items()):
            print(f"{name:12s} {m.name:14s} {m.domain_str()}")
    elif args.cmd == "calibrate":
        from repro.bench import microbench as mb
        from repro.models.fitting import fit_affine, relative_error

        sizes = [8, 512, 8192, 65536]
        for name, fn, base, slope in (
                ("put", mb.put_latency, 1000.0, 0.16),
                ("get", mb.get_latency, 1900.0, 0.17)):
            a, b = fit_affine(sizes, [fn("fompi", s) for s in sizes])
            print(f"{name}: measured {b:.3f} ns/B + {a / 1e3:.2f} us  "
                  f"(paper {slope} ns/B + {base / 1e3:.2f} us; "
                  f"err {100 * relative_error(a, base):.1f}% / "
                  f"{100 * relative_error(b, slope):.1f}%)")
    elif args.cmd == "trace":
        from repro.obs import run_workload, write_chrome_trace

        res, obs = run_workload(args.workload, nranks=args.ranks,
                                seed=args.seed)
        path = args.out or f"trace_{args.workload}.json"
        write_chrome_trace(path, obs, label=args.workload)
        print(f"simulated {res.sim_time_ns / 1e3:.1f} us, "
              f"{res.events_processed} events, {len(obs.spans)} spans")
        print(f"wrote {path} (load it in https://ui.perfetto.dev)")
    elif args.cmd == "report":
        from repro.obs import render_report, run_workload

        res, obs = run_workload(args.workload, nranks=args.ranks,
                                seed=args.seed)
        print(render_report(
            obs, title=f"{args.workload} ({args.ranks} ranks)",
            sim_time_ns=res.sim_time_ns,
            events_processed=res.events_processed))
    elif args.cmd == "check":
        return _check_cmd(args)
    elif args.cmd == "scale":
        return _scale_cmd(args)
    elif args.cmd == "serve":
        return _serve_cmd(args)
    elif args.cmd == "ft":
        return _ft_cmd(args)
    return 0


def _scale_cmd(args) -> int:
    """``repro scale``: parity gate, paper-scale smoke, or a single
    hybrid run.  Exit code 1 iff the gate / budget fails."""
    import json
    import time

    from repro.scale import WORKLOADS, format_ranks, run_hybrid
    from repro.scale.parity import parity_table
    from repro.scale.units import parse_ranks, parse_ranks_list

    workloads = (args.workloads.split(",") if args.workloads
                 else sorted(WORKLOADS))
    for w in workloads:
        if w not in WORKLOADS:
            raise SystemExit(f"unknown scale workload {w!r} "
                             f"(have {sorted(WORKLOADS)})")

    if args.action == "parity":
        ranks = parse_ranks_list(args.ranks or "64,256,1Ki")
        table = parity_table(ranks, ranks_per_node=args.rpn,
                             workloads=workloads)
        for case in table["cases"]:
            verdict = "exact" if case["exact"] else "MISMATCH"
            print(f"{case['workload']:6s} p={case['ranks']:>6s} "
                  f"rpn={args.rpn:<3d} msgs={case['messages']:>12,d} "
                  f"sampled={case['sampled']:<4d} {verdict}")
            if not case["exact"]:
                print(f"  diff: {json.dumps(case['diff'])}")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(table, fh, indent=1)
            print(f"wrote {args.out}")
        print("parity " + ("OK: hybrid reproduces full-fidelity message "
                           "counts exactly" if table["ok"] else "FAILED"))
        return 0 if table["ok"] else 1

    if args.action == "smoke":
        nranks = parse_ranks(args.ranks or "512Ki")
        rows = []
        t0 = time.perf_counter()
        for w in workloads:
            tw = time.perf_counter()
            res = run_hybrid(w, nranks, ranks_per_node=args.rpn)
            wall = time.perf_counter() - tw
            rows.append({
                "workload": w, "nranks": nranks,
                "ranks": format_ranks(nranks),
                "wall_s": round(wall, 3),
                "ranks_per_sec": round(nranks / wall),
                "messages": res.stats["messages"],
                "sampled": len(res.sample),
                "soa_nbytes": res.soa_nbytes,
                "sim_time_ns": res.sim_time_ns,
                "bounds": res.bounds,
            })
            print(f"{w:6s} p={format_ranks(nranks):>6s} "
                  f"msgs={res.stats['messages']:>14,d} "
                  f"wall={wall:6.2f}s "
                  f"({nranks / wall:,.0f} ranks/s)")
        total = time.perf_counter() - t0
        if args.out:
            with open(args.out, "w") as fh:
                json.dump({"nranks": nranks, "ranks_per_node": args.rpn,
                           "total_wall_s": round(total, 3),
                           "rows": rows}, fh, indent=1)
            print(f"wrote {args.out}")
        print(f"total wall {total:.2f}s"
              + (f" (budget {args.budget_s:.0f}s)" if args.budget_s else ""))
        if args.budget_s is not None and total > args.budget_s:
            print(f"smoke FAILED: {total:.2f}s exceeds the "
                  f"{args.budget_s:.0f}s budget")
            return 1
        return 0

    # action == "run"
    nranks = parse_ranks(args.ranks or "4Ki")
    res = run_hybrid(args.workload, nranks, ranks_per_node=args.rpn)
    print(f"{args.workload} p={format_ranks(nranks)} rpn={args.rpn}: "
          f"simulated {res.sim_time_ns / 1e3:.1f} us, "
          f"{res.events_processed} events, "
          f"{len(res.sample)} sampled ranks, "
          f"SoA {res.soa_nbytes / 1e6:.1f} MB")
    print(json.dumps(res.stats, indent=1))
    return 0


def _serve_cmd(args) -> int:
    """``repro serve``: open-loop KV serving with a deterministic
    tail-latency report.  Exit code 1 iff an SLO gate fails, the FT
    final state mismatches, or the checker finds a violation."""
    import json

    from repro.config import SimConfig
    from repro.serve.slo import build_report, render_report
    from repro.serve.zipf import ServeSpec

    if args.workload != "kvstore":
        raise SystemExit(f"unknown serve workload {args.workload!r} "
                         "(expected 'kvstore')")
    nranks = args.clients if args.clients is not None else args.ranks
    seed = SimConfig.seed if args.seed is None else args.seed
    spec = ServeSpec(nkeys=args.nkeys, theta=args.skew,
                     get_frac=args.get_frac, update_frac=args.update_frac,
                     total_requests=args.requests, rate_hz=args.rate,
                     seed=seed, ft_mode=args.ft)
    failures = []

    if args.ft:
        from repro.apps.kvstore.ft_kv import run_kv_crash_to_completion

        out = run_kv_crash_to_completion(
            nranks, spec, crash_rank=args.crash,
            crash_frac=args.crash_frac, interval=args.interval)
        report = build_report(out.recovered, spec, nranks, variant="rma-ft")
        report["ft"] = out.report_section()
        if not out.match:
            failures.append("final store state MISMATCHES the "
                            "fault-free run")
        if args.slo_gap_us is not None and \
                out.availability_gap_ns > args.slo_gap_us * 1e3:
            failures.append(
                f"availability gap {out.availability_gap_ns / 1e3:.2f} us "
                f"exceeds the {args.slo_gap_us:.2f} us SLO")
    elif args.variant == "mpi1":
        from repro.apps.kvstore.mpi1_kv import mpi1_kv_program
        from repro.config import MachineConfig, ObsConfig
        from repro.runtime.job import run_spmd

        res = run_spmd(mpi1_kv_program, nranks, spec,
                       machine=MachineConfig(ranks_per_node=args.rpn),
                       sim=SimConfig(seed=spec.seed),
                       obs=ObsConfig(enabled=True))
        report = build_report(res, spec, nranks, variant="mpi1")
    else:
        from repro.serve.driver import run_kv_serve

        res = run_kv_serve(nranks, spec, n_stripes=args.stripes,
                           ranks_per_node=args.rpn, check=args.check)
        report = build_report(res, spec, nranks, variant="rma")
        if args.check:
            from repro.check.report import render_check_report

            print(render_check_report(res.check,
                                      f"serve kvstore ({nranks} ranks)"))
            print()
            if not res.check.clean:
                failures.append("memory-model checker found violations")

    print(render_report(report))
    p99_us = report["latency_ns"]["p99"] / 1e3
    if args.slo_p99_us is not None and p99_us > args.slo_p99_us:
        failures.append(f"p99 {p99_us:.2f} us exceeds the "
                        f"{args.slo_p99_us:.2f} us SLO")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    for msg in failures:
        print(f"SLO FAILED: {msg}")
    return 1 if failures else 0


def _ft_cmd(args) -> int:
    """``repro ft``: crash-to-completion experiments over the rollback-
    recovery layer.  Exit code 1 iff any final state mismatched."""
    import json

    from repro.config import SimConfig
    from repro.ft.workloads import run_crash_to_completion, soak

    seed = SimConfig.seed if args.seed is None else args.seed
    if args.workload == "soak":
        rows = soak(args.runs, nranks=args.ranks, inserts=args.inserts,
                    base_seed=seed)
        for r in rows:
            print(f"run {r['run']}: seed={r['seed']} "
                  f"crash_rank={r['crash_rank']} mode={r['mode']:6s} "
                  f"t_crash={r['crash_time_ns']}ns "
                  f"restored={r['ranks_restored']} "
                  f"{'MATCH' if r['match'] else 'MISMATCH'}")
        ok = all(r["match"] for r in rows)
        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                json.dump(rows, fh, indent=2, default=str)
            print(f"wrote {args.stats_out}")
        print(f"{sum(r['match'] for r in rows)}/{len(rows)} runs "
              f"recovered to the fault-free state")
        return 0 if ok else 1
    if args.workload != "hashtable":
        raise SystemExit(f"unknown ft workload {args.workload!r} "
                         "(expected 'hashtable' or 'soak')")
    out = run_crash_to_completion(
        args.ranks, args.inserts, seed=seed, crash_rank=args.crash_rank,
        crash_frac=args.crash_frac, mode=args.mode,
        interval=args.interval, policy=args.policy)
    row = out.stats_row()
    print(f"reference run: {out.reference.sim_time_ns / 1e3:.1f} us "
          f"fault-free")
    print(f"crashed rank {out.crash_rank} at {out.crash_time_ns} ns "
          f"({args.crash_frac:.0%} of reference), mode={out.mode}")
    print(f"recovered run: {out.recovered.sim_time_ns / 1e3:.1f} us, "
          f"{row['ranks_restored']} rank(s) restored")
    ftstats = row.get("ft") or {}
    if ftstats:
        print("ft stats: " + ", ".join(f"{k}={v}"
                                       for k, v in sorted(ftstats.items())))
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(row, fh, indent=2, default=str)
        print(f"wrote {args.stats_out}")
    print("final state: "
          + ("bit-identical to fault-free run"
             if out.match else "MISMATCH vs fault-free run"))
    return 0 if out.match else 1


def _check_cmd(args) -> int:
    """``repro check``: named workload or example script, optional
    perturbation sweep.  Exit code 1 iff any violation was found."""
    from repro.check.report import render_check_report

    dirty = False
    if args.workload.endswith(".py"):
        # Run an arbitrary script (e.g. examples/*.py); every world it
        # builds gets a checker via the capture block.
        import runpy

        from repro.check.core import check_capture

        with check_capture() as checkers:
            runpy.run_path(args.workload, run_name="__main__")
        if not checkers:
            print(f"{args.workload}: no simulated runs captured")
            return 0
        for i, ck in enumerate(checkers):
            title = f"{args.workload} run {i}" if len(checkers) > 1 \
                else args.workload
            print(render_check_report(ck, title))
            dirty |= not ck.clean
        return 1 if dirty else 0

    from repro.check.runner import check_workload

    res, ck = check_workload(args.workload, nranks=args.ranks,
                             seed=args.seed, ranks_per_node=args.rpn,
                             jitter=args.jitter)
    print(render_check_report(
        ck, f"{args.workload} ({args.ranks} ranks, "
            f"{res.sim_time_ns / 1e3:.1f} us simulated)"))
    dirty |= not ck.clean
    if args.perturb > 0:
        from repro.check.perturb import perturb_sweep
        from repro.check.report import render_perturb_report

        sweep = perturb_sweep(args.workload, args.perturb,
                              nranks=args.ranks, base_seed=args.seed,
                              ranks_per_node=args.rpn)
        print()
        print(render_perturb_report(sweep))
        dirty |= not sweep.clean
    return 1 if dirty else 0


if __name__ == "__main__":
    raise SystemExit(main())
