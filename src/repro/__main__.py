"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``            run the quickstart program and print the results
``figure <id>``     regenerate one figure series (4a 4b 4c 5a 5b 5c 6a 6b
                    6c 7a 7b 7c 8) and print it as a table + ASCII chart
``models``          print the paper's performance-model catalog
``calibrate``       fit the simulated put/get/atomics series against the
                    paper's measured functions and report errors
``trace <wl>``      run a named workload (putget, locks, fence, pscw)
                    under observability and write a Chrome trace-event
                    JSON file (open in Perfetto / chrome://tracing)
``report [wl]``     run a named workload and print the plain-text run
                    report (span aggregates, counters, histograms, links)
``check <wl>``      run a named workload (or a ``.py`` example script)
                    under the memory-model checker and report every RMA
                    semantics violation; ``--perturb N`` sweeps N seeded
                    schedule perturbations to manifest latent races
                    (exit code 1 when violations are found)
``ft <wl>``         crash-to-completion experiment: run the FT workload
                    (``hashtable``) fault-free, crash ``--crash-rank`` at
                    ``--crash-frac`` of the reference run, recover, and
                    compare final states bit-for-bit; ``ft soak`` sweeps
                    ``--runs`` seeded randomized crash schedules (exit
                    code 1 on any mismatch)
"""

from __future__ import annotations

import argparse

from repro.bench import Series, format_series_table
from repro.bench.report import ascii_chart


def _figure(fig: str, fast: bool) -> tuple[str, list]:
    from repro.bench import microbench as mb
    from repro.bench import syncbench as sb
    from repro.bench.appbench import dsde_time_us, hashtable_rate, milc_time_s

    sizes = [8, 512, 8192, 65536] if fast else [8, 64, 512, 4096, 32768,
                                                262144]
    ps = [2, 8, 32] if fast else [2, 8, 32, 128]

    if fig in ("4a", "4b"):
        fn = mb.put_latency if fig == "4a" else mb.get_latency
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, fn(t, size) / 1e3)
            series.append(s)
        return (f"Figure {fig}: inter-node latency [us]", series)
    if fig == "4c":
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, mb.put_latency(t, size, intra=True) / 1e3)
            series.append(s)
        return ("Figure 4c: intra-node put latency [us]", series)
    if fig == "5a":
        series = []
        for t in ("fompi", "upc", "cray22"):
            s = Series(label=t)
            for size in sizes:
                s.add(size, 100 * mb.overlap_fraction(t, size))
            series.append(s)
        return ("Figure 5a: overlap [%]", series)
    if fig in ("5b", "5c"):
        intra = fig == "5c"
        series = []
        for t in mb.LATENCY_TRANSPORTS:
            s = Series(label=t)
            for size in sizes:
                s.add(size, mb.message_rate(t, size, intra=intra,
                                            nmsgs=200) / 1e6)
            series.append(s)
        return (f"Figure {fig}: message rate [M/s]", series)
    if fig == "6a":
        series = []
        for kind in ("fompi_sum", "fompi_min"):
            s = Series(label=kind)
            for n in (1, 64, 4096):
                s.add(n, mb.atomic_latency(kind, n, reps=2) / 1e3)
            series.append(s)
        return ("Figure 6a: atomics [us]", series)
    if fig == "6b":
        series = []
        for t in ("fompi", "upc", "caf", "cray22"):
            s = Series(label=t)
            for p in ps:
                s.add(p, sb.global_sync_latency(t, p) / 1e3)
            series.append(s)
        return ("Figure 6b: global sync [us]", series)
    if fig == "6c":
        series = []
        for t in ("fompi", "cray22"):
            s = Series(label=t)
            for p in [4, 16, 64]:
                s.add(p, sb.pscw_ring_latency(t, p) / 1e3)
            series.append(s)
        return ("Figure 6c: PSCW ring [us]", series)
    if fig == "7a":
        series = []
        for t in ("fompi", "upc", "mpi1"):
            s = Series(label=t)
            for p in [2, 8, 32] + ([] if fast else [128]):
                s.add(p, hashtable_rate(t, p, 32) / 1e6)
            series.append(s)
        return ("Figure 7a: hashtable [M inserts/s]", series)
    if fig == "7b":
        series = []
        for proto in ("alltoall", "reduce_scatter", "nbx", "rma"):
            s = Series(label=proto)
            for p in [4, 16] + ([] if fast else [64]):
                s.add(p, dsde_time_us(proto, p, 6))
            series.append(s)
        return ("Figure 7b: DSDE [us]", series)
    if fig == "7c":
        from repro.apps.fft import FftSpec
        from repro.bench.appbench import fft_gflops

        spec = FftSpec(nx=32, ny=32, nz=32, flop_rate=2.5e10)
        series = []
        for v, label in (("mpi1", "mpi1"), ("rma_overlap", "fompi")):
            s = Series(label=label)
            for p in (8, 32):
                s.add(p, fft_gflops(v, p, spec, ranks_per_node=2))
            series.append(s)
        return ("Figure 7c: FFT [GFlop/s]", series)
    if fig == "8":
        series = []
        for v, label in (("mpi1", "mpi1"), ("rma", "fompi"), ("upc", "upc")):
            s = Series(label=label)
            for p in (8, 32):
                s.add(p, milc_time_s(v, p) * 1e3)
            series.append(s)
        return ("Figure 8: MILC [ms]", series)
    raise SystemExit(f"unknown figure {fig!r}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    sub.add_parser("demo")
    f = sub.add_parser("figure")
    f.add_argument("id")
    f.add_argument("--full", action="store_true",
                   help="larger sweeps (slower)")
    f.add_argument("--trace", metavar="PATH", default=None,
                   help="re-run the figure under observability and write "
                        "a Chrome trace of its slowest simulated point")
    sub.add_parser("models")
    sub.add_parser("calibrate")
    t = sub.add_parser("trace")
    t.add_argument("workload")
    t.add_argument("--ranks", type=int, default=4)
    t.add_argument("--seed", type=int, default=None)
    t.add_argument("--out", default=None,
                   help="output path (default trace_<workload>.json)")
    r = sub.add_parser("report")
    r.add_argument("workload", nargs="?", default="putget")
    r.add_argument("--ranks", type=int, default=4)
    r.add_argument("--seed", type=int, default=None)
    c = sub.add_parser("check")
    c.add_argument("workload",
                   help="named workload (racy_*/clean_*/putget/locks/"
                        "fence/pscw) or path to a .py script to run "
                        "under check_capture()")
    c.add_argument("--ranks", type=int, default=4)
    c.add_argument("--seed", type=int, default=None)
    c.add_argument("--rpn", type=int, default=1,
                   help="ranks per node (default 1)")
    c.add_argument("--perturb", type=int, metavar="N", default=0,
                   help="additionally rerun under N seeded schedule "
                        "perturbations (latency jitter)")
    c.add_argument("--jitter", action="store_true",
                   help="perturb this single run (used by the printed "
                        "reproducer commands)")
    ft = sub.add_parser("ft")
    ft.add_argument("workload", nargs="?", default="hashtable",
                    help="'hashtable' (single crash-to-completion "
                         "experiment) or 'soak' (seeded randomized sweep)")
    ft.add_argument("--ranks", type=int, default=4)
    ft.add_argument("--inserts", type=int, default=4,
                    help="inserts per rank")
    ft.add_argument("--seed", type=int, default=None)
    ft.add_argument("--crash-rank", type=int, default=1)
    ft.add_argument("--crash-frac", type=float, default=0.5,
                    help="crash time as a fraction of the fault-free "
                         "run's length")
    ft.add_argument("--mode", choices=("spare", "shrink"), default="spare")
    ft.add_argument("--interval", type=int, default=2,
                    help="checkpoint every N inserts")
    ft.add_argument("--policy", choices=("log", "ckpt_only"), default="log")
    ft.add_argument("--runs", type=int, default=5,
                    help="number of soak runs (soak workload only)")
    ft.add_argument("--stats-out", metavar="PATH", default=None,
                    help="write per-run recovery stats as JSON")
    args = ap.parse_args(argv)

    if args.cmd == "demo":
        import numpy as np

        from repro import run_spmd
        from repro.config import MachineConfig
        from repro.rma.enums import Op

        def program(ctx):
            win = yield from ctx.rma.win_allocate(4096, disp_unit=8)
            yield from win.fence()
            yield from win.put(np.array([100 + ctx.rank], np.int64),
                               (ctx.rank + 1) % ctx.nranks, 0)
            yield from win.fence(no_succeed=True)
            yield from win.lock_all()
            old = yield from win.fetch_and_op(np.int64(1), 0, 1, Op.SUM)
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return int(win.local_view(np.int64)[0]), int(old)

        res = run_spmd(program, 4, machine=MachineConfig(ranks_per_node=1))
        print(f"simulated {res.sim_time_ns / 1e3:.1f} us, "
              f"{res.events_processed} events")
        for rank, (received, ticket) in enumerate(res.returns):
            print(f"rank {rank}: received {received}, atomic ticket {ticket}")
    elif args.cmd == "figure":
        title, series = _figure(args.id, fast=not args.full)
        print(format_series_table(title, "x", series))
        print()
        print(ascii_chart(title, series))
        if args.trace:
            from repro.bench.harness import slowest_point, trace_point

            worst = slowest_point(series)
            path = trace_point(
                lambda: _figure(args.id, fast=not args.full),
                args.trace, label=f"figure {args.id}")
            if path is None:
                print("no simulation captured (all points cached?)")
            else:
                if worst is not None:
                    print(f"slowest point: {worst[0]} at x={worst[1]} "
                          f"(y={worst[2]:.3g})")
                print(f"wrote {path} (load it in https://ui.perfetto.dev)")
    elif args.cmd == "models":
        from repro.models.params_fompi import PAPER_MODELS

        for name, m in sorted(PAPER_MODELS.items()):
            print(f"{name:12s} {m.name:14s} {m.domain_str()}")
    elif args.cmd == "calibrate":
        from repro.bench import microbench as mb
        from repro.models.fitting import fit_affine, relative_error

        sizes = [8, 512, 8192, 65536]
        for name, fn, base, slope in (
                ("put", mb.put_latency, 1000.0, 0.16),
                ("get", mb.get_latency, 1900.0, 0.17)):
            a, b = fit_affine(sizes, [fn("fompi", s) for s in sizes])
            print(f"{name}: measured {b:.3f} ns/B + {a / 1e3:.2f} us  "
                  f"(paper {slope} ns/B + {base / 1e3:.2f} us; "
                  f"err {100 * relative_error(a, base):.1f}% / "
                  f"{100 * relative_error(b, slope):.1f}%)")
    elif args.cmd == "trace":
        from repro.obs import run_workload, write_chrome_trace

        res, obs = run_workload(args.workload, nranks=args.ranks,
                                seed=args.seed)
        path = args.out or f"trace_{args.workload}.json"
        write_chrome_trace(path, obs, label=args.workload)
        print(f"simulated {res.sim_time_ns / 1e3:.1f} us, "
              f"{res.events_processed} events, {len(obs.spans)} spans")
        print(f"wrote {path} (load it in https://ui.perfetto.dev)")
    elif args.cmd == "report":
        from repro.obs import render_report, run_workload

        res, obs = run_workload(args.workload, nranks=args.ranks,
                                seed=args.seed)
        print(render_report(
            obs, title=f"{args.workload} ({args.ranks} ranks)",
            sim_time_ns=res.sim_time_ns,
            events_processed=res.events_processed))
    elif args.cmd == "check":
        return _check_cmd(args)
    elif args.cmd == "ft":
        return _ft_cmd(args)
    return 0


def _ft_cmd(args) -> int:
    """``repro ft``: crash-to-completion experiments over the rollback-
    recovery layer.  Exit code 1 iff any final state mismatched."""
    import json

    from repro.config import SimConfig
    from repro.ft.workloads import run_crash_to_completion, soak

    seed = SimConfig.seed if args.seed is None else args.seed
    if args.workload == "soak":
        rows = soak(args.runs, nranks=args.ranks, inserts=args.inserts,
                    base_seed=seed)
        for r in rows:
            print(f"run {r['run']}: seed={r['seed']} "
                  f"crash_rank={r['crash_rank']} mode={r['mode']:6s} "
                  f"t_crash={r['crash_time_ns']}ns "
                  f"restored={r['ranks_restored']} "
                  f"{'MATCH' if r['match'] else 'MISMATCH'}")
        ok = all(r["match"] for r in rows)
        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                json.dump(rows, fh, indent=2, default=str)
            print(f"wrote {args.stats_out}")
        print(f"{sum(r['match'] for r in rows)}/{len(rows)} runs "
              f"recovered to the fault-free state")
        return 0 if ok else 1
    if args.workload != "hashtable":
        raise SystemExit(f"unknown ft workload {args.workload!r} "
                         "(expected 'hashtable' or 'soak')")
    out = run_crash_to_completion(
        args.ranks, args.inserts, seed=seed, crash_rank=args.crash_rank,
        crash_frac=args.crash_frac, mode=args.mode,
        interval=args.interval, policy=args.policy)
    row = out.stats_row()
    print(f"reference run: {out.reference.sim_time_ns / 1e3:.1f} us "
          f"fault-free")
    print(f"crashed rank {out.crash_rank} at {out.crash_time_ns} ns "
          f"({args.crash_frac:.0%} of reference), mode={out.mode}")
    print(f"recovered run: {out.recovered.sim_time_ns / 1e3:.1f} us, "
          f"{row['ranks_restored']} rank(s) restored")
    ftstats = row.get("ft") or {}
    if ftstats:
        print("ft stats: " + ", ".join(f"{k}={v}"
                                       for k, v in sorted(ftstats.items())))
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(row, fh, indent=2, default=str)
        print(f"wrote {args.stats_out}")
    print("final state: "
          + ("bit-identical to fault-free run"
             if out.match else "MISMATCH vs fault-free run"))
    return 0 if out.match else 1


def _check_cmd(args) -> int:
    """``repro check``: named workload or example script, optional
    perturbation sweep.  Exit code 1 iff any violation was found."""
    from repro.check.report import render_check_report

    dirty = False
    if args.workload.endswith(".py"):
        # Run an arbitrary script (e.g. examples/*.py); every world it
        # builds gets a checker via the capture block.
        import runpy

        from repro.check.core import check_capture

        with check_capture() as checkers:
            runpy.run_path(args.workload, run_name="__main__")
        if not checkers:
            print(f"{args.workload}: no simulated runs captured")
            return 0
        for i, ck in enumerate(checkers):
            title = f"{args.workload} run {i}" if len(checkers) > 1 \
                else args.workload
            print(render_check_report(ck, title))
            dirty |= not ck.clean
        return 1 if dirty else 0

    from repro.check.runner import check_workload

    res, ck = check_workload(args.workload, nranks=args.ranks,
                             seed=args.seed, ranks_per_node=args.rpn,
                             jitter=args.jitter)
    print(render_check_report(
        ck, f"{args.workload} ({args.ranks} ranks, "
            f"{res.sim_time_ns / 1e3:.1f} us simulated)"))
    dirty |= not ck.clean
    if args.perturb > 0:
        from repro.check.perturb import perturb_sweep
        from repro.check.report import render_perturb_report

        sweep = perturb_sweep(args.workload, args.perturb,
                              nranks=args.ranks, base_seed=args.seed,
                              ranks_per_node=args.rpn)
        print()
        print(render_perturb_report(sweep))
        dirty |= not sweep.clean
    return 1 if dirty else 0


if __name__ == "__main__":
    raise SystemExit(main())
