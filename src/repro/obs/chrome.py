"""Chrome trace-event JSON exporter (Perfetto / chrome://tracing).

Emits the standard `traceEvents` array: one *process* group for the
simulated ranks and one for the NICs, one *thread* (track) per rank and
per NIC node.  Spans become complete events (``ph: "X"``), instants
become ``ph: "i"`` marks.  Timestamps are simulated nanoseconds divided
by 1000 (the trace-event unit is microseconds).

Output is deterministic byte for byte: events are sorted by a total
order, dict keys are sorted, and no wall-clock data is embedded -- two
runs with the same seed produce identical files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Instrumentation

__all__ = ["chrome_trace", "chrome_trace_json", "write_chrome_trace",
           "PID_RANKS", "PID_NICS"]

PID_RANKS = 1
PID_NICS = 2

_TRACK_PIDS = {"rank": PID_RANKS, "nic": PID_NICS}


def _metadata_events(obs: "Instrumentation") -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": PID_RANKS, "tid": 0,
         "args": {"name": "ranks"}},
        {"ph": "M", "name": "process_sort_index", "pid": PID_RANKS, "tid": 0,
         "args": {"sort_index": 0}},
        {"ph": "M", "name": "process_name", "pid": PID_NICS, "tid": 0,
         "args": {"name": "nics"}},
        {"ph": "M", "name": "process_sort_index", "pid": PID_NICS, "tid": 0,
         "args": {"sort_index": 1}},
    ]
    tracks: set[tuple[str, int]] = {(s.track, s.tid) for s in obs.spans.spans}
    for rank in range(obs.nranks):
        tracks.add(("rank", rank))
    for track, tid in sorted(tracks):
        pid = _TRACK_PIDS.get(track, PID_RANKS)
        label = f"rank {tid}" if track == "rank" else f"nic {tid}"
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": label}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    return events


def chrome_trace(obs: "Instrumentation", *,
                 label: str = "") -> dict[str, Any]:
    """The trace as a JSON-ready dict (see :func:`chrome_trace_json`)."""
    events = _metadata_events(obs)
    spans = sorted(
        obs.spans.spans,
        key=lambda s: (s.start_ns, s.dur_ns, s.track, s.tid, s.name, s.args))
    for s in spans:
        ev: dict[str, Any] = {
            "name": s.name,
            "cat": s.cat,
            "pid": _TRACK_PIDS.get(s.track, PID_RANKS),
            "tid": s.tid,
            "ts": s.start_ns / 1000.0,
        }
        if s.dur_ns > 0:
            ev["ph"] = "X"
            ev["dur"] = s.dur_ns / 1000.0
        else:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        if s.args:
            ev["args"] = dict(s.args)
        events.append(ev)
    other: dict[str, Any] = {"nranks": obs.nranks,
                             "spans_dropped": obs.spans.dropped}
    if label:
        other["label"] = label
    other.update(sorted(obs.meta.items()))
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": other}


def chrome_trace_json(obs: "Instrumentation", *, label: str = "") -> str:
    """Serialized trace; byte-identical for identical runs."""
    return json.dumps(chrome_trace(obs, label=label), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome_trace(path: str, obs: "Instrumentation", *,
                       label: str = "") -> str:
    """Write the trace to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(obs, label=label))
    return path
