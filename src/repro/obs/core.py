"""The per-run instrumentation object and the capture override.

:class:`Instrumentation` bundles a :class:`~repro.sim.trace.SpanLog`
(span timeline) with a :class:`~repro.obs.metrics.MetricsRegistry`
(per-rank counters/gauges/histograms).  One instance is attached to a
:class:`~repro.runtime.world.World` when observability is enabled; every
protocol-layer hook is behind a single ``obs is None`` test, so disabled
runs execute the exact pre-observability code path.

Recording NEVER schedules events or advances the clock: spans are list
appends, metrics are dict updates.  Enabling observability therefore
cannot perturb a schedule -- the test suite asserts enabled and disabled
runs are bit-identical (same event count, same final simulated time).

:func:`capture` is the harness hook: inside the context manager, every
newly built world gets a fresh ``Instrumentation`` even when its config
leaves observability off, and the instances are collected for export.
This is how benchmark drivers trace their slowest point without growing
an ``obs`` parameter through every call chain.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.sim.trace import SpanLog

__all__ = ["Instrumentation", "capture", "active_capture"]


class Instrumentation:
    """Span timeline + metrics registry for one simulated run."""

    def __init__(self, nranks: int, *, max_spans: int = 500_000,
                 nic_marks: bool = False) -> None:
        # Local import keeps repro.sim free of an obs dependency.
        from repro.obs.metrics import MetricsRegistry

        self.nranks = nranks
        self.spans = SpanLog(limit=max_spans)
        self.metrics = MetricsRegistry()
        self.nic_marks = nic_marks
        self.meta: dict[str, Any] = {}

    # -- span helpers ----------------------------------------------------
    def rank_span(self, rank: int, name: str, start_ns: int, end_ns: int,
                  cat: str = "rma", args: dict | None = None) -> None:
        """A finished span on ``rank``'s track."""
        self.spans.add("rank", rank, name, cat, start_ns, end_ns, args)

    def rank_instant(self, rank: int, name: str, ts_ns: int,
                     cat: str = "rma", args: dict | None = None) -> None:
        self.spans.instant("rank", rank, name, cat, ts_ns, args)

    def nic_span(self, node: int, name: str, start_ns: int, end_ns: int,
                 cat: str = "nic", args: dict | None = None) -> None:
        """A finished span on node ``node``'s NIC track."""
        self.spans.add("nic", node, name, cat, start_ns, end_ns, args)

    def nic_instant(self, node: int, name: str, ts_ns: int,
                    cat: str = "nic", args: dict | None = None) -> None:
        self.spans.instant("nic", node, name, cat, ts_ns, args)

    # -- layer-specific hooks -------------------------------------------
    def on_op(self, rank: int, kind: str, target: int, t0: int,
              remote_complete: int, nbytes: int) -> None:
        """One DMAPP data operation: issue at ``t0`` on ``rank``,
        globally complete at ``remote_complete``."""
        self.rank_span(rank, f"dmapp.{kind}", t0,
                       max(t0, remote_complete), cat="dmapp",
                       args={"target": target, "bytes": nbytes})
        self.metrics.count(f"dmapp.{kind}", rank)
        self.metrics.observe(f"{kind}_latency_ns", rank,
                             max(0, remote_complete - t0))

    def on_retransmit(self, rank: int, kind: str, target: int, ts_ns: int,
                      attempt: int, wait_ns: int) -> None:
        """One transport retransmission (hardened DMAPP endpoint)."""
        self.rank_instant(rank, f"retransmit.{kind}", ts_ns, cat="fault",
                          args={"target": target, "attempt": attempt})
        self.metrics.count("retransmits", rank)
        self.metrics.observe("retransmit_backoff_ns", rank, wait_ns)

    def on_link_retransmit(self, src_node: int, dst_node: int, ts_ns: int,
                           attempt: int, wait_ns: int) -> None:
        """One link-level packet retransmission (reliable MPI-1
        delivery); keyed by source *node*, on the NIC track."""
        self.nic_instant(src_node, "retransmit.packet", ts_ns, cat="fault",
                         args={"dst": dst_node, "attempt": attempt})
        self.metrics.count("link_retransmits", src_node)
        self.metrics.observe("link_retransmit_backoff_ns", src_node, wait_ns)

    def on_packet(self, src_node: int, dst_node: int, nbytes: int,
                  deliver_ns: int, is_amo: bool) -> None:
        """Every delivered network packet (called by the network layer)."""
        self.metrics.link_bytes(src_node, dst_node, nbytes)
        if self.nic_marks:
            self.nic_instant(dst_node, "amo" if is_amo else "pkt",
                             deliver_ns, args={"src": src_node,
                                               "bytes": nbytes})

    def snapshot(self) -> dict[str, Any]:
        """Metrics + span statistics as one JSON-ready dict."""
        return {
            "nranks": self.nranks,
            "spans": len(self.spans),
            "spans_dropped": self.spans.dropped,
            "metrics": self.metrics.snapshot(),
            **({"meta": dict(sorted(self.meta.items()))} if self.meta else {}),
        }


# -- capture override ----------------------------------------------------
_CAPTURE: list[Instrumentation] | None = None


def active_capture() -> list[Instrumentation] | None:
    """The live capture sink, or None (consulted by World construction)."""
    return _CAPTURE


@contextmanager
def capture() -> Iterator[list[Instrumentation]]:
    """Collect instrumentation from every run built inside the block.

    Nested captures are not supported; the inner block simply keeps the
    outer sink.  Runs served from the benchmark cache produce no
    instrumentation (nothing simulated, nothing to record), so callers
    that need spans should bypass the cache for the traced point.
    """
    global _CAPTURE
    if _CAPTURE is not None:
        yield _CAPTURE
        return
    sink: list[Instrumentation] = []
    _CAPTURE = sink
    try:
        yield sink
    finally:
        _CAPTURE = None
