"""Plain-text run reports from an :class:`~repro.obs.core.Instrumentation`.

The report aggregates the span timeline by span name (count / total /
mean / max simulated time) and appends the metrics registry: per-rank
counters, histogram summaries (lock hold times, epoch durations,
retransmit backoff, operation latencies), and the busiest network links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Instrumentation

__all__ = ["render_report", "span_aggregates"]


def span_aggregates(obs: "Instrumentation") -> list[dict[str, Any]]:
    """Per-span-name aggregates, sorted by total time descending."""
    agg: dict[str, list[int]] = {}
    for s in obs.spans.spans:
        row = agg.get(s.name)
        if row is None:
            agg[s.name] = [1, s.dur_ns, s.dur_ns]
        else:
            row[0] += 1
            row[1] += s.dur_ns
            row[2] = max(row[2], s.dur_ns)
    out = [{"name": name, "count": n, "total_ns": total, "max_ns": mx,
            "mean_ns": round(total / n, 1)}
           for name, (n, total, mx) in agg.items()]
    out.sort(key=lambda r: (-r["total_ns"], r["name"]))
    return out


def _fmt_us(ns: float) -> str:
    return f"{ns / 1000.0:.2f}"


def render_report(obs: "Instrumentation", *, title: str = "run report",
                  sim_time_ns: int | None = None,
                  events_processed: int | None = None,
                  top: int = 12) -> str:
    """Human-readable report; deterministic for identical runs."""
    from repro.bench.harness import format_table

    lines = [title, "=" * len(title)]
    lines.append(f"ranks: {obs.nranks}")
    if sim_time_ns is not None:
        lines.append(f"simulated time: {sim_time_ns / 1000.0:.1f} us")
    if events_processed is not None:
        lines.append(f"kernel events: {events_processed}")
    lines.append(f"spans recorded: {len(obs.spans)}"
                 + (f" (+{obs.spans.dropped} dropped)"
                    if obs.spans.dropped else ""))

    # Instants (zero duration: packet marks, retransmits, notifications)
    # carry no time; they are visible in the counters section instead.
    aggs = [a for a in span_aggregates(obs) if a["total_ns"] > 0]
    if aggs:
        rows = [[a["name"], a["count"], _fmt_us(a["total_ns"]),
                 _fmt_us(a["mean_ns"]), _fmt_us(a["max_ns"])]
                for a in aggs[:top]]
        lines.append("")
        lines.append(format_table(
            "where simulated time goes (by span)",
            ["span", "count", "total us", "mean us", "max us"], rows))

    snap = obs.metrics.snapshot()
    counters = snap["counters"]
    if counters:
        rows = [[name, sum(ranks.values()),
                 max(ranks.values()), len(ranks)]
                for name, ranks in counters.items()]
        lines.append("")
        lines.append(format_table(
            "counters", ["metric", "total", "max/rank", "ranks"], rows))

    hists = snap["histograms"]
    if hists:
        rows = []
        for name in hists:
            merged = obs.metrics.merged_histogram(name)
            rows.append([name, merged.count, _fmt_us(merged.mean),
                         _fmt_us(merged.min or 0), _fmt_us(merged.max or 0)])
        lines.append("")
        lines.append(format_table(
            "simulated-time histograms",
            ["metric", "samples", "mean us", "min us", "max us"], rows))

    links = snap["link_bytes"]
    if links:
        busiest = sorted(links.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        rows = [[link, nbytes] for link, nbytes in busiest]
        lines.append("")
        lines.append(format_table(
            "busiest links", ["link (node->node)", "bytes"], rows))

    return "\n".join(lines)
