"""Named demo workloads for ``repro trace`` / ``repro report``.

Each workload is a small SPMD program exercising one protocol family so
its trace shows a characteristic timeline: ``putget`` (passive-target
puts + flushes), ``locks`` (contended exclusive locks), ``fence``
(active-target epochs), ``pscw`` (general active target).  All are
deterministic: same seed, same schedule, same trace bytes.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.config import MachineConfig, RunResult, SimConfig
from repro.obs.core import Instrumentation
from repro.rma.enums import LockType

__all__ = ["WORKLOADS", "run_workload"]


def wl_putget(ctx, iters: int = 16, nbytes: int = 64):
    """lock_all epoch: ping data to the right neighbor, flush each put."""
    data = np.full(nbytes, ctx.rank, np.uint8)
    out = np.empty(nbytes, np.uint8)
    win = yield from ctx.rma.win_allocate(max(nbytes, 8))
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    right = (ctx.rank + 1) % ctx.nranks
    for _ in range(iters):
        yield from win.put(data, right, 0)
        yield from win.flush(right)
    yield from win.get(out, right, 0)
    yield from win.flush(right)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    return int(out[0])


def wl_locks(ctx, iters: int = 6):
    """Every rank contends for an exclusive lock on rank 0, then holds a
    shared lock on its neighbor -- shows acquire/hold/release spans."""
    win = yield from ctx.rma.win_allocate(64, disp_unit=8)
    yield from ctx.coll.barrier()
    ticket = np.int64(1)
    for _ in range(iters):
        yield from win.lock(0, LockType.EXCLUSIVE)
        old = yield from win.fetch_and_op(ticket, 0, 0)
        yield from win.unlock(0)
        yield from win.lock((ctx.rank + 1) % ctx.nranks)
        yield from win.unlock((ctx.rank + 1) % ctx.nranks)
    yield from ctx.coll.barrier()
    yield from win.free()
    return int(old)


def wl_fence(ctx, iters: int = 4, nbytes: int = 256):
    """Fence-delimited epochs with neighbor puts (Figure 6b's shape)."""
    data = np.full(nbytes, ctx.rank, np.uint8)
    win = yield from ctx.rma.win_allocate(nbytes)
    yield from win.fence()
    for _ in range(iters):
        yield from win.put(data, (ctx.rank + 1) % ctx.nranks, 0)
        yield from win.fence()
    yield from win.fence(no_succeed=True)
    return ctx.now


def wl_pscw(ctx, iters: int = 3, nbytes: int = 64):
    """PSCW ring: expose to the left neighbor, access the right one."""
    data = np.full(nbytes, ctx.rank, np.uint8)
    win = yield from ctx.rma.win_allocate(nbytes)
    yield from ctx.coll.barrier()
    left = (ctx.rank - 1) % ctx.nranks
    right = (ctx.rank + 1) % ctx.nranks
    for _ in range(iters):
        yield from win.post([left])
        yield from win.start([right])
        yield from win.put(data, right, 0)
        yield from win.complete()
        yield from win.wait()
    yield from ctx.coll.barrier()
    return ctx.now


WORKLOADS: dict[str, Callable[..., Any]] = {
    "putget": wl_putget,
    "locks": wl_locks,
    "fence": wl_fence,
    "pscw": wl_pscw,
}


def run_workload(name: str, nranks: int = 4, *, seed: int | None = None,
                 ranks_per_node: int = 1,
                 **kwargs: Any) -> tuple[RunResult, Instrumentation]:
    """Run one named workload with observability on; returns
    ``(RunResult, Instrumentation)``."""
    from repro.config import ObsConfig
    from repro.runtime.job import run_spmd

    try:
        program = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}") from None
    sim = SimConfig() if seed is None else SimConfig(seed=seed)
    res = run_spmd(program, nranks,
                   machine=MachineConfig(ranks_per_node=ranks_per_node),
                   sim=sim, obs=ObsConfig(enabled=True), **kwargs)
    assert res.obs is not None
    return res, res.obs
