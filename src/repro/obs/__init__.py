"""Observability layer: spans, per-rank metrics, exporters, run reports.

The protocol layers (``rma``, ``dmapp``, ``runtime``, ``machine``) open
named spans and update metrics on the simulated clock whenever a
:class:`~repro.obs.core.Instrumentation` is attached to the world --
enable it with ``ObsConfig(enabled=True)`` (see :mod:`repro.config`) or
wrap arbitrary driver code in :func:`repro.obs.capture`.  When disabled,
every hook is a single ``is None`` test and schedules stay bit-identical
to uninstrumented code.

Exports: Chrome trace-event JSON (:mod:`repro.obs.chrome`, loadable in
Perfetto with one track per rank and per NIC) and plain-text run reports
(:mod:`repro.obs.report`).  ``repro trace <workload>`` and ``repro
report`` on the CLI drive the named demo workloads in
:mod:`repro.obs.workloads`.
"""

from __future__ import annotations

from typing import Any

from repro.obs.chrome import (
    chrome_trace,
    chrome_trace_json,
    write_chrome_trace,
)
from repro.obs.core import Instrumentation, active_capture, capture
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import render_report, span_aggregates
from repro.obs.workloads import WORKLOADS, run_workload

__all__ = [
    "Instrumentation",
    "MetricsRegistry",
    "Histogram",
    "capture",
    "active_capture",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "render_report",
    "span_aggregates",
    "WORKLOADS",
    "run_workload",
    "trace_spmd",
]


def trace_spmd(program: Any, nranks: int, *, path: str | None = None,
               label: str = "", **kwargs: Any) -> tuple[Any, str]:
    """Run ``program`` under observability and export a Chrome trace.

    Returns ``(RunResult, trace_json_string)``; when ``path`` is given
    the trace is also written there.  Keyword arguments are forwarded to
    :func:`repro.runtime.job.run_spmd`.
    """
    from repro.config import ObsConfig
    from repro.runtime.job import run_spmd

    kwargs.setdefault("obs", ObsConfig(enabled=True))
    res = run_spmd(program, nranks, **kwargs)
    if res.obs is None:  # pragma: no cover - defensive
        raise RuntimeError("observability did not attach to the run")
    text = chrome_trace_json(res.obs, label=label)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return res, text
