"""Per-rank metrics registry: counters, gauges, simulated-time histograms.

Everything here is pure bookkeeping on plain dicts -- updating a metric
never touches the event queue, so instrumented runs stay bit-identical
to uninstrumented ones.  Snapshots are deterministic: every dict is
emitted with sorted keys, and histogram buckets are powers of two (no
floating-point bucket boundaries).
"""

from __future__ import annotations

from typing import Any

__all__ = ["Histogram", "MetricsRegistry"]


class Histogram:
    """Power-of-two-bucket histogram of non-negative integer samples.

    Bucket ``k`` counts samples ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 counts zeros and ones).  Deterministic, integer-only.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: int) -> None:
        v = int(value)
        if v < 0:
            v = 0
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        k = max(0, (v - 1).bit_length()) if v > 1 else 0
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min or 0,
            "max": self.max or 0,
            "mean": round(self.mean, 3),
            "buckets": {f"<=2^{k}": n for k, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by ``(metric, rank)``.

    ``rank`` is an int for per-rank metrics; link-byte accounting uses
    ``(src_node, dst_node)`` pairs via :meth:`link_bytes`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, dict[int, int]] = {}
        self._gauges: dict[str, dict[int, float]] = {}
        self._hists: dict[str, dict[int, Histogram]] = {}
        self._links: dict[tuple[int, int], int] = {}

    # -- update paths (hot; dict ops only) ------------------------------
    def count(self, name: str, rank: int, inc: int = 1) -> None:
        per_rank = self._counters.get(name)
        if per_rank is None:
            per_rank = self._counters[name] = {}
        per_rank[rank] = per_rank.get(rank, 0) + inc

    def gauge(self, name: str, rank: int, value: float) -> None:
        per_rank = self._gauges.get(name)
        if per_rank is None:
            per_rank = self._gauges[name] = {}
        per_rank[rank] = value

    def observe(self, name: str, rank: int, value: int) -> None:
        per_rank = self._hists.get(name)
        if per_rank is None:
            per_rank = self._hists[name] = {}
        hist = per_rank.get(rank)
        if hist is None:
            hist = per_rank[rank] = Histogram()
        hist.observe(value)

    def link_bytes(self, src_node: int, dst_node: int, nbytes: int) -> None:
        key = (src_node, dst_node)
        self._links[key] = self._links.get(key, 0) + nbytes

    # -- queries ---------------------------------------------------------
    def counter_total(self, name: str) -> int:
        return sum(self._counters.get(name, {}).values())

    def histogram(self, name: str, rank: int) -> Histogram | None:
        return self._hists.get(name, {}).get(rank)

    def merged_histogram(self, name: str) -> Histogram:
        """All ranks' samples of one histogram metric, combined."""
        merged = Histogram()
        for hist in self._hists.get(name, {}).values():
            merged.count += hist.count
            merged.total += hist.total
            if hist.min is not None and (merged.min is None
                                         or hist.min < merged.min):
                merged.min = hist.min
            if hist.max is not None and (merged.max is None
                                         or hist.max > merged.max):
                merged.max = hist.max
            for k, n in hist.buckets.items():
                merged.buckets[k] = merged.buckets.get(k, 0) + n
        return merged

    def snapshot(self) -> dict[str, Any]:
        """Deterministic nested-dict view of every metric."""
        return {
            "counters": {
                name: {str(r): v for r, v in sorted(ranks.items())}
                for name, ranks in sorted(self._counters.items())
            },
            "gauges": {
                name: {str(r): v for r, v in sorted(ranks.items())}
                for name, ranks in sorted(self._gauges.items())
            },
            "histograms": {
                name: {str(r): h.snapshot() for r, h in sorted(ranks.items())}
                for name, ranks in sorted(self._hists.items())
            },
            "link_bytes": {
                f"{s}->{d}": n for (s, d), n in sorted(self._links.items())
            },
        }
