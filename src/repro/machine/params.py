"""Timing parameters for the simulated machine.

The defaults are calibrated so the *simulated* foMPI microbenchmarks land
on the paper's measured performance functions (Section 3):

    P_put  = 0.16 ns/B + 1.0 us        (inter-node, incl. remote completion)
    P_get  = 0.17 ns/B + 1.9 us
    P_CAS  = 2.4 us,  P_acc,sum = 28 ns/elem + 2.4 us
    injection of an 8-B message: 416 ns inter-node, 80 ns intra-node

Derivation of the inter-node put path (see tests/machine/test_calibration):

    cpu(put fast path, 173 instr @ 2.3 GHz)   ~  75 ns
  + NIC injection                                416 ns
  + wire one-way (base + hops)                 ~ 250 ns
  + completion ack one-way                     ~ 250 ns
  ------------------------------------------------------
  put + flush                                  ~ 1.0 us
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GeminiParams", "XpmemParams"]


@dataclass(frozen=True)
class GeminiParams:
    """Gemini-like network timing (all times ns, bandwidth in ns/byte).

    Attributes
    ----------
    o_inject:
        NIC injection occupancy per message (the paper's 416 ns).
    o_eject:
        Target NIC processing per incoming packet (endpoint incast limit).
    wire_base:
        Distance-independent one-way wire latency (serdes + router exit).
    wire_per_hop:
        Additional one-way latency per torus hop.
    gap_per_byte:
        Inverse bandwidth of the injection path / wire (0.16 ns/B = 6.25 GB/s).
    get_target_overhead:
        Extra target-side time for a get (NIC-initiated local DMA read);
        makes P_get's constant ~0.9 us larger than P_put's, as measured.
    amo_service:
        Pipeline latency of the NIC AMO engine (applied once per operation).
    amo_gap:
        AMO engine occupancy per operation (streaming rate, 28 ns/elem).
    max_chunk:
        Largest single put/get the hardware accepts; DMAPP transfers are
        chunked by the caller (the paper: 1/4/8/16-byte granularity, large
        transfers split by the NIC -- we only model the large-transfer cap).
    noise_ns:
        Optional deterministic pseudo-noise amplitude on wire latency,
        mimicking the system noise the paper observed beyond 1000 ranks.
    """

    # Per-message CPU cost of handing a descriptor to the NIC.  340 ns
    # here + the 173-instruction foMPI fast path (~75 ns) reproduces the
    # paper's measured 416 ns per-message injection cost end to end --
    # this bounds the *per-rank* message rate (Figure 5b).
    o_inject: float = 340.0
    # Aggregate NIC packet-processing gap: many ranks share one NIC, which
    # sustains ~16 M small packets/s in total (hot-spot limit for the
    # hashtable study); forward packets also pay a fixed NIC pipeline
    # latency.
    nic_packet_gap: float = 60.0
    nic_latency: float = 260.0
    # Gemini exposes two injection paths: FMA for small/control transfers
    # and the BTE for bulk.  Modeling them separately prevents unrealistic
    # head-of-line blocking of tiny requests/AMOs behind bulk transfers.
    fma_threshold: int = 1024
    o_eject: float = 50.0
    wire_base: float = 310.0
    wire_per_hop: float = 16.0
    gap_per_byte: float = 0.16
    get_gap_per_byte: float = 0.17
    get_target_overhead: float = 800.0
    amo_service: float = 1250.0
    amo_gap: float = 28.0
    max_chunk: int = 1 << 20
    fifo_depth: int = 16  # injection FIFO depth in queued descriptors
    noise_ns: float = 0.0

    def wire_latency(self, hops: int) -> float:
        return self.wire_base + self.wire_per_hop * hops

    def with_noise(self, amplitude_ns: float) -> "GeminiParams":
        return replace(self, noise_ns=amplitude_ns)


@dataclass(frozen=True)
class XpmemParams:
    """Intra-node (XPMEM / shared memory) timing.

    Calibrated to: ~80 ns per small store (~190 instructions; Figure 5c's
    12.5 M messages/s), ~0.35 us small *load* latency (reads pay the
    cache-miss chain to the remote socket; stores are write-behind), and
    ~6.5 GB/s SSE copy bandwidth (256 KiB in ~40 us, Figure 4c).
    """

    store_setup: float = 12.0    # per-store overhead beyond the fast path
    latency: float = 270.0       # load latency (cache-miss chain)
    copy_per_byte: float = 0.154
    cas_latency: float = 60.0
    amo_latency: float = 45.0
