"""The Gemini-like network engine.

The network delivers *packets* between node NICs.  Three serialization
points are modeled with busy-until channels (no per-hop events, so even
multi-thousand-rank runs stay fast):

* **injection** at the source NIC (``o_inject`` + bytes * gap),
* **ejection** at the destination NIC (``o_eject`` + bytes * gap),
* the **AMO engine** at the destination NIC (``amo_gap`` occupancy per
  atomic, plus ``amo_service`` pipeline latency) -- this reproduces the
  atomics hot-spot contention that shapes the hashtable study.

`Network.packet` returns the *delivery completion time* at the destination
and an `Event` that fires then; higher layers (DMAPP) build put/get/AMO
round trips out of it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import DeadlineError
from repro.machine.params import GeminiParams
from repro.machine.topology import RankMap, Torus3D
from repro.sim.kernel import Environment, Event
from repro.sim.resources import BusyChannel
from repro.sim.trace import OpCounters

__all__ = ["Nic", "Network"]


class Nic:
    """Per-node network interface.

    Serialization points: the FMA injection path (small/control ops), the
    BTE injection path (bulk transfers, with a bounded descriptor FIFO),
    the ejection engine, and the AMO engine.
    """

    __slots__ = ("node", "fma", "bte", "eject_fma", "eject_bte",
                 "amo_engine", "fifo_ends")

    def __init__(self, env: Environment, node: int) -> None:
        self.node = node
        self.fma = BusyChannel(env)
        self.bte = BusyChannel(env)
        self.eject_fma = BusyChannel(env)
        self.eject_bte = BusyChannel(env)
        self.amo_engine = BusyChannel(env)
        self.fifo_ends: deque[int] = deque()

    @property
    def injection(self) -> BusyChannel:
        """Bulk injection path (kept for introspection/back-compat)."""
        return self.bte

    @property
    def ejection(self) -> BusyChannel:
        """Bulk ejection path (kept for introspection/back-compat)."""
        return self.eject_bte


class Network:
    """Packet transport between NICs on the torus."""

    def __init__(
        self,
        env: Environment,
        torus: Torus3D,
        rank_map: RankMap,
        params: GeminiParams | None = None,
        counters: OpCounters | None = None,
        injector=None,
        batch_delivery: bool = True,
    ) -> None:
        if torus.nnodes < rank_map.nnodes:
            raise ValueError(
                f"torus has {torus.nnodes} nodes but placement needs "
                f"{rank_map.nnodes}")
        self.env = env
        self.torus = torus
        self.rank_map = rank_map
        self.params = params or GeminiParams()
        self.counters = counters or OpCounters()
        # Optional repro.faults.FaultInjector; None keeps every hot path on
        # the exact pre-fault code (zero cost, bit-identical runs).
        self.injector = injector
        # Optional repro.obs.core.Instrumentation (assigned by World);
        # same contract: None keeps the hot path untouched, and recording
        # never schedules -- delivery times are computed before the hook.
        self.obs = None
        self._nics: dict[int, Nic] = {}
        self._noise_state = 0x243F6A8885A308D3  # pi digits; deterministic
        # (src, dst) -> wire_base + per_hop * hops: pure in torus + params,
        # cached off the per-packet path.
        self._wire: dict[tuple[int, int], float] = {}
        self._o_eject_int = int(round(self.params.o_eject))
        self._has_noise = self.params.noise_ns > 0
        # Batched same-edge delivery: packets completing on the same
        # (src, dst) edge at the same simulated tick share one kernel
        # event (the "carrier") whose callback fires the per-packet
        # delivery events in issue order.  Per-packet delivery *times*
        # are computed before batching and are identical either way.
        self.batch_delivery = batch_delivery
        self._batches: dict[tuple[int, int, int], list[Event]] = {}

    def nic(self, node: int) -> Nic:
        nic = self._nics.get(node)
        if nic is None:
            nic = self._nics[node] = Nic(self.env, node)
        return nic

    # -- latency helpers -------------------------------------------------
    def hops(self, src_node: int, dst_node: int) -> int:
        return self.torus.hops(src_node, dst_node)

    def wire(self, src_node: int, dst_node: int) -> float:
        """Distance-dependent one-way wire latency (memoized)."""
        key = (src_node, dst_node) if src_node < dst_node \
            else (dst_node, src_node)
        w = self._wire.get(key)
        if w is None:
            w = self._wire[key] = self.params.wire_latency(
                self.torus.hops(src_node, dst_node))
        return w

    def _noise(self) -> float:
        """Deterministic pseudo-noise in [0, noise_ns)."""
        if self.params.noise_ns <= 0:
            return 0.0
        # xorshift64* -- cheap, deterministic, uncorrelated enough.
        x = self._noise_state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._noise_state = x & 0xFFFFFFFFFFFFFFFF
        frac = ((x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) / 2.0**64
        return frac * self.params.noise_ns

    # -- delivery scheduling ----------------------------------------------
    def _deliver_at(self, src_node: int, dst_node: int, deliver_time: int,
                    ev: Event) -> None:
        """Arrange for ``ev`` to fire at the delivery tick.

        Unbatched: one kernel event per packet (``ev.succeed``), the
        pre-gen2 behaviour.  Batched: packets on the same (src, dst) edge
        completing at the same tick append to a shared vector; a single
        carrier event fires them in issue order at that tick.  The batch
        is popped from the table *before* the per-packet events run, so a
        resumed process that immediately issues new same-edge traffic for
        the same tick starts a fresh batch rather than appending to one
        already being drained.
        """
        env = self.env
        if not self.batch_delivery:
            ev.succeed(deliver_time, delay=max(0, deliver_time - env.now))
            return
        now = env.now
        tick = deliver_time if deliver_time > now else now
        ev.resolve(deliver_time)
        key = (src_node, dst_node, tick)
        batch = self._batches.get(key)
        if batch is not None:
            batch.append(ev)
            return
        batch = [ev]
        self._batches[key] = batch
        carrier = env.event(name="link-batch")
        batches = self._batches

        def _deliver(_carrier: Event, _key=key, _batch=batch) -> None:
            del batches[_key]
            for pev in _batch:
                cbs = pev.callbacks
                pev.callbacks = None
                for cb in cbs:
                    cb(pev)

        carrier.callbacks.append(_deliver)
        carrier.succeed(None, delay=tick - now)

    # -- packet transport --------------------------------------------------
    def packet(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        *,
        inject_window: tuple[int, int] | None = None,
        charge_injection: bool = True,
        is_amo: bool = False,
        gap_per_byte: float | None = None,
        on_deliver: Callable[[int], None] | None = None,
        fate=None,
        reliable: bool = False,
    ) -> tuple[int, Event]:
        """Send one packet; returns (delivery_time_ns, delivery_event).

        The pipeline is cut-through: the head of the packet leaves as soon
        as injection starts, so the uncontended delivery time is
        ``inject_start + wire + nbytes*gap`` -- the bandwidth term is paid
        exactly once end to end.  Destination-side contention serializes on
        the ejection (or AMO-engine) channel.

        ``inject_window=(start, end)`` lets a caller that already reserved
        the injection channel thread its occupancy through;
        ``charge_injection=False`` skips injection entirely (NIC-generated
        responses such as get replies and acks).

        ``on_deliver(time)`` runs at delivery time *before* any process
        waiting on the returned event resumes -- remote memory writes and
        AMO side effects use it so memory is updated atomically at the
        delivery instant.

        With a fault injector installed, each transmission can be dropped,
        corrupted (checksum fails at the target NIC, packet discarded),
        delayed, or stalled -- a lost packet never runs ``on_deliver``.
        ``fate`` lets a resilient transport that drew the fate itself (the
        hardened DMAPP endpoint) thread it through; ``reliable=True``
        instead enables link-level recovery *inside* this call: the source
        NIC retransmits after a timeout, with capped seeded backoff, until
        delivery succeeds or the retry budget is exhausted (the MPI-1
        transport uses this).  Both are no-ops without an injector.
        """
        if self.injector is not None:
            return self._packet_faulty(
                src_node, dst_node, nbytes, inject_window, charge_injection,
                is_amo, gap_per_byte, on_deliver, fate, reliable)
        p = self.params
        gap = p.gap_per_byte if gap_per_byte is None else gap_per_byte
        env = self.env

        if charge_injection:
            if inject_window is not None:
                inject_start, inject_end = inject_window
            else:
                inject_start, inject_end = self.occupy_injection(
                    src_node, nbytes, gap)
            wire = self.wire(src_node, dst_node) + p.nic_latency
        else:
            inject_start = inject_end = env.now
            wire = self.wire(src_node, dst_node)
        if self._has_noise:
            wire += self._noise()
        head_arrival = inject_start + wire
        tail_arrival = inject_end + wire  # last byte on the floor

        nic = self._nics.get(dst_node)
        if nic is None:
            nic = self._nics[dst_node] = Nic(env, dst_node)
        if is_amo:
            chan = nic.amo_engine
            svc_int = int(round(p.amo_gap))
        elif nbytes <= p.fma_threshold:
            # Small packets interleave at flit granularity; they serialize
            # only on per-packet processing, never behind bulk transfers.
            chan = nic.eject_fma
            svc_int = self._o_eject_int
        else:
            chan = nic.eject_bte
            svc_int = int(round(max(p.o_eject, nbytes * gap)))
        # Service cannot begin before the head arrives nor finish before
        # the tail does; contention queues behind earlier packets.
        start = max(int(round(head_arrival)), chan.busy_until)
        chan.busy_until = max(start + svc_int, int(round(tail_arrival)))
        chan.total_busy += svc_int
        deliver_time = chan.busy_until
        if is_amo:
            deliver_time += int(round(p.amo_service))

        ev = env.event(name="packet-deliver")
        if on_deliver is not None:
            def _fire(event: Event, _cb=on_deliver) -> None:
                _cb(env.now)
            ev.callbacks.append(_fire)
        self._deliver_at(src_node, dst_node, deliver_time, ev)
        self.counters.count_service(dst_node)
        if self.obs is not None:
            self.obs.on_packet(src_node, dst_node, nbytes, deliver_time,
                               is_amo)
        return deliver_time, ev

    def _packet_faulty(self, src_node, dst_node, nbytes, inject_window,
                       charge_injection, is_amo, gap_per_byte, on_deliver,
                       fate, reliable) -> tuple[int, Event]:
        """Fault-aware twin of :meth:`packet` (see its docstring).

        Kept separate so the fault-free hot path stays byte-for-byte the
        pre-fault code.  Timing is computed per transmission attempt; all
        retransmission work (timeout detection, backoff, re-injection) is
        NIC-driven and never blocks the issuing CPU.
        """
        inj = self.injector
        p = self.params
        gap = p.gap_per_byte if gap_per_byte is None else gap_per_byte
        env = self.env
        attempt = 0
        resend_floor: int | None = None
        while True:
            attempt += 1
            this_fate = fate if (fate is not None and attempt == 1) \
                else inj.packet_fate(src_node, dst_node)

            if charge_injection:
                if attempt == 1 and inject_window is not None:
                    inject_start, inject_end = inject_window
                else:
                    inject_start, inject_end = self.occupy_injection(
                        src_node, nbytes, gap, earliest=resend_floor)
                pipeline = p.nic_latency
            else:
                floor = env.now if resend_floor is None else resend_floor
                inject_start = inject_end = inj.stall_release(src_node, floor)
                pipeline = 0.0

            src_dead = inj.node_crashed(src_node, int(inject_start))
            wire = (p.wire_latency(self.hops(src_node, dst_node)) + pipeline
                    + self._noise() + this_fate.extra_delay_ns)
            head_arrival = inject_start + wire
            tail_arrival = inject_end + wire

            delivered = False
            deliver_time = int(round(tail_arrival))
            if not this_fate.drop and not src_dead:
                # The packet reaches the destination NIC, which may be
                # mid-stall: service waits for the stall window to end.
                head_arrival = max(head_arrival,
                                   inj.stall_release(dst_node, int(head_arrival)))
                if is_amo:
                    chan = self.nic(dst_node).amo_engine
                    svc = p.amo_gap
                elif nbytes <= p.fma_threshold:
                    chan = self.nic(dst_node).eject_fma
                    svc = p.o_eject
                else:
                    chan = self.nic(dst_node).eject_bte
                    svc = max(p.o_eject, nbytes * gap)
                start = max(int(round(head_arrival)), chan.busy_until)
                chan.busy_until = max(start + int(round(svc)),
                                      int(round(tail_arrival)))
                chan.total_busy += int(round(svc))
                deliver_time = chan.busy_until
                if is_amo:
                    deliver_time += int(round(p.amo_service))
                self.counters.count_service(dst_node)
                # Corrupted payloads fail the checksum and are discarded
                # here; packets to a node dead by arrival are lost too.
                delivered = (not this_fate.corrupt
                             and not inj.node_crashed(dst_node, deliver_time))

            if delivered:
                ev = env.event(name="packet-deliver")
                if on_deliver is not None:
                    def _fire(event: Event, _cb=on_deliver) -> None:
                        _cb(env.now)
                    ev.callbacks.append(_fire)
                # Faults were already applied per-packet above (fate draw,
                # stall windows, checksum discard); a surviving packet
                # batches like any other.  Lost packets never reach here
                # and stay unbatched.
                self._deliver_at(src_node, dst_node, deliver_time, ev)
                if self.obs is not None:
                    self.obs.on_packet(src_node, dst_node, nbytes,
                                       deliver_time, is_amo)
                return deliver_time, ev

            give_up = (not reliable
                       or attempt > inj.config.max_retries
                       or src_dead
                       or inj.node_crashed(dst_node, deliver_time))
            if give_up:
                ev = env.event(name="packet-lost")
                if (reliable and not src_dead
                        and not inj.node_crashed(dst_node, deliver_time)):
                    # A reliable link exhausted its retry budget with both
                    # endpoints alive: fail loudly at the instant the last
                    # ack window expires, instead of leaving the waiter to
                    # decay into a deadlock report.
                    inj.stats.deadline_failures += 1
                    inj._trace("deadline",
                               f"{src_node}->{dst_node} after {attempt} tries")

                    def _budget_exhausted(event: Event, _n=attempt) -> None:
                        raise DeadlineError(
                            "packet", dst_node, _n,
                            inj.config.op_deadline_ns)
                    ev.callbacks.append(_budget_exhausted)
                ev.succeed(deliver_time,
                           delay=max(0, deliver_time - env.now))
                return deliver_time, ev
            # Link-level recovery: the source NIC detects the missing ack
            # after the op deadline and retransmits with seeded backoff.
            inj.stats.retransmits += 1
            inj._trace("retransmit", f"{src_node}->{dst_node} #{attempt}")
            # Draw the backoff once and share it with the obs hook: a
            # second draw would shift the jitter stream and make
            # instrumented schedules diverge from uninstrumented ones.
            backoff = inj.backoff_ns(attempt)
            if self.obs is not None:
                self.obs.on_link_retransmit(src_node, dst_node, env.now,
                                            attempt, int(round(backoff)))
            resend_floor = int(round(
                inject_end + inj.config.op_deadline_ns + backoff))

    def occupy_injection(self, src_node: int, nbytes: int,
                         gap_per_byte: float | None = None,
                         earliest: int | None = None) -> tuple[int, int]:
        """Reserve the injection channel; returns (start, end) times.

        The *end* is when the NIC has drained the payload (origin buffer
        reusable, wire transfer begins); the issuing CPU is only blocked
        until ``start + o_inject`` -- handing the descriptor to the NIC --
        which is what lets large transfers overlap with computation
        (Figure 5a) while small-message rate stays bounded by o_inject
        (Figure 5b).

        ``earliest`` floors the start time (NIC-scheduled retransmissions);
        injected NIC stall windows also push the start past their end.
        """
        p = self.params
        gap = p.gap_per_byte if gap_per_byte is None else gap_per_byte
        duration = max(p.nic_packet_gap, nbytes * gap)
        chan = (self.nic(src_node).fma if nbytes <= p.fma_threshold
                else self.nic(src_node).bte)
        if self.injector is not None or earliest is not None:
            floor = self.env.now if earliest is None else int(earliest)
            if self.injector is not None:
                floor = self.injector.stall_release(src_node, floor)
            return chan.occupy(int(round(duration)), earliest=floor)
        return chan.occupy(int(round(duration)))

    def injection_admit(self, src_node: int, inj_end: int,
                        nbytes: int = 1 << 30) -> int:
        """When the descriptor FIFO can accept this op: once the op
        ``fifo_depth`` places earlier has drained.  Returns the admit time
        (0 when the FIFO has room).  FMA-path (small) ops never queue --
        their rate is bounded by the per-message CPU cost."""
        if nbytes <= self.params.fma_threshold:
            return 0
        fifo = self.nic(src_node).fifo_ends
        admit = fifo[0] if len(fifo) >= self.params.fifo_depth else 0
        fifo.append(inj_end)
        while len(fifo) > self.params.fifo_depth:
            fifo.popleft()
        return admit
