"""3-D torus topology and rank placement.

Blue Waters' Gemini network is a 3-D torus; each Gemini ASIC serves two
XE6 nodes, but for timing purposes we model one NIC per node.  Routing is
dimension-ordered and minimal, so only the hop *count* matters for our
latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig

__all__ = ["Torus3D", "RankMap"]


class Torus3D:
    """A 3-D torus of ``shape`` nodes with minimal (wraparound) routing."""

    def __init__(self, shape: tuple[int, int, int]) -> None:
        if any(d < 1 for d in shape):
            raise ValueError(f"bad torus shape {shape}")
        self.shape = shape
        # Both coords() and hops() are pure functions of the (immutable)
        # shape and sit on the per-packet hot path; memoize.
        self._coords: dict[int, tuple[int, int, int]] = {}
        self._hops: dict[tuple[int, int], int] = {}

    @property
    def nnodes(self) -> int:
        x, y, z = self.shape
        return x * y * z

    def coords(self, node: int) -> tuple[int, int, int]:
        """Node id -> (x, y, z), x-major order."""
        c = self._coords.get(node)
        if c is None:
            x, y, z = self.shape
            if not 0 <= node < self.nnodes:
                raise ValueError(
                    f"node {node} out of range for shape {self.shape}")
            c = self._coords[node] = (node // (y * z), (node // z) % y,
                                      node % z)
        return c

    def node_at(self, cx: int, cy: int, cz: int) -> int:
        x, y, z = self.shape
        return ((cx % x) * y + (cy % y)) * z + (cz % z)

    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between nodes (per-dimension wraparound)."""
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        cached = self._hops.get(key)
        if cached is None:
            total = 0
            for ca, cb, dim in zip(self.coords(a), self.coords(b), self.shape):
                d = abs(ca - cb)
                total += min(d, dim - d)
            cached = self._hops[key] = total
        return cached

    def diameter(self) -> int:
        return sum(d // 2 for d in self.shape)


@dataclass
class RankMap:
    """Block placement of ranks onto nodes (ranks 0..ppn-1 on node 0, ...).

    This mirrors the default Cray placement used in the paper's benchmarks
    (consecutive ranks fill a node, so the intra-node -> inter-node
    transition happens at p = ranks_per_node, visible as the knee in
    Figures 6c and 7a).
    """

    nranks: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.nranks < 1 or self.ranks_per_node < 1:
            raise ValueError("nranks and ranks_per_node must be positive")
        # Fault-tolerance re-homing: rank -> (node, placement generation).
        # Empty for every run without rollback recovery, in which case all
        # placement queries reduce to the original block arithmetic.
        self._overrides: dict[int, tuple[int, int]] = {}

    @property
    def nnodes(self) -> int:
        return (self.nranks + self.ranks_per_node - 1) // self.ranks_per_node

    def node_of(self, rank: int) -> int:
        if self._overrides:
            ov = self._overrides.get(rank)
            if ov is not None:
                return ov[0]
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        return rank // self.ranks_per_node

    def home_generation(self, rank: int) -> int:
        """0 for ranks on their original node; bumped by :meth:`rehome`.

        Two ranks share local (XPMEM) memory only when they are on the
        same node *and* in the same placement generation: a restarted rank
        re-exchanges attach tokens only with the cohort it was restored
        with, never with ranks that merely became co-located by re-homing.
        """
        if self._overrides:
            ov = self._overrides.get(rank)
            if ov is not None:
                return ov[1]
        return 0

    def rehome(self, rank: int, node: int, generation: int) -> None:
        """Move ``rank`` to ``node`` (rollback recovery adopting a spare or
        shrinking onto a buddy node)."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if node < 0:
            raise ValueError(f"cannot rehome rank {rank} to node {node}")
        self._overrides[rank] = (node, int(generation))

    def ranks_on(self, node: int) -> range:
        lo = node * self.ranks_per_node
        hi = min(self.nranks, lo + self.ranks_per_node)
        if lo >= self.nranks:
            raise ValueError(f"node {node} hosts no ranks")
        return range(lo, hi)

    def same_node(self, a: int, b: int) -> bool:
        if self._overrides:
            return (self.node_of(a) == self.node_of(b)
                    and self.home_generation(a) == self.home_generation(b))
        return self.node_of(a) == self.node_of(b)

    @classmethod
    def for_config(cls, nranks: int, config: MachineConfig) -> "RankMap":
        return cls(nranks=nranks, ranks_per_node=config.ranks_per_node)
