"""Machine model: a Cray-XE6-like system.

Nodes (32 ranks each by default) are placed on a 3-D torus connected by a
Gemini-like network.  The network layer models the three serialization
points that dominate RMA behaviour at the endpoints -- NIC injection, NIC
ejection, and the NIC AMO engine -- plus distance-dependent wire latency
and bandwidth.  Per-hop link occupancy is intentionally *not* modeled
per-packet (see DESIGN.md section 3): endpoint contention is what shapes
the paper's figures (message rate, atomics, hashtable hot-spots).
"""

from repro.machine.network import Network, Nic
from repro.machine.params import GeminiParams, XpmemParams
from repro.machine.topology import RankMap, Torus3D

__all__ = [
    "Torus3D",
    "RankMap",
    "Network",
    "Nic",
    "GeminiParams",
    "XpmemParams",
]
