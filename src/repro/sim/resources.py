"""Resources for the DES kernel: FIFO mutex-style resources and stores.

The network layer models NIC serialization with :class:`Resource` and the
MPI-1 baseline uses :class:`Store` for its software mailboxes.  Both follow
strict FIFO service order, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event, URGENT

__all__ = ["Resource", "Store", "BusyChannel"]


class Resource:
    """Counted resource with FIFO queueing.

    Usage (inside a process)::

        req = resource.request()
        yield req
        ...  # hold
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        ev = self.env.event(name="resource-grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(priority=URGENT)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(priority=URGENT)
        else:
            self.in_use -= 1

    def held(self) -> Generator:
        """Context-manager-style helper: ``yield from res.held()`` acquires."""
        yield self.request()


class BusyChannel:
    """Serializes timed usage: models a link/NIC port with a busy-until time.

    ``occupy(duration)`` returns the (start, end) interval assigned to the
    request: the max of *now* and the previous end, plus ``duration``.  This
    is the cheap "no event per packet-hop" congestion model used for link
    and NIC serialization (see DESIGN.md section 3).
    """

    __slots__ = ("env", "busy_until", "total_busy")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.busy_until = 0
        self.total_busy = 0

    def occupy(self, duration: int, earliest: int | None = None) -> tuple[int, int]:
        """Reserve ``duration``; service can't start before ``earliest``
        (used for NIC work scheduled at a known future time, e.g. get
        responses leaving the target)."""
        floor = self.env.now if earliest is None else int(earliest)
        start = max(floor, self.busy_until)
        end = start + int(duration)
        self.busy_until = end
        self.total_busy += int(duration)
        return start, end

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this channel was busy."""
        if self.env.now == 0:
            return 0.0
        return min(1.0, self.total_busy / self.env.now)


class Store:
    """Unbounded FIFO store of items with blocking ``get``.

    ``put`` never blocks (the simulated buffers that need bounding enforce
    it at the protocol layer, as the paper's bufferless protocols do).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.event(name="store-get")
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list:
        return list(self._items)
