"""Event tracing, span recording, and operation counting.

`Tracer` records raw kernel events (for debugging).  `SpanLog` is the
span-aware substrate of the observability layer (:mod:`repro.obs`): the
protocol layers append *finished* named spans -- lock acquisitions, epoch
durations, put/get/AMO issue-to-completion windows -- on the simulated
clock.  Recording is pure observation (list appends; nothing is ever
scheduled), so instrumented runs are bit-identical to uninstrumented
ones.  `OpCounters` is the workhorse for the scalability assertions in
the test suite: the paper claims O(log p) time/space and O(k) messages
for its protocols, and we verify those claims by *counting* actual
simulated operations rather than trusting the analytic model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Tracer", "OpCounters", "SpanRecord", "SpanLog"]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span (or instant, when ``dur_ns == 0``) on a track.

    ``track`` names the track family (``"rank"`` or ``"nic"``), ``tid``
    the track instance (rank number / node number).  Times are simulated
    nanoseconds; ``args`` carries free-form labels for the exporters,
    frozen as a sorted item tuple.
    """

    track: str
    tid: int
    name: str
    cat: str
    start_ns: int
    dur_ns: int
    args: tuple = ()

    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class SpanLog:
    """Append-only log of finished spans with bounded memory.

    Appends past ``limit`` are counted in ``dropped`` instead of stored,
    mirroring :class:`Tracer`'s truncation contract.  Append order is the
    (deterministic) order protocol code closed the spans, so exports are
    reproducible without sorting by insertion time.
    """

    def __init__(self, limit: int = 500_000) -> None:
        self.spans: list[SpanRecord] = []
        self.dropped = 0
        self.limit = limit

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, track: str, tid: int, name: str, cat: str,
            start_ns: int, end_ns: int, args: dict | None = None) -> None:
        """Record a finished span; ``args`` is snapshotted to a tuple."""
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return
        if end_ns < start_ns:
            end_ns = start_ns
        frozen = tuple(sorted(args.items())) if args else ()
        self.spans.append(SpanRecord(track, tid, name, cat, int(start_ns),
                                     int(end_ns - start_ns), frozen))

    def instant(self, track: str, tid: int, name: str, cat: str,
                ts_ns: int, args: dict | None = None) -> None:
        """Record a zero-duration mark."""
        self.add(track, tid, name, cat, ts_ns, ts_ns, args)


class Tracer:
    """Optional raw event recorder; install with ``env.tracer = Tracer()``.

    Besides kernel events, the fault injector feeds injected-fault and
    recovery records (``fault:drop``, ``fault:retransmit``, ...) into the
    same timeline, so a trace of a faulty run shows where time went:
    which packets were lost, when the NIC stalled, and how often each
    transport retransmitted.
    """

    def __init__(self, limit: int = 1_000_000) -> None:
        self.records: list[tuple[int, str]] = []
        self.fault_counts: Counter = Counter()
        self.limit = limit
        self.dropped = 0

    def record(self, now: int, event) -> None:
        if len(self.records) < self.limit:
            self.records.append((now, event.name or type(event).__name__))
        else:
            self.dropped += 1

    def record_fault(self, now: int, kind: str, detail: str = "") -> None:
        # Fault counters aggregate past the truncation limit: the record
        # stream is bounded, the statistics are not.
        self.fault_counts[kind] += 1
        if len(self.records) < self.limit:
            label = f"fault:{kind}"
            if detail:
                label += f" {detail}"
            self.records.append((now, label))
        else:
            self.dropped += 1


@dataclass
class OpCounters:
    """Per-run operation counters, aggregated across all ranks.

    ``remote_ops[rank]`` counts RDMA operations *issued by* each rank;
    ``nic_ops[rank]`` counts operations *serviced at* each rank's NIC
    (useful for hot-spot analysis); ``bytes_moved`` counts payload bytes on
    the network; ``control_memory[rank]`` tracks the peak number of
    control words (lock variables, matching-list slots, descriptors) a
    protocol allocated at each rank -- the paper's "memory overhead".
    """

    remote_ops: Counter = field(default_factory=Counter)
    nic_ops: Counter = field(default_factory=Counter)
    bytes_moved: int = 0
    messages: int = 0
    control_memory: Counter = field(default_factory=Counter)
    by_kind: Counter = field(default_factory=Counter)

    def count_issue(self, origin: int, kind: str, nbytes: int = 0) -> None:
        self.remote_ops[origin] += 1
        self.by_kind[kind] += 1
        self.bytes_moved += nbytes
        self.messages += 1

    def count_service(self, target: int) -> None:
        self.nic_ops[target] += 1

    def add_control_memory(self, rank: int, words: int) -> None:
        self.control_memory[rank] += words

    def max_remote_ops(self) -> int:
        return max(self.remote_ops.values(), default=0)

    def max_control_memory(self) -> int:
        return max(self.control_memory.values(), default=0)

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "max_remote_ops": self.max_remote_ops(),
            "max_control_memory": self.max_control_memory(),
            "by_kind": dict(self.by_kind),
        }
