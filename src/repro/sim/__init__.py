"""Deterministic discrete-event simulation (DES) kernel.

A minimal, self-contained cooperative-coroutine simulator in the style of
SimPy: rank programs are Python generators that ``yield`` events; the
:class:`~repro.sim.kernel.Environment` resumes them at deterministic
simulated times.  All of foMPI-py's protocols execute on this kernel.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.trace import Tracer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Store",
    "Tracer",
]
