"""Deterministic random streams.

Every stochastic choice in the simulator draws from a stream derived from
``(master_seed, purpose, rank)`` so that runs are reproducible and adding a
new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stream", "derive_seed"]

_MIX = 0x9E3779B97F4A7C15  # golden-ratio mixing constant


def derive_seed(master: int, purpose: str, rank: int = 0) -> int:
    """Stable 63-bit seed derived from (master, purpose, rank)."""
    h = master & 0xFFFF_FFFF_FFFF_FFFF
    for ch in purpose:
        h = ((h ^ ord(ch)) * _MIX) & 0xFFFF_FFFF_FFFF_FFFF
    h = ((h ^ (rank + 1)) * _MIX) & 0xFFFF_FFFF_FFFF_FFFF
    return h >> 1  # keep it positive


def stream(master: int, purpose: str, rank: int = 0) -> np.random.Generator:
    """A numpy Generator seeded from the derived seed."""
    return np.random.default_rng(derive_seed(master, purpose, rank))
