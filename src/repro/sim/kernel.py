"""Discrete-event simulation kernel (generation 2).

Design notes
------------
* Simulated time is an integer number of **nanoseconds**.  Fractional
  nanosecond costs are accumulated by callers and rounded once (the machine
  layer does this), keeping the event queue integral and deterministic.
* Events in the queue are ordered by ``(time, priority, seq)`` where ``seq``
  is a monotone counter -- two events at the same instant always fire in the
  order they were scheduled, making every run bit-reproducible.
* Processes are plain Python generators.  ``yield event`` suspends until the
  event fires; the value sent back into the generator is ``event.value``.
  Composite waits use :class:`AllOf` / :class:`AnyOf`.
* Unlike SimPy we detect deadlock eagerly: if the queue drains while
  processes are still blocked, :class:`~repro.errors.DeadlockError` is
  raised with diagnostics.  The MPI specification forbids cyclically
  waiting configurations (Section 2.5 of the paper); this check is how the
  test suite asserts that the protocols never create them.

Generation-2 scheduler
----------------------
The pending-event store is a **front-slot calendar queue**: a one-entry
"near bucket" (``Environment._front``) holding the strict minimum entry,
backed by the binary heap for everything else.  The invariant is that the
front entry, when present, compares strictly below every heap entry (the
``(time, priority, seq)`` tuples are unique, so "strictly" is free).  A
push that beats the current front evicts it into the heap; a push that
does not simply heap-pushes.  Popping takes the front slot when occupied
and falls back to ``heappop``.  Event-driven protocol patterns schedule
the immediate successor of the event being processed most of the time, so
the front slot absorbs 60-100% of pushes on the benchmark workloads and
turns an O(log n) heap round-trip into two compares and a store.  Ordering
is untouched: pops still deliver entries in exactly ``(time, priority,
seq)`` order, the same total order the pure heap produces, so schedules
are bit-identical with the cache on or off.

``run(fast=False)`` is the **legacy heap scheduler**, kept as the A/B
oracle: on entry it drains the front slot into the heap and parks the
sentinel ``_HEAP_MODE`` in ``_front`` (the sentinel compares below every
real entry, so the push-side fast paths fall through to a plain
``heappush`` without a mode flag).  The legacy loop is one ``step()`` per
event with the original ``Process._resume`` path -- both schedulers
allocate sequence numbers identically and pop the same total order, so
**event order, simulated times and all counters are bit-identical**
between the two; the test suite asserts this across every demo workload,
checked/observed runs and faulty runs.

Fast-path invariants
--------------------
The hot loop (``run(fast=True)``, no tracer) hoists per-event attribute
lookups into locals, merges the ``max_events`` and watchdog comparisons
into a single trip compare, disables the cyclic GC for the duration of the
loop (re-enabled in a ``finally``), and inlines ``Process._resume`` for
the ubiquitous single-waiter case.

Two free lists recycle hot-path objects; both only swap object identity,
never sequence numbers or values, so they cannot perturb ordering:

* ``Timeout`` objects whose only callback was a process resumption (the
  ``yield env.timeout(d)`` pattern) are returned to the pool after firing
  and reused by the next ``env.timeout()`` call.
* **Anonymous** ``Event`` objects (``env.event()`` with no name) consumed
  the same way are likewise pooled and reused by the next ``env.event()``
  call.  Named events -- every event the protocol layers create -- are
  never recycled.

The rule both lists impose: *do not retain a reference to a nameless
event or timeout you have already yielded* (re-reading ``t.value`` later,
or putting one inside a composite, is unsupported).  Objects waited on
through ``AllOf``/``AnyOf`` or with multiple callbacks are never pooled --
only the single-waiter resume pattern is.
"""

from __future__ import annotations

from gc import disable as _gc_disable
from gc import enable as _gc_enable
from gc import isenabled as _gc_isenabled
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, LivelockError, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "URGENT",
    "NORMAL",
    "LOW",
]

URGENT = 0
NORMAL = 1
LOW = 2

_PENDING = object()
# Sentinel stored in Environment._front while the legacy heap scheduler is
# driving the run: it compares below every real entry, so the push fast paths
# in succeed()/timeout()/schedule() fall through to a plain heappush without
# needing a mode flag of their own.
_HEAP_MODE = (-1, -1, -1, None)
_EV_NEW = None  # set after Event is defined
_TO_NEW = None  # set after Timeout is defined


class Interrupt(Exception):
    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    __slots__ = ("env", "callbacks", "_value", "_ok", "name")

    def __init__(self, env: "Environment", name: str = "") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok = True
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0, priority: int = NORMAL) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._ok = True
        self._value = value
        env = self.env
        seq = env._seq + 1
        env._seq = seq
        entry = (env._now + delay, priority, seq, self)
        front = env._front
        if front is None:
            q = env._queue
            if q and q[0] < entry:
                heappush(q, entry)
            else:
                env._front = entry
        elif entry < front:
            heappush(env._queue, front)
            env._front = entry
        else:
            heappush(env._queue, entry)
        return self

    def resolve(self, value: Any = None) -> "Event":
        """Mark this event triggered *without* scheduling it.

        Used by holders that deliver the callbacks themselves from inside
        another event's dispatch (batched link delivery): the value becomes
        readable immediately, and the holder later runs the callbacks
        in-line at the delivery tick.  Never use this on an event a process
        is already yielding on unless you will deliver it yourself.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay, priority=URGENT)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    __slots__ = ()

    def __init__(self, env: "Environment", delay: int, value: Any = None,
                 priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self._ok = True
        self._value = value
        env.schedule(self, delay=int(delay), priority=priority)


class Process(Event):
    __slots__ = ("_gen", "_target", "_interrupts", "_bound_resume",
                 "_send", "_throw")

    def __init__(self, env: "Environment", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(gen).__name__} "
                "(did you forget to call the generator function?)")
        super().__init__(env, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._send = gen.send
        self._throw = gen.throw
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        self._bound_resume = self
        env._nprocesses += 1
        env._live.add(self)
        init = Event(env, name=f"init:{self.name}")
        init._ok = True
        init._value = None
        init.callbacks.append(self)
        env.schedule(init, delay=0, priority=NORMAL)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None, *,
                  exception: BaseException | None = None) -> None:
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        exc: BaseException = exception if exception is not None else Interrupt(cause)
        wake = Event(self.env, name=f"interrupt:{self.name}")
        wake._ok = False
        wake._value = exc
        wake.callbacks.append(self)
        self.env.schedule(wake, delay=0, priority=URGENT)

    def _resume(self, trigger: Event) -> None:
        env = self.env
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None
        env._active = self
        send = self._send
        throw = self._throw
        event: Event = trigger
        while True:
            try:
                if event._ok:
                    out = send(event._value)
                else:
                    out = throw(event._value)
            except StopIteration as stop:
                env._active = None
                env._nprocesses -= 1
                env._live.discard(self)
                env.note_progress()
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active = None
                env._nprocesses -= 1
                env._live.discard(self)
                if env.strict:
                    self._ok = False
                    self._value = exc
                    env.schedule(self, delay=0, priority=URGENT)
                    raise
                self.fail(exc)
                return
            try:
                cbs = out.callbacks
            except AttributeError:
                env._active = None
                self._gen.throw(SimulationError(
                    f"process {self.name!r} yielded non-event {out!r}"))
                return  # pragma: no cover
            if cbs is not None:
                cbs.append(self)
                self._target = out
                env._active = None
                return
            event = out

    __call__ = _resume


class ConditionEvent(Event):
    __slots__ = ("_events", "_remaining", "_bound_on_fire")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("mixing events from different environments")
        self._remaining = 0
        on_fire = self._bound_on_fire = self._on_fire
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev, immediate=True)
            else:
                self._remaining += 1
                ev.callbacks.append(on_fire)
        if not self.triggered:
            self._finalize_empty()
        elif self._remaining:
            self._detach()

    def _finalize_empty(self) -> None:
        raise NotImplementedError

    def _check(self, ev: Event, immediate: bool = False) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        on_fire = self._bound_on_fire
        for ev in self._events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(on_fire)
                except ValueError:
                    pass

    def _on_fire(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            self._detach()
            return
        self._remaining -= 1
        self._check(ev)
        if self._value is not _PENDING:
            self._detach()


class AllOf(ConditionEvent):
    __slots__ = ()

    def _finalize_empty(self) -> None:
        if self._remaining == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])

    def _check(self, ev: Event, immediate: bool = False) -> None:
        if not immediate and self._remaining == 0 and not self.triggered:
            self.succeed([e.value for e in self._events])
        elif immediate and not ev._ok:
            self.fail(ev._value)


class AnyOf(ConditionEvent):
    __slots__ = ()

    def _finalize_empty(self) -> None:
        if not self._events and not self.triggered:
            self.succeed(None)

    def _check(self, ev: Event, immediate: bool = False) -> None:
        if not self.triggered:
            if ev._ok:
                self.succeed(ev._value)
            else:
                self.fail(ev._value)


class Environment:
    __slots__ = ("_now", "_queue", "_front", "_seq", "_nprocesses", "_active",
                 "_live", "max_events", "strict", "events_processed", "tracer",
                 "_timeout_pool", "_event_pool", "progress_marks", "watchdog_interval",
                 "watchdog_stalls", "_wd_next", "_wd_marks", "_wd_stale",
                 "api_sites", "__dict__")

    def __init__(self, max_events: int = 200_000_000, strict: bool = True,
                 watchdog_interval: int = 0, watchdog_stalls: int = 3) -> None:
        self._now = 0
        self._queue: list[tuple[int, int, int, Event]] = []
        self._front: tuple[int, int, int, Event] | None = None
        self._seq = 0
        self._nprocesses = 0
        self._active: Process | None = None
        self._live: set[Process] = set()
        self.max_events = max_events
        self.strict = strict
        self.events_processed = 0
        self.tracer = None  # installed by sim.trace.Tracer when wanted
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        self.progress_marks = 0
        self.watchdog_interval = int(watchdog_interval)
        self.watchdog_stalls = int(watchdog_stalls)
        self._wd_next = self.watchdog_interval or 0
        self._wd_marks = 0
        self._wd_stale = 0
        self.api_sites: dict[str, str] = {}

    def note_progress(self) -> None:
        self.progress_marks += 1

    def blocked_diagnostics(self) -> tuple[tuple[str, ...], dict[str, str]]:
        names = []
        sites: dict[str, str] = {}
        for proc in sorted(self._live, key=lambda p: p.name):
            names.append(proc.name)
            site = self.api_sites.get(proc.name)
            if site is None and proc._target is not None and proc._target.name:
                site = f"waiting on {proc._target.name}"
            if site is not None:
                sites[proc.name] = site
        return tuple(names), sites

    @property
    def now(self) -> int:
        return self._now

    def event(self, name: str = "") -> Event:
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev._value = _PENDING
            ev._ok = True
            ev.name = name
            return ev
        ev = _EV_NEW(Event)
        ev.env = self
        ev.callbacks = []
        ev._value = _PENDING
        ev._ok = True
        ev.name = name
        return ev

    def timeout(self, delay: int, value: Any = None, priority: int = NORMAL) -> Timeout:
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev._ok = True
            ev._value = value
        else:
            ev = _TO_NEW(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._ok = True
            ev._value = value
            ev.name = ""
        seq = self._seq + 1
        self._seq = seq
        entry = (self._now + delay, priority, seq, ev)
        front = self._front
        if front is None:
            q = self._queue
            if q and q[0] < entry:
                heappush(q, entry)
            else:
                self._front = entry
        elif entry < front:
            heappush(self._queue, front)
            self._front = entry
        else:
            heappush(self._queue, entry)
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq + 1
        self._seq = seq
        entry = (self._now + delay, priority, seq, event)
        front = self._front
        if front is None:
            q = self._queue
            if q and q[0] < entry:
                heappush(q, entry)
            else:
                self._front = entry
        elif entry < front:
            heappush(self._queue, front)
            self._front = entry
        else:
            heappush(self._queue, entry)

    def _repush(self, entry) -> None:
        """Put a popped-but-unprocessed entry back at the head."""
        front = self._front
        if front is None:
            self._front = entry
        elif entry < front:
            heappush(self._queue, front)
            self._front = entry
        else:
            heappush(self._queue, entry)

    def step(self) -> None:
        entry = self._front
        if entry is not None and entry is not _HEAP_MODE:
            self._front = None
        else:
            entry = heappop(self._queue)
        when, _prio, _seq, event = entry
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        self.events_processed += 1
        if self.tracer is not None:
            self.tracer.record(self._now, event)
        for cb in callbacks:
            cb(event)

    def run(self, until: Event | int | None = None, *, fast: bool = True) -> Any:
        stop_event: Event | None = None
        stop_time: int | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = int(until)

        if fast:
            if self._front is _HEAP_MODE:
                self._front = None
            if self.tracer is None:
                return self._run_fast(stop_event, stop_time)
            return self._run_step(stop_event, stop_time)
        front = self._front
        if front is not _HEAP_MODE:
            if front is not None:
                heappush(self._queue, front)
            self._front = _HEAP_MODE
        return self._run_step(stop_event, stop_time)

    def _run_step(self, stop_event: Event | None, stop_time: int | None) -> Any:
        nofront = _HEAP_MODE
        while self._queue or (self._front is not None
                              and self._front is not nofront):
            if stop_event is not None and stop_event.processed:
                return stop_event.value if stop_event._ok else None
            if stop_time is not None:
                front = self._front
                if front is nofront:
                    front = None
                nxt = front[0] if front is not None else self._queue[0][0]
                if nxt > stop_time:
                    self._now = stop_time
                    return None
            if self.events_processed >= self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events} "
                    f"(simulated t={self._now}ns) -- runaway protocol?")
            self.step()
            if self.watchdog_interval and self.events_processed >= self._wd_next:
                self._watchdog_check()
        return self._drained(stop_event)

    def _run_fast(self, stop_event: Event | None, stop_time: int | None) -> Any:
        gc_was = _gc_isenabled()
        if gc_was:
            _gc_disable()
        try:
            if stop_event is None and stop_time is None:
                return self._run_fast_nostop()
            return self._run_fast_stop(stop_event, stop_time)
        finally:
            if gc_was:
                _gc_enable()

    def _run_fast_nostop(self) -> Any:
        queue = self._queue
        pop = heappop
        nevents = self.events_processed
        max_events = self.max_events
        wd_interval = self.watchdog_interval
        trip = self._wd_next if wd_interval else max_events
        if trip > max_events:
            trip = max_events
        tpool = self._timeout_pool
        epool = self._event_pool
        timeout_cls = Timeout
        event_cls = Event
        process_cls = Process
        try:
            while True:
                entry = self._front
                if entry is not None:
                    self._front = None
                elif queue:
                    entry = pop(queue)
                else:
                    break
                if nevents >= trip:
                    if nevents >= max_events:
                        self._repush(entry)
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(simulated t={self._now}ns) -- runaway protocol?")
                    self.events_processed = nevents
                    self._watchdog_check()
                    trip = self._wd_next
                    if trip > max_events:
                        trip = max_events
                self._now = entry[0]
                event = entry[3]
                cbs = event.callbacks
                event.callbacks = None
                nevents += 1
                if len(cbs) == 1 and (proc := cbs[0]).__class__ is process_cls:
                    # Inlined Process._resume for the single-waiter case.
                    target = proc._target
                    if target is not event and target is not None \
                            and target.callbacks is not None:
                        try:
                            target.callbacks.remove(proc)
                        except ValueError:
                            pass
                    ecls = event.__class__
                    if ecls is timeout_cls:
                        cbs.clear()
                        event.callbacks = cbs
                        tpool.append(event)
                    elif ecls is event_cls and not event.name:
                        cbs.clear()
                        event.callbacks = cbs
                        epool.append(event)
                    send = proc._send
                    ev2 = event
                    while True:
                        try:
                            if ev2._ok:
                                out = send(ev2._value)
                            else:
                                out = proc._throw(ev2._value)
                        except StopIteration as stop:
                            self._nprocesses -= 1
                            self._live.discard(proc)
                            self.progress_marks += 1
                            proc.succeed(stop.value, priority=URGENT)
                            break
                        except BaseException as exc:
                            self._nprocesses -= 1
                            self._live.discard(proc)
                            if self.strict:
                                proc._ok = False
                                proc._value = exc
                                self.schedule(proc, delay=0, priority=URGENT)
                                raise
                            proc.fail(exc)
                            break
                        try:
                            ocbs = out.callbacks
                        except AttributeError:
                            proc._gen.throw(SimulationError(
                                f"process {proc.name!r} yielded non-event {out!r}"))
                            break
                        if ocbs is not None:
                            ocbs.append(proc)
                            proc._target = out
                            break
                        ev2 = out
                else:
                    for cb in cbs:
                        cb(event)
        finally:
            self.events_processed = nevents
        return self._drained(None)

    def _run_fast_stop(self, stop_event: Event | None, stop_time: int | None) -> Any:
        queue = self._queue
        pop = heappop
        nevents = self.events_processed
        max_events = self.max_events
        wd_interval = self.watchdog_interval
        wd_next = self._wd_next if wd_interval else 0
        tpool = self._timeout_pool
        epool = self._event_pool
        timeout_cls = Timeout
        event_cls = Event
        process_cls = Process
        check_stop = stop_event is not None
        check_time = stop_time is not None
        try:
            while queue or self._front is not None:
                if check_stop and stop_event.callbacks is None:
                    return stop_event._value if stop_event._ok else None
                if check_time:
                    front = self._front
                    nxt = front[0] if front is not None else queue[0][0]
                    if nxt > stop_time:
                        self._now = stop_time
                        return None
                if nevents >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(simulated t={self._now}ns) -- runaway protocol?")
                entry = self._front
                if entry is not None:
                    self._front = None
                else:
                    entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                cbs = event.callbacks
                event.callbacks = None
                nevents += 1
                if len(cbs) == 1 and (proc := cbs[0]).__class__ is process_cls:
                    # Inlined Process._resume for the single-waiter case.
                    target = proc._target
                    if target is not event and target is not None \
                            and target.callbacks is not None:
                        try:
                            target.callbacks.remove(proc)
                        except ValueError:
                            pass
                    ecls = event.__class__
                    if ecls is timeout_cls:
                        cbs.clear()
                        event.callbacks = cbs
                        tpool.append(event)
                    elif ecls is event_cls and not event.name:
                        cbs.clear()
                        event.callbacks = cbs
                        epool.append(event)
                    send = proc._send
                    ev2 = event
                    while True:
                        try:
                            if ev2._ok:
                                out = send(ev2._value)
                            else:
                                out = proc._throw(ev2._value)
                        except StopIteration as stop:
                            self._nprocesses -= 1
                            self._live.discard(proc)
                            self.progress_marks += 1
                            proc.succeed(stop.value, priority=URGENT)
                            break
                        except BaseException as exc:
                            self._nprocesses -= 1
                            self._live.discard(proc)
                            if self.strict:
                                proc._ok = False
                                proc._value = exc
                                self.schedule(proc, delay=0, priority=URGENT)
                                raise
                            proc.fail(exc)
                            break
                        try:
                            ocbs = out.callbacks
                        except AttributeError:
                            proc._gen.throw(SimulationError(
                                f"process {proc.name!r} yielded non-event {out!r}"))
                            break
                        if ocbs is not None:
                            ocbs.append(proc)
                            proc._target = out
                            break
                        ev2 = out
                else:
                    for cb in cbs:
                        cb(event)
                if wd_interval and nevents >= wd_next:
                    self.events_processed = nevents
                    self._watchdog_check()
                    wd_next = self._wd_next
        finally:
            self.events_processed = nevents
        return self._drained(stop_event)

    def _drained(self, stop_event: Event | None) -> Any:
        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value if stop_event._ok else None
            names, sites = self.blocked_diagnostics()
            raise DeadlockError(self._nprocesses, self._now, names, sites)
        if self._nprocesses > 0:
            names, sites = self.blocked_diagnostics()
            raise DeadlockError(self._nprocesses, self._now, names, sites)
        return None

    def _watchdog_check(self) -> None:
        self._wd_next = self.events_processed + max(
            self.watchdog_interval, 8 * self._nprocesses)
        if self.progress_marks != self._wd_marks or self._nprocesses == 0:
            self._wd_marks = self.progress_marks
            self._wd_stale = 0
            return
        self._wd_stale += 1
        if self._wd_stale >= self.watchdog_stalls:
            names, sites = self.blocked_diagnostics()
            raise LivelockError(
                self._now, self.events_processed,
                self._wd_stale * self.watchdog_interval, names, sites)

_EV_NEW = Event.__new__
_TO_NEW = Timeout.__new__
