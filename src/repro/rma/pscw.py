"""General Active Target Synchronization -- PSCW (paper Section 2.3, Fig 2).

The scalable matching protocol:

* ``post(group)``: the exposing rank announces itself to every rank j in
  the group by *appending its id to a matching list local to j*.  The
  append acquires a free element in the remote list through the
  free-storage protocol of Figure 2c -- here a single chained NIC
  operation (fetch a free slot, write ``rank+1``, bump the version word
  that start() watches).  O(k) messages, zero waiting.
* ``start(group)``: waits until every group member is present in the
  *local* matching list, then consumes those entries (freeing the slots).
  Entries posted for future epochs simply stay -- matching is by process
  id, exactly the paper's matching rule.
* ``complete()``: guarantees remote visibility of the epoch's RMA ops
  (mfence + gsync), then atomically increments the completion counter at
  every exposure target.  O(k) messages.
* ``wait()``: blocks until the completion counter reaches the exposure
  group size, then resets it.

Memory: ``ring_capacity`` slots + 2 counters per rank = O(k).  The paper
assumes k (max neighbors over all epochs) is known; exceeding the ring
capacity raises, mirroring that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EpochError, NodeCrashedError, RmaError
from repro.rma import window as win_mod
from repro.sim.kernel import AnyOf

__all__ = ["PscwState", "post", "start", "complete", "wait"]


@dataclass
class PscwState:
    """Per-window PSCW bookkeeping on one rank."""

    access_group: set = field(default_factory=set)
    exposure_group: set = field(default_factory=set)
    epochs_posted: int = 0
    epochs_started: int = 0
    access_opened_at: int = 0     # obs: start() time of the open epoch
    exposure_opened_at: int = 0   # obs: post() time of the open epoch


def _append_entry(ctrl, capacity: int, poster_rank: int):
    """The free-storage append executed atomically at the target NIC:
    find a free slot, write the poster's id, bump the version word."""
    def mutate():
        for s in range(capacity):
            idx = win_mod.IDX_PSCW_SLOTS + s
            if ctrl.load(idx) == 0:
                ctrl.store(idx, poster_rank + 1)
                ctrl.fadd(win_mod.IDX_PSCW_VERSION, 1)
                return s
        raise RmaError(
            "PSCW matching list overflow: more outstanding posts than "
            "ring_capacity (the paper assumes k is known and bounded)")
    return mutate


def post(win, group):
    """MPI_Win_post: open an exposure epoch for ``group``."""
    group = list(group)
    st = win.pscw_state
    if win.epoch_exposure == "pscw":
        raise EpochError("post() while an exposure epoch is already open")
    if win.rank in group:
        raise EpochError("a rank cannot post to itself")
    ctx = win.ctx
    ctx.note_api(f"win.post(group={sorted(group)})")
    t0 = ctx.now
    ck = ctx.checker
    if ck is not None:
        # Deposit before the matching-list appends a peer's start() can
        # observe: any start() that matches this post happens-after it.
        ck.pscw_post(win, group)
    notifier = ctx.notifier
    dead: set = set()
    if notifier is not None:
        dead = set(group) & notifier.known(win.rank)
    # Prior local stores must be visible before peers may access.
    yield from ctx.xpmem.mfence()
    cap = win.params.pscw_ring_capacity
    for j in group:
        if j in dead:
            continue
        ctrl_j = win.ctrl_refs[j]
        mutate = _append_entry(ctrl_j, cap, win.rank)
        if ctx.same_node(j):
            yield from ctx.instr(
                win.params.instr_lock)  # CPU atomic append
            mutate()
        else:
            try:
                yield from ctx.dmapp.amo_custom_nbi(j, mutate)
            except NodeCrashedError as exc:
                if notifier is None:
                    raise
                dead.update(r for r in group
                            if ctx.node_of(r) == exc.node)
    # Fault containment: the epoch opens for the surviving peers, and the
    # dead ones are reported in a structured error.
    st.exposure_group = set(group) - dead
    st.epochs_posted += 1
    win.epoch_exposure = "pscw"
    obs = ctx.obs
    if obs is not None:
        obs.rank_span(ctx.rank, "pscw.post", t0, ctx.now, cat="epoch",
                      args={"peers": len(group)})
        obs.metrics.count("rma.post", ctx.rank)
        st.exposure_opened_at = ctx.now
    ctx.env.note_progress()
    if dead:
        ctx.world.injector.stats.epochs_failed += 1
        raise EpochError("post(): access peers failed", failed_ranks=dead)


def start(win, group):
    """MPI_Win_start: open an access epoch; blocks until all matching
    posts arrived (the paper's start *may block*, Section 2.5)."""
    group = list(group)
    st = win.pscw_state
    if win.epoch_access is not None:
        raise EpochError(
            f"start() while in a {win.epoch_access!r} access epoch")
    ctx = win.ctx
    ctx.note_api(f"win.start(group={sorted(group)})")
    t0 = ctx.now
    yield from ctx.compute(win.params.pscw_start_overhead)
    cap = win.params.pscw_ring_capacity
    ctrl = win.ctrl
    needed = set(group)
    notifier = ctx.notifier
    while needed:
        # Scan the matching list, consume entries for ranks we wait on.
        for s in range(cap):
            idx = win_mod.IDX_PSCW_SLOTS + s
            v = ctrl.load(idx)
            if v != 0 and (v - 1) in needed:
                needed.discard(v - 1)
                ctrl.store(idx, 0)  # free the slot
        if needed:
            if notifier is not None:
                dead = needed & notifier.known(win.rank)
                if dead:
                    # Their posts can never arrive: fail the epoch on the
                    # survivor instead of blocking in the matching list.
                    ctx.world.injector.stats.epochs_failed += 1
                    raise EpochError(
                        "start(): exposure peers failed before posting",
                        failed_ranks=dead)
            version = ctrl.load(win_mod.IDX_PSCW_VERSION)
            wait_ev = ctrl.wait_until(win_mod.IDX_PSCW_VERSION,
                                      lambda v, _v0=version: v != _v0)
            if notifier is None:
                yield wait_ev
            else:
                yield AnyOf(ctx.env, [wait_ev,
                                      notifier.failure_event(win.rank)])
    ck = ctx.checker
    if ck is not None:
        ck.pscw_start(win, group)
    st.access_group = set(group)
    st.epochs_started += 1
    win.epoch_access = "pscw"
    obs = ctx.obs
    if obs is not None:
        obs.rank_span(ctx.rank, "pscw.start", t0, ctx.now, cat="epoch",
                      args={"peers": len(group)})
        obs.metrics.count("rma.start", ctx.rank)
        st.access_opened_at = ctx.now
    ctx.env.note_progress()


def complete(win):
    """MPI_Win_complete: close the access epoch."""
    st = win.pscw_state
    if win.epoch_access != "pscw":
        raise EpochError("complete() without a matching start()")
    ctx = win.ctx
    ctx.note_api("win.complete()")
    t0 = ctx.now
    ck = ctx.checker
    if ck is not None:
        # Deposit before the completion-counter AMOs a peer's wait()
        # observes; also orders this origin's ops (complete = flush).
        ck.pscw_complete(win, st.access_group)
    # Remote visibility of all epoch operations first ...
    yield from ctx.xpmem.mfence()
    yield from ctx.dmapp.gsync()
    # ... then notify each exposure peer's completion counter.
    notifier = ctx.notifier
    dead: set = set()
    for j in sorted(st.access_group):
        if notifier is not None and notifier.rank_failed(win.rank, j):
            dead.add(j)
            continue
        if ctx.same_node(j):
            yield from ctx.instr(win.params.instr_lock)
            win.ctrl_refs[j].fadd(win_mod.IDX_PSCW_DONE, 1)
        else:
            try:
                yield from ctx.dmapp.amo_nbi(j, win.ctrl_refs[j],
                                             win_mod.IDX_PSCW_DONE,
                                             "add", 1)
            except NodeCrashedError as exc:
                if notifier is None:
                    raise
                dead.update(r for r in st.access_group
                            if ctx.node_of(r) == exc.node)
    st.access_group = set()
    win.epoch_access = None
    obs = ctx.obs
    if obs is not None:
        obs.rank_span(ctx.rank, "pscw.complete", t0, ctx.now, cat="epoch")
        obs.metrics.observe("epoch_access_ns", ctx.rank,
                            max(0, ctx.now - st.access_opened_at))
    ctx.env.note_progress()
    if dead:
        # The epoch is closed on this survivor; the dead exposure peers
        # are reported (they will never see the completion counter).
        ctx.world.injector.stats.epochs_failed += 1
        raise EpochError("complete(): exposure peers failed",
                         failed_ranks=dead)


def wait(win):
    """MPI_Win_wait: block until every access peer called complete()."""
    st = win.pscw_state
    if win.epoch_exposure != "pscw":
        raise EpochError("wait() without a matching post()")
    ctx = win.ctx
    ctx.note_api("win.wait()")
    t0 = ctx.now
    expected = len(st.exposure_group)
    yield from ctx.compute(win.params.pscw_wait_overhead)
    notifier = ctx.notifier
    if expected and notifier is None:
        yield win.ctrl.wait_until(win_mod.IDX_PSCW_DONE,
                                  lambda v: v >= expected)
        win.ctrl.fadd(win_mod.IDX_PSCW_DONE, -expected)
    elif expected:
        # Check the counter FIRST: a complete() that landed before its
        # origin died still counts (the op took effect; only the rank is
        # gone), so a satisfied epoch never turns into an error.
        while True:
            if win.ctrl.load(win_mod.IDX_PSCW_DONE) >= expected:
                win.ctrl.fadd(win_mod.IDX_PSCW_DONE, -expected)
                break
            dead = st.exposure_group & notifier.known(win.rank)
            if dead:
                st.exposure_group = set()
                win.epoch_exposure = None
                ctx.world.injector.stats.epochs_failed += 1
                raise EpochError(
                    "wait(): access peers failed before complete()",
                    failed_ranks=dead)
            yield AnyOf(ctx.env, [
                win.ctrl.wait_until(win_mod.IDX_PSCW_DONE,
                                    lambda v: v >= expected),
                notifier.failure_event(win.rank)])
    ck = ctx.checker
    if ck is not None:
        ck.pscw_wait(win, st.exposure_group)
    st.exposure_group = set()
    win.epoch_exposure = None
    obs = ctx.obs
    if obs is not None:
        obs.rank_span(ctx.rank, "pscw.wait", t0, ctx.now, cat="epoch")
        obs.metrics.observe("epoch_exposure_ns", ctx.rank,
                            max(0, ctx.now - st.exposure_opened_at))
    ctx.env.note_progress()
