"""Window creation protocols (paper Section 2.2) and the RMA context.

* ``win_allocate`` -- the scalable symmetric-heap protocol: leader draws a
  random base address, broadcasts it, everyone tries mmap(MAP_FIXED), an
  allreduce validates, retry on collision.  O(1) memory, O(log p) time
  w.h.p.
* ``win_create`` -- traditional windows over user memory: two allgathers
  (DMAPP descriptors world-wide, XPMEM tokens intra-node), Omega(p)
  descriptor storage per rank.  "Fundamentally non-scalable ... their use
  is strongly discouraged" -- we build them anyway, and the test suite
  *measures* the Omega(p) footprint against win_allocate's O(1).
* ``win_create_dynamic`` -- control words plus a registered directory
  segment for the descriptor-cache protocol.
* ``win_allocate_shared`` -- one contiguous per-node segment, every rank
  maps it directly (XPMEM/POSIX-shm style), constant memory per core.
"""

from __future__ import annotations

from repro.errors import WindowError
from repro.mem.atomic import AtomicArray
from repro.mem.symheap import propose_address, try_symmetric_alloc
from repro.rma import dynamic as dyn_mod
from repro.rma.enums import WinFlavor
from repro.rma.params import FompiParams
from repro.rma.window import CTRL_WORDS_BASE, Window

__all__ = ["RmaContext"]


class RmaContext:
    """Per-rank factory for MPI windows (``ctx.rma``)."""

    def __init__(self, ctx, params: FompiParams | None = None) -> None:
        self.ctx = ctx
        self.params = params or FompiParams()
        self._next_win = 0
        self.windows: list[Window] = []

    def _new_win_id(self) -> int:
        # All ranks create windows in the same (collective) order, so a
        # local counter yields consistent ids.
        wid = self._next_win
        self._next_win += 1
        return wid

    # ------------------------------------------------------------------
    def _make_ctrl(self, win: Window) -> AtomicArray:
        # Base words + PSCW matching ring + the user-extension words
        # (e.g. for MCS queue locks, repro.rma.mcs).
        ncells = (CTRL_WORDS_BASE + self.params.pscw_ring_capacity
                  + self.params.user_ctrl_words)
        ctrl = AtomicArray(self.ctx.env, ncells,
                           name=f"win{win.win_id}@{self.ctx.rank}")
        self.ctx.world.counters.add_control_memory(self.ctx.rank, ncells)
        return ctrl

    def _exchange_ctrl(self, win: Window):
        """Publish our control block and collect everyone's.

        For allocated windows the control words live at symmetric offsets,
        so no descriptor exchange is needed -- a barrier orders
        publication (O(log p)).
        """
        bb = self.ctx.world.blackboard
        key = ("winctrl", win.win_id)
        bb.setdefault(key, {})[self.ctx.rank] = win.ctrl
        if self.ctx.notifier is not None:
            # Recovery needs the window objects themselves (heap segment,
            # freed flag) to tear down dead ranks' windows.
            bb.setdefault(("winobjs", win.win_id), {})[self.ctx.rank] = win
        xkey = ("winxpmem", win.win_id)
        if win.seg is not None:
            bb.setdefault(xkey, {})[self.ctx.rank] = \
                self.ctx.xpmem.expose(win.seg)
        yield from self.ctx.coll.barrier()
        win.ctrl_refs = bb[key]
        if win.seg is not None:
            for r, token in bb.get(xkey, {}).items():
                if r != self.ctx.rank and self.ctx.same_node(r):
                    win.xtokens[r] = self.ctx.xpmem.attach(token)

    # ------------------------------------------------------------------
    def win_allocate(self, size: int, disp_unit: int = 1) -> "Generator":
        """MPI_Win_allocate with the symmetric-heap protocol."""
        ctx = self.ctx
        win = Window(ctx, self._new_win_id(), WinFlavor.ALLOCATE,
                     disp_unit=disp_unit, size=size, params=self.params)
        leader_rng = ctx.world.rng("symheap", 0)
        interposer = ctx.world.blackboard.get("symheap_interposer")
        attempt = 0
        seg = None
        while True:
            addr = None
            if ctx.rank == 0:
                addr = propose_address(leader_rng, max(1, size))
                if interposer is not None:
                    addr = interposer(attempt, addr)
            addr = yield from ctx.coll.bcast(addr, root=0, nbytes=8)
            seg = try_symmetric_alloc(ctx.space, addr, max(1, size),
                                      label=f"win{win.win_id}")
            ok = yield from ctx.coll.allreduce(
                1 if seg is not None else 0, op=min, nbytes=8)
            if ok:
                break
            if seg is not None:
                ctx.space.free(seg)
                seg = None
            attempt += 1
        win.seg = seg
        win.base_vaddr = seg.vaddr
        ctx.reg.register(seg)
        win.ctrl = self._make_ctrl(win)
        yield from self._exchange_ctrl(win)
        self.windows.append(win)
        return win

    # ------------------------------------------------------------------
    def win_create(self, seg, disp_unit: int = 1) -> "Generator":
        """MPI_Win_create over caller-provided memory (non-scalable)."""
        ctx = self.ctx
        if seg.rank != ctx.rank:
            raise WindowError("win_create needs this rank's own memory")
        win = Window(ctx, self._new_win_id(), WinFlavor.CREATE,
                     seg=seg, disp_unit=disp_unit, size=seg.size,
                     params=self.params)
        desc = ctx.reg.register(seg)
        # First allgather: DMAPP descriptors from every rank (Omega(p)).
        descs = yield from ctx.coll.allgather(desc, nbytes=32)
        win.descs = {r: d for r, d in enumerate(descs)}
        ctx.world.counters.add_control_memory(ctx.rank, len(descs))
        win.ctrl = self._make_ctrl(win)
        # Second allgather: XPMEM tokens among intra-node peers (modeled
        # inside _exchange_ctrl's publication + barrier).
        yield from self._exchange_ctrl(win)
        self.windows.append(win)
        return win

    # ------------------------------------------------------------------
    def win_create_dynamic(self, optimized: bool = False) -> "Generator":
        """MPI_Win_create_dynamic: no memory yet; attach/detach later.

        ``optimized=True`` selects the paper's notification-based cache
        invalidation protocol (lower communication latency, extra memory,
        costlier detach -- see :mod:`repro.rma.dynamic`).
        """
        ctx = self.ctx
        win = Window(ctx, self._new_win_id(), WinFlavor.DYNAMIC,
                     params=self.params)
        win.ctrl = self._make_ctrl(win)
        if optimized:
            from repro.mem.atomic import AtomicArray

            st = dyn_mod.OptimizedDynamicState(
                cachers=AtomicArray(ctx.env, dyn_mod._RING_CAPACITY,
                                    name=f"dyncachers@{ctx.rank}"),
                inval=AtomicArray(ctx.env, dyn_mod._RING_CAPACITY,
                                  name=f"dyninval@{ctx.rank}"))
            ctx.world.counters.add_control_memory(
                ctx.rank, 2 * dyn_mod._RING_CAPACITY)
        else:
            st = dyn_mod.DynamicState()
        st.directory_seg = ctx.space.alloc(dyn_mod._DIRECTORY_BYTES,
                                           label=f"dyndir{win.win_id}")
        st.directory_desc = ctx.reg.register(st.directory_seg)
        win.dyn = st
        ctx.world.blackboard[("dyn", win.win_id, ctx.rank)] = st
        yield from self._exchange_ctrl(win)
        self.windows.append(win)
        return win

    # ------------------------------------------------------------------
    def win_allocate_shared(self, size: int, disp_unit: int = 1) -> "Generator":
        """MPI_Win_allocate_shared: all ranks must share a node."""
        ctx = self.ctx
        nodes = {ctx.node_of(r) for r in range(ctx.nranks)}
        if len(nodes) != 1:
            raise WindowError(
                "win_allocate_shared requires all ranks on one node "
                f"(nodes: {sorted(nodes)})")
        win = Window(ctx, self._new_win_id(), WinFlavor.SHARED,
                     disp_unit=disp_unit, size=size, params=self.params)
        bb = ctx.world.blackboard
        key = ("winshared", win.win_id)
        bb.setdefault(key, {})[ctx.rank] = size
        yield from ctx.coll.barrier()
        sizes = bb[key]
        offsets, acc = {}, 0
        for r in range(ctx.nranks):
            offsets[r] = acc
            acc += sizes[r]
        segkey = ("winsharedseg", win.win_id)
        if ctx.rank == 0:
            seg = ctx.space.alloc(max(1, acc), label=f"shwin{win.win_id}")
            ctx.reg.register(seg)
            bb[segkey] = seg
        yield from ctx.coll.barrier()
        win.shared_segment = bb[segkey]
        win.shared_offsets = offsets
        win.ctrl = self._make_ctrl(win)
        bbc = bb.setdefault(("winctrl", win.win_id), {})
        bbc[ctx.rank] = win.ctrl
        if ctx.notifier is not None:
            bb.setdefault(("winobjs", win.win_id), {})[ctx.rank] = win
        yield from ctx.coll.barrier()
        win.ctrl_refs = bbc
        self.windows.append(win)
        return win

    # ------------------------------------------------------------------
    def win_attach(self, win: Window, seg):
        if win.flavor is not WinFlavor.DYNAMIC:
            raise WindowError("attach on a non-dynamic window")
        return (yield from dyn_mod.attach(win, seg))

    def win_detach(self, win: Window, desc):
        if win.flavor is not WinFlavor.DYNAMIC:
            raise WindowError("detach on a non-dynamic window")
        yield from dyn_mod.detach(win, desc)
