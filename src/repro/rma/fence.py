"""Fence synchronization (paper Section 2.3, "Fence").

    "Our implementation uses an x86 mfence instruction (XPMEM) and DMAPP
    bulk synchronization (gsync) followed by an MPI barrier to ensure
    global completion.  The asymptotic memory bound is O(1) and, assuming
    a good barrier implementation, the time bound is O(log p)."

The measured model is P_fence = 2.9 us * log2(p) (Figure 6b); the
per-round software overhead constant in :class:`~repro.rma.params.
FompiParams` calibrates the gsync/progress work done each dissemination
round so the simulated total lands on that line.
"""

from __future__ import annotations

from repro.errors import EpochError
from repro.rma import recovery

__all__ = ["fence"]


def fence(win, no_succeed: bool = False):
    """MPI_Win_fence: close the previous epochs, open the next ones.

    ``no_succeed=True`` corresponds to MPI_MODE_NOSUCCEED: this fence ends
    the epoch sequence (no new epoch opens), allowing a switch to passive
    target afterwards.
    """
    ctx = win.ctx
    p = ctx.nranks
    t0 = ctx.now
    # Local memory barrier makes XPMEM stores visible ...
    yield from ctx.compute(win.params.mfence_ns)
    yield from ctx.xpmem.mfence()
    # ... gsync commits all outstanding DMAPP operations ...
    yield from ctx.dmapp.gsync()
    # ... and a barrier orders all ranks.  The calibrated per-round
    # software cost covers completion bookkeeping and progress.
    rounds = max(1, (p - 1).bit_length()) if p > 1 else 0
    if rounds:
        yield from ctx.compute(win.params.fence_round_overhead * rounds)
    if ctx.notifier is None:
        yield from ctx.coll.barrier()
    else:
        # Fault containment: a crashed participant turns the fence into a
        # structured EpochError on every survivor (closing the epochs)
        # instead of a barrier that never completes.
        try:
            yield from recovery.guarded_barrier(ctx, "fence")
        except EpochError:
            win.epoch_access = None
            win.epoch_exposure = None
            raise
    obs = ctx.obs
    if obs is not None:
        obs.rank_span(ctx.rank, "epoch.fence", t0, ctx.now, cat="epoch")
        obs.metrics.count("rma.fence", ctx.rank)
        obs.metrics.observe("fence_ns", ctx.rank, ctx.now - t0)
    ck = ctx.checker
    if ck is not None:
        # Cross-rank ordering came from the barrier's collective hooks;
        # the fence itself completes this origin's outstanding ops.
        ck.on_fence(win)
    win.epoch_access = None if no_succeed else "fence"
    win.epoch_exposure = None if no_succeed else "fence"
