"""Dynamic windows: attach/detach + the one-sided descriptor cache
(paper Section 2.2, "Dynamic Windows").

Base protocol (quoting the paper): attach registers the region and inserts
it into a linked list, detach removes it -- O(1) memory per region, both
non-collective.  Remote access is "purely one sided using a local cache
of remote descriptors": every rank keeps an id counter that attach/detach
increment; an origin first *gets* the target's id to validate its cache,
and on mismatch discards it and re-fetches the whole region list with a
series of remote operations.

The id counter lives in the window control words (``IDX_DYN_ID``); the
region list fetch is charged as a real DMAPP get of
``len(list) * dyn_descriptor_bytes`` bytes from a registered directory
segment on the target, so its cost scales with the number of attached
regions exactly as a real implementation's would.

**Optimized variant** (the paper's optimization paragraph): "instead of
the id counter, each process could maintain a list of processes that have
a cached copy of its local memory descriptors.  Before returning from
detach, a process notifies all these processes to invalidate their cache
[...]  After a cache invalidation or a first time access, a process has
to register itself on the target for detach notifications."  The
cacher/invalidation lists use the same free-storage ring scheme as the
PSCW matching lists (Figure 2c).  The variant "enables better latency for
communication functions, but has a small memory overhead and is
suboptimal for frequent detach operations" -- properties the test suite
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RmaError, WindowError
from repro.mem.atomic import AtomicArray
from repro.rma import window as win_mod

__all__ = ["DynamicState", "OptimizedDynamicState", "attach", "detach"]

_DIRECTORY_BYTES = 64 * 1024  # registered directory segment per rank
_RING_CAPACITY = 64           # cacher/invalidation ring slots


@dataclass
class DynamicState:
    """Per-rank dynamic-window state."""

    regions: list = field(default_factory=list)      # local attached descs
    directory_seg: object = None                      # registered directory
    directory_desc: object = None
    cache: dict = field(default_factory=dict)         # target -> (id, [descs])
    cache_hits: int = 0
    cache_misses: int = 0

    def resolve(self, win, target: int, vaddr: int, nbytes: int):
        """Origin-side lookup with the id-validation protocol (generator)."""
        ctx = win.ctx
        ctrl = win.ctrl_refs[target]
        cached = self.cache.get(target)
        # Validate the cache: one 8-byte remote read of the id counter.
        if ctx.same_node(target):
            yield from ctx.xpmem.amo(ctrl, win_mod.IDX_DYN_ID, "add", 0)
            current_id = ctrl.load(win_mod.IDX_DYN_ID)
        else:
            current_id = yield from ctx.dmapp.amo_b(
                target, ctrl, win_mod.IDX_DYN_ID, "add", 0)
        if cached is None or cached[0] != current_id:
            self.cache_misses += 1
            yield from self._refetch(win, target, current_id)
            cached = self.cache[target]
        else:
            self.cache_hits += 1
        for desc in cached[1]:
            if desc.contains(vaddr, nbytes):
                return desc
        raise WindowError(
            f"rank {win.rank}: dynamic-window access to unattached memory "
            f"{vaddr:#x}+{nbytes} at target {target}")

    def _refetch(self, win, target: int, current_id: int):
        """Discard and reload the remote region list (a real get whose size
        scales with the region count)."""
        ctx = win.ctx
        remote = win.ctx.world.blackboard[("dyn", win.win_id, target)]
        n = max(1, len(remote.regions))
        yield from ctx.dmapp.get_b(remote.directory_desc, 0,
                                   n * win.params.dyn_descriptor_bytes)
        self.cache[target] = (current_id, list(remote.regions))


@dataclass
class OptimizedDynamicState(DynamicState):
    """Notification-based cache invalidation (the paper's optimization).

    * ``cachers``: ring of ranks holding a cached copy of *my* region
      list (they registered on first access / after invalidation),
    * ``inval``: ring into which targets push their rank when they detach,
      drained locally before each communication attempt.
    """

    cachers: AtomicArray = None
    inval: AtomicArray = None
    notifications_sent: int = 0
    invalidations_seen: int = 0

    def _ring_append(self, ring: AtomicArray, value: int):
        def mutate():
            for s in range(len(ring)):
                if ring.load(s) == 0:
                    ring.store(s, value + 1)
                    return s
            raise RmaError("dynamic-window notification ring overflow")
        return mutate

    def _drain_invalidations(self) -> None:
        for s in range(len(self.inval)):
            v = self.inval.load(s)
            if v != 0:
                self.cache.pop(v - 1, None)
                self.inval.store(s, 0)
                self.invalidations_seen += 1

    def resolve(self, win, target: int, vaddr: int, nbytes: int):
        """Optimized lookup: a *local* invalidation check replaces the
        remote id read -- cache hits cost no remote operations at all."""
        ctx = win.ctx
        self._drain_invalidations()
        cached = self.cache.get(target)
        if cached is None:
            self.cache_misses += 1
            remote = ctx.world.blackboard[("dyn", win.win_id, target)]
            n = max(1, len(remote.regions))
            yield from ctx.dmapp.get_b(remote.directory_desc, 0,
                                       n * win.params.dyn_descriptor_bytes)
            self.cache[target] = (0, list(remote.regions))
            # register for detach notifications at the target
            append = remote._ring_append(remote.cachers, ctx.rank)
            if ctx.same_node(target):
                yield from ctx.instr(win.params.instr_lock)
                append()
            else:
                yield from ctx.dmapp.amo_custom_nbi(target, append)
            cached = self.cache[target]
        else:
            self.cache_hits += 1
        for desc in cached[1]:
            if desc.contains(vaddr, nbytes):
                return desc
        raise WindowError(
            f"rank {win.rank}: dynamic-window access to unattached memory "
            f"{vaddr:#x}+{nbytes} at target {target}")

    def notify_detach(self, win):
        """Before detach returns: invalidate every registered cacher and
        discard the remote process list (generator)."""
        ctx = win.ctx
        for s in range(len(self.cachers)):
            v = self.cachers.load(s)
            if v == 0:
                continue
            peer = v - 1
            self.cachers.store(s, 0)
            self.notifications_sent += 1
            other = ctx.world.blackboard[("dyn", win.win_id, peer)]
            append = other._ring_append(other.inval, ctx.rank)
            if ctx.same_node(peer):
                yield from ctx.instr(win.params.instr_lock)
                append()
            else:
                yield from ctx.dmapp.amo_custom_nbi(peer, append)


def attach(win, seg):
    """MPI_Win_attach: register and list a local memory region (O(1))."""
    st: DynamicState = win.dyn
    if any(d.seg_id == seg.seg_id for d in st.regions):
        raise WindowError("region already attached")
    desc = win.ctx.reg.register(seg)
    st.regions.append(desc)
    win.ctrl.fadd(win_mod.IDX_DYN_ID, 1)
    win.ctx.world.counters.add_control_memory(win.rank, 3)  # one list node
    yield from win.ctx.instr(200)  # registration syscall-ish cost
    return desc


def detach(win, desc):
    """MPI_Win_detach: unlist and deregister.  Remote caches are
    invalidated via the id counter (base protocol) or by explicit
    notifications (optimized protocol)."""
    st: DynamicState = win.dyn
    for i, d in enumerate(st.regions):
        if d.seg_id == desc.seg_id and d.generation == desc.generation:
            del st.regions[i]
            break
    else:
        raise WindowError("detaching a region that was never attached")
    win.ctx.reg.deregister(desc)
    win.ctrl.fadd(win_mod.IDX_DYN_ID, 1)
    if isinstance(st, OptimizedDynamicState):
        yield from st.notify_detach(win)
    win.ctx.world.counters.add_control_memory(win.rank, -3)
    yield from win.ctx.instr(200)
