"""The MPI window object: communication calls + epoch bookkeeping.

Control-structure layout (one :class:`~repro.mem.atomic.AtomicArray` per
rank per window; indices below) -- these are the O(1)+O(k) words per
process the paper's protocols need:

====================  =======================================================
``IDX_LOCAL_LOCK``    local reader-writer lock word (Figure 3a): MSB = writer
                      flag, low bits = shared-lock count
``IDX_GLOBAL_LOCK``   global lock word, meaningful on the master rank only:
                      high 32 bits = lock_all (shared) count, low 32 bits =
                      count of origins holding exclusive locks
``IDX_PSCW_DONE``     PSCW completion counter (complete() increments)
``IDX_PSCW_VERSION``  bumped on every matching-list append; start() watches it
``IDX_DYN_ID``        dynamic-window attach/detach id counter (Section 2.2)
``IDX_ACC_LOCK``      internal lock for the software accumulate fallback
``IDX_PSCW_SLOTS..``  the matching list: ``ring_capacity`` free-storage slots
                      (Figure 2b/2c), slot value = poster rank + 1, 0 = free
====================  =======================================================

Communication calls follow the paper's Section 2.4: intra-node targets use
XPMEM loads/stores, inter-node targets use DMAPP; derived datatypes are
decomposed into minimal contiguous blocks with one operation per block;
the fast path charges exactly the paper's 173 instructions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.check import epochs as epoch_rules
from repro.errors import RmaError, WindowError
from repro.mem.atomic import AtomicArray, SegmentCells
from repro.rma import accumulate as acc_mod
from repro.rma import fence as fence_mod
from repro.rma import locks as locks_mod
from repro.rma import pscw as pscw_mod
from repro.rma.datatypes import BYTE, Datatype, Predefined, zip_blocks
from repro.rma.enums import LockType, Op, WinFlavor
from repro.rma.params import FompiParams

__all__ = ["Window", "RmaRequest", "CTRL_WORDS_BASE",
           "IDX_LOCAL_LOCK", "IDX_GLOBAL_LOCK", "IDX_PSCW_DONE",
           "IDX_PSCW_VERSION", "IDX_DYN_ID", "IDX_ACC_LOCK", "IDX_PSCW_SLOTS"]

IDX_LOCAL_LOCK = 0
IDX_GLOBAL_LOCK = 1
IDX_PSCW_DONE = 2
IDX_PSCW_VERSION = 3
IDX_DYN_ID = 4
IDX_ACC_LOCK = 5
IDX_PSCW_SLOTS = 6
CTRL_WORDS_BASE = 6


class RmaRequest:
    """Request-based RMA operation handle (MPI_Rput / MPI_Rget)."""

    def __init__(self, win: "Window", handles, result=None) -> None:
        self.win = win
        self.handles = handles
        self.result = result

    def wait(self):
        for h in self.handles:
            yield from self.win.ctx.dmapp.wait(h)
        return self.result


class Window:
    """One rank's handle on an MPI-3 window."""

    def __init__(self, ctx, win_id: int, flavor: WinFlavor, *,
                 seg=None, disp_unit: int = 1, size: int = 0,
                 params: FompiParams | None = None) -> None:
        self.ctx = ctx
        self.win_id = win_id
        self.flavor = flavor
        self.seg = seg
        self.size = size
        self.disp_unit = disp_unit
        self.params = params or FompiParams()
        self.nranks = ctx.nranks
        self.rank = ctx.rank

        # Remote-addressing state (filled by the creation protocols):
        self.base_vaddr: int | None = None            # ALLOCATE: O(1)
        self.descs: dict[int, Any] | None = None      # CREATE: Omega(p)
        self.xtokens: dict[int, Any] = {}             # same-node direct maps
        self.ctrl: AtomicArray | None = None
        self.ctrl_refs: dict[int, AtomicArray] = {}
        self.shared_segment = None                    # SHARED flavor
        self.shared_offsets: dict[int, int] | None = None

        # Synchronization state:
        self.epoch_access: str | None = None    # 'fence'|'pscw'|'lock'|'lock_all'
        self.epoch_exposure: str | None = None
        self.lock_state = locks_mod.LockState()
        self.pscw_state = pscw_mod.PscwState()
        self.dyn = None                          # DynamicState for DYNAMIC

        # Introspection for tests/benches:
        self.op_counts = {"put": 0, "get": 0, "accumulate": 0,
                          "get_accumulate": 0, "fetch_and_op": 0,
                          "compare_and_swap": 0, "flush": 0}
        self.freed = False

    # ------------------------------------------------------------------
    # addressing helpers
    # ------------------------------------------------------------------
    @property
    def master(self) -> int:
        """Designated holder of the global lock variable (rank 0)."""
        return 0

    def _check_alive(self) -> None:
        if self.freed:
            raise WindowError("operation on a freed window")

    def _target_segment(self, target: int, toff: int, nbytes: int):
        """Resolve (segment, base) for a target byte range (static flavors)."""
        world = self.ctx.world
        if self.flavor is WinFlavor.ALLOCATE:
            return world.reg_tables[target].resolve_va(
                self.base_vaddr + toff, max(1, nbytes)), 0
        if self.flavor is WinFlavor.CREATE:
            desc = self.descs[target]
            return world.reg_tables[target].resolve(desc), 0
        if self.flavor is WinFlavor.SHARED:
            return self.shared_segment, self.shared_offsets[target]
        raise WindowError(f"direct addressing unsupported for {self.flavor}")

    def _target_desc(self, target: int, toff: int, nbytes: int):
        """Descriptor for the DMAPP path (static flavors)."""
        world = self.ctx.world
        if self.flavor is WinFlavor.ALLOCATE:
            return world.reg_tables[target].descriptor_for_va(
                self.base_vaddr + toff, max(1, nbytes))
        if self.flavor is WinFlavor.CREATE:
            return self.descs[target]
        raise WindowError(f"DMAPP addressing unsupported for {self.flavor}")

    def _use_xpmem(self, target: int) -> bool:
        if self.flavor is WinFlavor.SHARED:
            return True
        if self.flavor is WinFlavor.DYNAMIC:
            return False
        return target in self.xtokens

    def _byte_offset(self, target_disp: int) -> int:
        return target_disp * self.disp_unit

    # ------------------------------------------------------------------
    # epoch checking (MPI semantics) -- rules live in repro.check.epochs,
    # shared between this always-on guard and the full checker.
    # ------------------------------------------------------------------
    def _require_access(self, target: int) -> None:
        epoch_rules.require_access(self, target)

    # ------------------------------------------------------------------
    # communication: put / get
    # ------------------------------------------------------------------
    def put(self, data, target: int, target_disp: int = 0, *,
            origin_datatype: Datatype | None = None,
            target_datatype: Datatype | None = None,
            count: int | None = None):
        """MPI_Put.  ``data`` is the origin buffer (any numpy array); the
        target displacement is in units of the window's ``disp_unit``."""
        self._check_alive()
        self._require_access(target)
        self.op_counts["put"] += 1
        yield from self.ctx.instr(self.params.instr_put)
        raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8).ravel()
        toff = self._byte_offset(target_disp)
        pieces = self._pieces(raw.size, origin_datatype, target_datatype,
                              count)
        ck = self.ctx.checker
        if ck is not None:
            ck.note_op(self, "put", target,
                       [(toff + t, toff + t + n) for _o, t, n in pieces])
        handles = yield from self._transfer_out(raw, target, toff, pieces)
        return handles

    def rput(self, data, target: int, target_disp: int = 0, **kw):
        """Request-based put: completion via the returned request."""
        handles = yield from self.put(data, target, target_disp, **kw)
        return RmaRequest(self, handles)

    def _transfer_out(self, raw, target, toff, pieces):
        ctx = self.ctx
        handles = []
        if self.flavor is WinFlavor.DYNAMIC:
            for o_off, t_off, n in pieces:
                desc = yield from self.dyn.resolve(self, target, toff + t_off, n)
                h = yield from ctx.dmapp.put_nbi(
                    desc, toff + t_off - desc.vaddr, raw[o_off:o_off + n])
                handles.append(h)
        elif self._use_xpmem(target):
            seg, base = (self._target_segment(target, toff, raw.size)
                         if self.flavor is WinFlavor.SHARED
                         else (None, 0))
            for o_off, t_off, n in pieces:
                if self.flavor is WinFlavor.SHARED:
                    yield from ctx.xpmem.store(
                        _SegToken(seg), base + toff + t_off,
                        raw[o_off:o_off + n])
                else:
                    yield from ctx.xpmem.store(
                        self.xtokens[target], toff + t_off,
                        raw[o_off:o_off + n])
        else:
            logger = (ctx.ft.put_logger(self, target)
                      if ctx.ft is not None else None)
            for o_off, t_off, n in pieces:
                desc = self._target_desc(target, toff + t_off, n)
                base = ((self.base_vaddr - desc.vaddr)
                        if self.flavor is WinFlavor.ALLOCATE else 0)
                h = yield from ctx.dmapp.put_nbi(
                    desc, base + toff + t_off, raw[o_off:o_off + n],
                    on_applied=logger)
                handles.append(h)
        return handles

    def get(self, out, target: int, target_disp: int = 0, *,
            origin_datatype: Datatype | None = None,
            target_datatype: Datatype | None = None,
            count: int | None = None):
        """MPI_Get into the ``out`` buffer (filled at flush/completion for
        the DMAPP path, immediately for XPMEM)."""
        self._check_alive()
        self._require_access(target)
        self.op_counts["get"] += 1
        yield from self.ctx.instr(self.params.instr_get)
        out_raw = out.view(np.uint8).reshape(-1)
        toff = self._byte_offset(target_disp)
        pieces = self._pieces(out_raw.size, origin_datatype, target_datatype,
                              count)
        ck = self.ctx.checker
        if ck is not None:
            ck.note_op(self, "get", target,
                       [(toff + t, toff + t + n) for _o, t, n in pieces])
        ctx = self.ctx
        handles = []
        if self.flavor is WinFlavor.DYNAMIC:
            for o_off, t_off, n in pieces:
                desc = yield from self.dyn.resolve(self, target, toff + t_off, n)
                h = yield from ctx.dmapp.get_nbi(
                    desc, toff + t_off - desc.vaddr, n,
                    out=out_raw[o_off:o_off + n])
                handles.append(h)
        elif self._use_xpmem(target):
            for o_off, t_off, n in pieces:
                if self.flavor is WinFlavor.SHARED:
                    seg, base = self._target_segment(target, toff, n)
                    got = yield from ctx.xpmem.load(
                        _SegToken(seg), base + toff + t_off, n)
                else:
                    got = yield from ctx.xpmem.load(
                        self.xtokens[target], toff + t_off, n)
                out_raw[o_off:o_off + n] = got
        else:
            for o_off, t_off, n in pieces:
                desc = self._target_desc(target, toff + t_off, n)
                base = ((self.base_vaddr - desc.vaddr)
                        if self.flavor is WinFlavor.ALLOCATE else 0)
                h = yield from ctx.dmapp.get_nbi(
                    desc, base + toff + t_off, n, out=out_raw[o_off:o_off + n])
                handles.append(h)
        return handles

    def rget(self, out, target: int, target_disp: int = 0, **kw):
        handles = yield from self.get(out, target, target_disp, **kw)
        return RmaRequest(self, handles, result=out)

    def get_blocking(self, target: int, target_disp: int, nbytes: int,
                     dtype=np.uint8):
        """Convenience: get + wait; returns a fresh array."""
        out = np.empty(nbytes, dtype=np.uint8)
        handles = yield from self.get(out, target, target_disp)
        for h in handles:
            yield from self.ctx.dmapp.wait(h)
        return out.view(dtype)

    def _pieces(self, total_bytes: int, origin_dt, target_dt, count):
        """Aligned (origin_off, target_off, nbytes) pieces -- the
        minimal-contiguous-block decomposition of Section 2.4."""
        n = count if count is not None else 1
        if origin_dt is None and target_dt is None:
            return [(0, 0, total_bytes)]
        odt = origin_dt or BYTE
        tdt = target_dt or BYTE
        ocount = n if origin_dt is not None else total_bytes
        payload = odt.size * ocount
        tcount = (payload // tdt.size) if tdt.size else 0
        return list(zip_blocks(odt.blocks(ocount), tdt.blocks(tcount)))

    # ------------------------------------------------------------------
    # communication: atomics (delegated to the accumulate module)
    # ------------------------------------------------------------------
    def accumulate(self, data, target: int, target_disp: int = 0,
                   op: Op = Op.SUM, *, element_bytes: int | None = None):
        self._check_alive()
        self._require_access(target)
        self.op_counts["accumulate"] += 1
        self._note_atomic("acc", target, target_disp, op, np.asarray(data))
        return (yield from acc_mod.accumulate(self, data, target,
                                              target_disp, op,
                                              element_bytes=element_bytes,
                                              fetch=False))

    def get_accumulate(self, data, target: int, target_disp: int = 0,
                       op: Op = Op.SUM, *, element_bytes: int | None = None):
        """Returns the previous target contents (same shape as data)."""
        self._check_alive()
        self._require_access(target)
        self.op_counts["get_accumulate"] += 1
        self._note_atomic("get_acc", target, target_disp, op,
                          np.asarray(data))
        return (yield from acc_mod.accumulate(self, data, target,
                                              target_disp, op,
                                              element_bytes=element_bytes,
                                              fetch=True))

    def fetch_and_op(self, value, target: int, target_disp: int = 0,
                     op: Op = Op.SUM):
        """Single-element fetching atomic (fine-grained completion)."""
        self._check_alive()
        self._require_access(target)
        self.op_counts["fetch_and_op"] += 1
        self._note_atomic("fao", target, target_disp, op,
                          np.asarray(value).reshape(1))
        return (yield from acc_mod.fetch_and_op(self, value, target,
                                                target_disp, op))

    def compare_and_swap(self, compare, swap, target: int,
                         target_disp: int = 0):
        """8-byte CAS; returns the old value."""
        self._check_alive()
        self._require_access(target)
        self.op_counts["compare_and_swap"] += 1
        ck = self.ctx.checker
        if ck is not None:
            toff = self._byte_offset(target_disp)
            ck.note_op(self, "cas", target, [(toff, toff + 8)], op="cas",
                       path="hw")
        return (yield from acc_mod.compare_and_swap(self, compare, swap,
                                                    target, target_disp))

    def _note_atomic(self, kind: str, target: int, target_disp: int,
                     op: Op, arr: np.ndarray) -> None:
        """Shadow-record one accumulate-family call (checker attached)."""
        ck = self.ctx.checker
        if ck is not None:
            toff = self._byte_offset(target_disp)
            ck.note_op(self, kind, target, [(toff, toff + arr.nbytes)],
                       op=op.name.lower(),
                       path=acc_mod.acc_path(self, op, arr, toff))

    # ------------------------------------------------------------------
    # synchronization -- thin wrappers over the protocol modules
    # ------------------------------------------------------------------
    def fence(self, no_succeed: bool = False):
        self._check_alive()
        yield from fence_mod.fence(self, no_succeed=no_succeed)

    def post(self, group):
        self._check_alive()
        yield from pscw_mod.post(self, group)

    def start(self, group):
        self._check_alive()
        yield from pscw_mod.start(self, group)

    def complete(self):
        self._check_alive()
        yield from pscw_mod.complete(self)

    def wait(self):
        self._check_alive()
        yield from pscw_mod.wait(self)

    def lock(self, target: int, lock_type: LockType = LockType.SHARED):
        self._check_alive()
        yield from locks_mod.lock(self, target, lock_type)

    def unlock(self, target: int):
        self._check_alive()
        yield from locks_mod.unlock(self, target)

    def lock_all(self):
        self._check_alive()
        yield from locks_mod.lock_all(self)

    def unlock_all(self):
        self._check_alive()
        yield from locks_mod.unlock_all(self)

    # -- flush family (Section 2.3: "all flush operations share the same
    # implementation and add only 78 CPU instructions") ------------------
    def flush(self, target: int | None = None):
        """Remote completion of all outstanding operations.

        DMAPP only offers *bulk* completion (gsync), so per-target flush
        is implemented as a full flush -- exactly what foMPI does.
        """
        self._check_alive()
        epoch_rules.require_flush(self)
        self.op_counts["flush"] += 1
        self.ctx.note_api(f"win.flush(target={target})")
        t0 = self.ctx.now
        yield from self.ctx.instr(self.params.instr_flush)
        yield from self.ctx.compute(self.params.mfence_ns)
        yield from self.ctx.dmapp.gsync()
        obs = self.ctx.obs
        if obs is not None:
            obs.rank_span(self.ctx.rank, "flush", t0, self.ctx.now,
                          cat="rma")
            obs.metrics.count("rma.flush", self.ctx.rank)
            obs.metrics.observe("flush_ns", self.ctx.rank,
                                self.ctx.now - t0)
        ck = self.ctx.checker
        if ck is not None:
            ck.on_flush(self)
        self.ctx.env.note_progress()

    def flush_all(self):
        yield from self.flush(None)

    def flush_local(self, target: int | None = None):
        """Local completion only: origin buffers reusable."""
        self._check_alive()
        self.op_counts["flush"] += 1
        yield from self.ctx.instr(self.params.instr_flush)

    def flush_local_all(self):
        yield from self.flush_local(None)

    def sync(self):
        """MPI_Win_sync: memory barrier (P_sync = 17 ns)."""
        yield from self.ctx.instr(self.params.instr_sync)
        yield from self.ctx.xpmem.mfence()

    # ------------------------------------------------------------------
    def free(self):
        """Collective window destruction.

        With a failure notifier installed the closing barrier tolerates
        dead participants: the free degrades to a local teardown (counted
        in ``stats.recovery.degraded_frees``) instead of hanging on a
        collective that can never complete.
        """
        self._check_alive()
        if self.lock_state.held or self.lock_state.lock_all_held:
            raise RmaError("freeing a window while holding locks")
        if self.ctx.ft is not None:
            # Cancel in-flight replica deposits and release buddy-side
            # checkpoint memory before the segment itself goes away.
            self.ctx.ft.release_window(self)
        if self.ctx.notifier is None:
            yield from self.ctx.coll.barrier()
        else:
            from repro.rma import recovery
            yield from recovery.guarded_free(self)
        self.freed = True

    # -- convenience -----------------------------------------------------
    def local_view(self, dtype=np.uint8) -> np.ndarray:
        """Typed view of this rank's window memory."""
        if self.flavor is WinFlavor.SHARED:
            off = self.shared_offsets[self.rank]
            return self.shared_segment.view(off, self.size).view(np.dtype(dtype))
        if self.seg is None:
            raise WindowError(f"{self.flavor} window has no local segment")
        return self.seg.typed(dtype)

    def _local_seg(self):
        """(segment, base offset) of this rank's own window memory."""
        if self.flavor is WinFlavor.SHARED:
            return self.shared_segment, self.shared_offsets[self.rank]
        if self.seg is None:
            raise WindowError(f"{self.flavor} window has no local segment")
        return self.seg, 0

    def local_store(self, data, offset: int = 0) -> None:
        """Target-side CPU store into this rank's window memory.

        Equivalent to writing through :meth:`local_view` (zero simulated
        cost; a plain method, not a generator) but visible to the
        memory-model checker as a *local* access, so separate-model
        local/remote conflicts (paper Section 4) are detectable.
        """
        self._check_alive()
        seg, base = self._local_seg()
        ck = self.ctx.checker
        if ck is not None:
            ck.watch_segment(self, seg, base)
            with ck.local_attribution(self, self.rank, base):
                seg.write(base + offset, data)
            return
        seg.write(base + offset, data)

    def note_local(self, kind: str, nbytes: int, offset: int = 0) -> None:
        """Annotate a target-side access made through :meth:`local_view`.

        The zero-copy numpy array returned by :meth:`local_view` bypasses
        the checker's segment watch funnel, so accesses through it are
        invisible to race detection (the documented ``local_view`` gap).
        Programs that keep the zero-copy path declare those accesses
        explicitly: ``kind`` is ``"load"`` or ``"store"``, the range is
        ``[offset, offset + nbytes)`` in bytes from the window base.
        Zero simulated cost; a no-op without a checker attached.
        """
        self._check_alive()
        ck = self.ctx.checker
        if ck is not None:
            ck.note_local(self, kind, offset, nbytes)

    def local_load(self, nbytes: int, offset: int = 0) -> np.ndarray:
        """Target-side CPU load from this rank's window memory (the
        checker-visible counterpart of reading :meth:`local_view`)."""
        self._check_alive()
        seg, base = self._local_seg()
        ck = self.ctx.checker
        if ck is not None:
            ck.watch_segment(self, seg, base)
            with ck.local_attribution(self, self.rank, base):
                return seg.read(base + offset, nbytes)
        return seg.read(base + offset, nbytes)

    def shared_query(self, rank: int):
        """MPI_Win_shared_query: (segment, byte offset) of a peer's part."""
        if self.flavor is not WinFlavor.SHARED:
            raise WindowError("shared_query on a non-shared window")
        return self.shared_segment, self.shared_offsets[rank]

    def attach(self, seg):
        """MPI_Win_attach (dynamic windows only)."""
        return (yield from self.ctx.rma.win_attach(self, seg))

    def detach(self, desc):
        """MPI_Win_detach (dynamic windows only)."""
        yield from self.ctx.rma.win_detach(self, desc)

    def control_words(self) -> int:
        """Number of control words this rank allocated for the window --
        the paper's memory-overhead metric."""
        n = len(self.ctrl) if self.ctrl is not None else 0
        if self.descs is not None:
            n += len(self.descs)  # Omega(p) descriptor table (CREATE)
        return n


class _SegToken:
    """Adapter making a raw segment look like an XPMEM token (shared
    windows address one common segment by offset)."""

    __slots__ = ("seg",)

    def __init__(self, seg) -> None:
        self.seg = seg
