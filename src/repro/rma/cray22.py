"""Cray MPI-2.2 one-sided baseline ("relatively untuned", per the paper).

Every figure that includes "Cray MPI-2.2" compares foMPI against the
vendor's MPI-2 RMA implementation, whose small-message path goes through a
software agent (window bookkeeping, origin-side queuing) and only switches
to direct DMAPP transfers above a size threshold -- the "DMAPP protocol
change" annotated around 4-8 KiB in Figures 4a/4b/5a/5b.

This module reproduces that cost structure over the same substrate:

* put/get below ``protocol_change_bytes``: software path -- large constant
  overhead on the remote side, byte cost above the wire gap;
* above the threshold: direct DMAPP plus a small constant;
* fence: heavy per-round software cost (Figure 6b);
* PSCW: implemented over two-sided internal messages with a per-call cost
  that grows with the process count -- the "systematically growing
  overheads in Cray's implementation" of Figure 6c;
* accumulate: software active-message-style (used in the DSDE study).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EpochError

__all__ = ["Cray22Params", "Cray22Window", "win_allocate_cray22"]


@dataclass(frozen=True)
class Cray22Params:
    """Cray MPI-2.2 RMA cost model (ns)."""

    protocol_change_bytes: int = 4096
    sw_put_origin: float = 1200.0     # origin library path (small msgs)
    sw_put_remote: float = 7500.0     # software agent at the target
    sw_large_origin: float = 1800.0   # origin path after protocol change
    sw_get_remote: float = 8800.0
    sw_byte_gap: float = 1.1          # software-path copy cost per byte
    fence_round_overhead: float = 5200.0
    pscw_base: float = 2500.0         # per post/start/complete/wait call
    pscw_log_coeff: float = 900.0     # * log2(p): growing overheads (Fig 6c)
    accumulate_overhead: float = 9500.0
    msg_rate_overhead: float = 600.0  # extra per-op issue cost


class Cray22Window:
    """An MPI-2.2 window (baseline implementation)."""

    def __init__(self, ctx, seg, descs, params: Cray22Params | None = None) -> None:
        self.ctx = ctx
        self.seg = seg
        self.descs = descs
        self.params = params or Cray22Params()
        self.epoch_open = False
        self._deferred = []   # software-queued small ops, sent at sync

    # -- communication -----------------------------------------------------
    def put(self, data, target: int, offset: int = 0):
        ctx = self.ctx
        p = self.params
        raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8).ravel()
        if raw.size < p.protocol_change_bytes:
            yield from ctx.compute(p.sw_put_origin + p.msg_rate_overhead)
            h = yield from ctx.dmapp.put_nbi(self.descs[target], offset, raw)
            # Software path: the transfer is processed by the *target*
            # agent (copy + bookkeeping) -- asynchronous to the origin CPU,
            # so it delays completion rather than charging compute here.
            ctx.dmapp.extend_completion(
                h, p.sw_put_remote
                + raw.size * (p.sw_byte_gap - ctx.world.gemini.gap_per_byte))
        else:
            yield from ctx.compute(p.sw_large_origin)
            yield from ctx.dmapp.put_nbi(self.descs[target], offset, raw)
        return None

    def get(self, out: np.ndarray, target: int, offset: int = 0):
        ctx = self.ctx
        p = self.params
        n = out.nbytes
        if n < p.protocol_change_bytes:
            yield from ctx.compute(p.sw_put_origin + p.msg_rate_overhead)
            yield from ctx.compute(p.sw_get_remote
                                   + n * (p.sw_byte_gap
                                          - ctx.world.gemini.get_gap_per_byte))
            got = yield from ctx.dmapp.get_b(self.descs[target], offset, n)
        else:
            yield from ctx.compute(p.sw_large_origin)
            got = yield from ctx.dmapp.get_b(self.descs[target], offset, n)
        out.view(np.uint8).ravel()[:] = got

    def accumulate(self, data, target: int, offset: int = 0):
        """Software accumulate (active-message at the target agent)."""
        ctx = self.ctx
        yield from ctx.compute(self.params.accumulate_overhead)
        raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8).ravel()
        # Modeled as a put that the remote agent applies; SUM on int64.
        seg = ctx.world.reg_tables[target].resolve(self.descs[target])
        vals = np.asarray(data).ravel()

        def deliver(_t, seg=seg, off=offset, vals=vals):
            view = seg.typed(vals.dtype, offset=off, count=vals.size)
            view += vals

        net = ctx.world.network
        inj_start, inj_end = net.occupy_injection(ctx.node, raw.size)
        net.packet(ctx.node, ctx.node_of(target), raw.size,
                   inject_window=(inj_start, inj_end), on_deliver=deliver)
        yield from ctx.compute(net.params.o_inject)

    # -- completion ----------------------------------------------------------
    def _drain(self):
        """Complete all outstanding operations (agent time is already part
        of each handle's extended completion horizon)."""
        self._deferred.clear()
        yield from self.ctx.dmapp.gsync()

    def flush(self, target: int | None = None):
        yield from self._drain()

    def fence(self):
        ctx = self.ctx
        yield from self._drain()
        p = ctx.nranks
        rounds = max(1, (p - 1).bit_length()) if p > 1 else 0
        yield from ctx.compute(self.params.fence_round_overhead * rounds)
        yield from ctx.coll.barrier()
        self.epoch_open = True

    # -- PSCW over internal two-sided messages -------------------------------
    def _pscw_cost(self):
        p = self.ctx.nranks
        rounds = max(1, (p - 1).bit_length()) if p > 1 else 1
        yield from self.ctx.compute(
            self.params.pscw_base + self.params.pscw_log_coeff * rounds)

    def post(self, group):
        yield from self._pscw_cost()
        for j in group:
            yield from self.ctx.mpi.send(j, None, tag=901, channel="c22",
                                         nbytes=8)
        self._exposure = list(group)

    def start(self, group):
        yield from self._pscw_cost()
        for j in group:
            yield from self.ctx.mpi.recv(j, tag=901, channel="c22")
        self._access = list(group)
        self.epoch_open = True

    def complete(self):
        yield from self._drain()
        yield from self._pscw_cost()
        for j in self._access:
            yield from self.ctx.mpi.send(j, None, tag=902, channel="c22",
                                         nbytes=8)
        self.epoch_open = False

    def wait(self):
        yield from self._pscw_cost()
        for j in self._exposure:
            yield from self.ctx.mpi.recv(j, tag=902, channel="c22")

    def lock(self, target: int):
        if self.epoch_open:
            raise EpochError("lock inside an open epoch")
        yield from self.ctx.compute(self.params.pscw_base)
        self.epoch_open = True

    def unlock(self, target: int):
        yield from self._drain()
        yield from self.ctx.compute(self.params.pscw_base / 2)
        self.epoch_open = False


def win_allocate_cray22(ctx, size: int, params: Cray22Params | None = None):
    """Collective creation of an MPI-2.2 window (allgathered descriptors --
    MPI-2.2 predates scalable window creation)."""
    seg = ctx.space.alloc(max(1, size), label="c22win")
    desc = ctx.reg.register(seg)
    descs = yield from ctx.coll.allgather(desc, nbytes=32)
    yield from ctx.coll.barrier()
    return Cray22Window(ctx, seg, dict(enumerate(descs)), params)
