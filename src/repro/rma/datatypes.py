"""MPI derived-datatype engine.

The paper handles arbitrary MPI datatypes via the MPITypes library: "the
datatypes are split into the smallest number of contiguous blocks (using
both the origin and target datatype) and one DMAPP operation or memory
copy (XPMEM) is initiated for each block" (Section 2.4).

This module reproduces that: every datatype can enumerate its contiguous
``(offset, nbytes)`` blocks, adjacent blocks are coalesced to minimize the
block count, and :func:`zip_blocks` aligns an origin block stream with a
target block stream so the communication layer can issue one operation per
aligned piece.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import DatatypeError

__all__ = [
    "Datatype",
    "Predefined",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Struct",
    "zip_blocks",
    "coalesce",
    "BYTE",
    "INT32",
    "INT64",
    "UINT64",
    "FLOAT",
    "DOUBLE",
]


class Datatype:
    """Base class: a typemap with a size (payload bytes) and an extent."""

    size: int
    extent: int

    def blocks(self, count: int = 1, offset: int = 0) -> Iterator[tuple[int, int]]:
        """Yield coalesced contiguous (byte_offset, nbytes) blocks for
        ``count`` consecutive elements starting at byte ``offset``."""
        raise NotImplementedError

    def block_count(self, count: int = 1) -> int:
        return sum(1 for _ in self.blocks(count))

    def is_contiguous(self, count: int = 1) -> bool:
        return self.block_count(count) == 1

    # numpy interop -----------------------------------------------------
    numpy_dtype: np.dtype | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} size={self.size} extent={self.extent}>"


def coalesce(blocks: Iterable[tuple[int, int]]) -> Iterator[tuple[int, int]]:
    """Merge adjacent (offset, nbytes) blocks; input must be sorted runs."""
    cur_off = cur_len = None
    for off, ln in blocks:
        if ln == 0:
            continue
        if cur_off is not None and off == cur_off + cur_len:
            cur_len += ln
        else:
            if cur_off is not None:
                yield (cur_off, cur_len)
            cur_off, cur_len = off, ln
    if cur_off is not None:
        yield (cur_off, cur_len)


class Predefined(Datatype):
    """An intrinsic type: contiguous, extent == size."""

    def __init__(self, size: int, name: str, numpy_dtype=None) -> None:
        if size < 1:
            raise DatatypeError(f"bad intrinsic size {size}")
        self.size = size
        self.extent = size
        self.name = name
        self.numpy_dtype = np.dtype(numpy_dtype) if numpy_dtype else None

    def blocks(self, count: int = 1, offset: int = 0):
        if count:
            yield (offset, self.size * count)

    def __repr__(self) -> str:
        return f"MPI_{self.name}"


BYTE = Predefined(1, "BYTE", np.uint8)
INT32 = Predefined(4, "INT32", np.int32)
INT64 = Predefined(8, "INT64", np.int64)
UINT64 = Predefined(8, "UINT64", np.uint64)
FLOAT = Predefined(4, "FLOAT", np.float32)
DOUBLE = Predefined(8, "DOUBLE", np.float64)


class Contiguous(Datatype):
    """``count`` consecutive elements of a base type."""

    def __init__(self, count: int, base: Datatype) -> None:
        if count < 0:
            raise DatatypeError(f"negative count {count}")
        self.count = count
        self.base = base
        self.size = count * base.size
        self.extent = count * base.extent
        if base.size == base.extent and base.numpy_dtype is not None:
            self.numpy_dtype = base.numpy_dtype

    def blocks(self, count: int = 1, offset: int = 0):
        yield from coalesce(
            blk
            for i in range(count * self.count)
            for blk in self.base.blocks(1, offset + i * self.base.extent))


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` elements, strided in elements."""

    def __init__(self, count: int, blocklength: int, stride: int,
                 base: Datatype) -> None:
        if count < 0 or blocklength < 0:
            raise DatatypeError("negative vector count/blocklength")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self.size = count * blocklength * base.size
        self.extent = ((count - 1) * abs(stride) + blocklength) * base.extent \
            if count > 0 else 0

    def _one(self, offset: int):
        for b in range(self.count):
            start = offset + b * self.stride * self.base.extent
            yield from self.base.blocks(self.blocklength, start)

    def blocks(self, count: int = 1, offset: int = 0):
        yield from coalesce(
            blk
            for i in range(count)
            for blk in sorted(self._one(offset + i * self.extent)))


class Hvector(Vector):
    """Like Vector but the stride is given in *bytes*."""

    def __init__(self, count: int, blocklength: int, stride_bytes: int,
                 base: Datatype) -> None:
        super().__init__(count, blocklength, 1, base)
        self.stride_bytes = stride_bytes
        self.extent = ((count - 1) * abs(stride_bytes)
                       + blocklength * base.extent) if count > 0 else 0

    def _one(self, offset: int):
        for b in range(self.count):
            start = offset + b * self.stride_bytes
            yield from self.base.blocks(self.blocklength, start)


class Indexed(Datatype):
    """Blocks of varying length at varying element displacements."""

    def __init__(self, blocklengths: list[int], displacements: list[int],
                 base: Datatype) -> None:
        if len(blocklengths) != len(displacements):
            raise DatatypeError("blocklengths/displacements length mismatch")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.base = base
        self.size = sum(blocklengths) * base.size
        if blocklengths:
            self.extent = max(
                (d + b) * base.extent
                for d, b in zip(displacements, blocklengths))
        else:
            self.extent = 0

    def _one(self, offset: int):
        for ln, disp in zip(self.blocklengths, self.displacements):
            yield from self.base.blocks(ln, offset + disp * self.base.extent)

    def blocks(self, count: int = 1, offset: int = 0):
        yield from coalesce(
            blk
            for i in range(count)
            for blk in sorted(self._one(offset + i * self.extent)))


class Struct(Datatype):
    """Heterogeneous blocks at byte displacements."""

    def __init__(self, blocklengths: list[int], displacements: list[int],
                 types: list[Datatype]) -> None:
        if not (len(blocklengths) == len(displacements) == len(types)):
            raise DatatypeError("struct argument length mismatch")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.types = list(types)
        self.size = sum(b * t.size for b, t in zip(blocklengths, types))
        if blocklengths:
            self.extent = max(
                d + b * t.extent
                for b, d, t in zip(blocklengths, displacements, types))
        else:
            self.extent = 0

    def _one(self, offset: int):
        for ln, disp, t in zip(self.blocklengths, self.displacements,
                               self.types):
            yield from t.blocks(ln, offset + disp)

    def blocks(self, count: int = 1, offset: int = 0):
        yield from coalesce(
            blk
            for i in range(count)
            for blk in sorted(self._one(offset + i * self.extent)))


def zip_blocks(origin: Iterable[tuple[int, int]],
               target: Iterable[tuple[int, int]]) -> Iterator[tuple[int, int, int]]:
    """Align two block streams into (origin_off, target_off, nbytes) pieces.

    The streams must describe the same total payload size; each output
    piece is contiguous on both sides, so one hardware operation moves it.
    """
    oit, tit = iter(origin), iter(target)
    o = next(oit, None)
    t = next(tit, None)
    while o is not None and t is not None:
        o_off, o_len = o
        t_off, t_len = t
        n = min(o_len, t_len)
        yield (o_off, t_off, n)
        o = (o_off + n, o_len - n) if o_len > n else next(oit, None)
        t = (t_off + n, t_len - n) if t_len > n else next(tit, None)
    if o is not None or t is not None:
        raise DatatypeError("origin and target datatypes cover different sizes")
