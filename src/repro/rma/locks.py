"""Passive-target lock synchronization (paper Section 2.3, Figure 3).

Two-level 64-bit lock hierarchy:

* one **global** lock word at a designated *master* rank::

      [ lock_all (shared) count : 32 | exclusive-origin count : 32 ]

  The two halves guarantee that lock_all epochs and exclusive locks are
  mutually exclusive window-wide.

* one **local** lock word per rank (a classic reader-writer word,
  cf. Mellor-Crummey/Scott)::

      [ writer flag : 1 | shared-lock count : 63 ]

Protocol invariants for a local exclusive lock (quoted from the paper):
(1) no global shared lock can be held or acquired during it, and (2) no
local shared or exclusive lock can be held or acquired during it.  The
code below is a line-for-line realization of the acquisition/back-off
schedule of Figure 3c, including the shortcut where an origin already
holding an exclusive lock skips the global registration, and exponential
back-off on every retry path.

Costs land on the measured constants: shared/lock_all = one remote AMO
(~2.7 us), first exclusive = two AMOs (~5.4 us), unlock = one fire-and-
forget AMO (~0.4 us).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LockError, NodeCrashedError
from repro.rma import recovery
from repro.rma import window as win_mod
from repro.rma.enums import LockType

__all__ = ["LockState", "lock", "unlock", "lock_all", "unlock_all",
           "WRITER_BIT", "GLOBAL_SHARED_UNIT"]

WRITER_BIT = 1 << 63
GLOBAL_SHARED_UNIT = 1 << 32
_EXCL_MASK = (1 << 32) - 1


@dataclass
class LockState:
    """Per-window, per-origin lock bookkeeping."""

    held: dict = field(default_factory=dict)   # target -> LockType
    lock_all_held: bool = False
    exclusive_count: int = 0                   # locks this origin holds
    retries: int = 0                           # back-off statistics
    acquired_at: dict = field(default_factory=dict)  # obs: target -> ns

    def snapshot(self) -> dict:
        """Checkpointable protocol state (repro.ft): what the restored
        incarnation must believe it holds.  Timings/statistics stay out --
        they belong to the incarnation, not the protocol."""
        return {
            "held": dict(self.held),
            "lock_all_held": self.lock_all_held,
            "exclusive_count": self.exclusive_count,
        }

    def restore(self, snap: dict) -> None:
        self.held = dict(snap["held"])
        self.lock_all_held = snap["lock_all_held"]
        self.exclusive_count = snap["exclusive_count"]


def _backoff(win, attempt: int):
    """Deterministic exponential back-off (the paper: 'All waits/retries
    can be performed with exponential back off to avoid congestion')."""
    # With revocation disabled a dead holder will never clear the word --
    # abandon the retry loop with a structured error instead of spinning
    # into the watchdog.  (No-op without a failure notifier.)
    recovery.check_pending_acquire(win)
    win.lock_state.retries += 1
    delay = min(win.params.backoff_base_ns * (1 << min(attempt, 16)),
                win.params.backoff_max_ns)
    yield win.ctx.env.timeout(int(delay))


def _amo(win, target: int, idx: int, op: str, operand: int,
         operand2: int = 0, blocking: bool = True):
    """One AMO on ``target``'s control words, CPU or NIC path."""
    ctx = win.ctx
    if ctx.lock_ledger is not None:
        # Recovery on: route through the ledger-recording twin so dead
        # origins' contributions can be rolled back.
        return (yield from recovery.lock_amo(win, target, idx, op, operand,
                                             operand2, blocking))
    cells = win.ctrl_refs[target]
    if ctx.same_node(target):
        return (yield from ctx.xpmem.amo(cells, idx, op, operand, operand2))
    if blocking:
        return (yield from ctx.dmapp.amo_b(target, cells, idx, op,
                                           operand, operand2))
    yield from ctx.dmapp.amo_nbi(target, cells, idx, op, operand, operand2)
    return None


def lock(win, target: int, lock_type: LockType = LockType.SHARED):
    """MPI_Win_lock on one target."""
    st = win.lock_state
    if win.epoch_access not in (None, "lock"):
        raise LockError(f"lock() during a {win.epoch_access!r} epoch")
    if st.lock_all_held:
        raise LockError("lock() while holding lock_all")
    if target in st.held:
        raise LockError(f"target {target} already locked")
    win.ctx.note_api(f"win.lock(target={target}, {lock_type.name.lower()})")
    recovery.check_peer_alive(win, target,
                              f"lock({lock_type.name.lower()})")
    t0 = win.ctx.now
    yield from win.ctx.instr(win.params.instr_lock)

    try:
        if lock_type is LockType.SHARED:
            yield from _lock_shared(win, target)
        else:
            yield from _lock_exclusive(win, target)
    except NodeCrashedError as exc:
        recovery.fail_acquire(win.ctx, exc, f"lock(target={target})")
    obs = win.ctx.obs
    if obs is not None:
        now = win.ctx.now
        obs.rank_span(win.ctx.rank, f"lock.{lock_type.name.lower()}",
                      t0, now, cat="lock", args={"target": target})
        obs.metrics.count("rma.lock", win.ctx.rank)
        obs.metrics.observe("lock_acquire_ns", win.ctx.rank, now - t0)
        st.acquired_at[target] = now
    ck = win.ctx.checker
    if ck is not None:
        ck.lock_acquired(win, target, lock_type is LockType.EXCLUSIVE)
    st.held[target] = lock_type
    win.epoch_access = "lock"
    # Acquisition is forward progress; the retry loops above are not --
    # that contrast is what lets the watchdog tell contention (someone
    # keeps acquiring) from livelock (nobody does).
    win.ctx.env.note_progress()


def _lock_shared(win, target: int):
    """Invariant: no local writer.  Fetch-add the reader count; roll back
    and spin-read while a writer holds the word."""
    attempt = 0
    while True:
        old = yield from _amo(win, target, win_mod.IDX_LOCAL_LOCK, "add", 1)
        if not (old & WRITER_BIT):
            return
        # Writer present: undo our reader registration and wait.
        yield from _amo(win, target, win_mod.IDX_LOCAL_LOCK, "add", -1,
                        blocking=False)
        while True:
            yield from _backoff(win, attempt)
            attempt += 1
            cur = yield from _amo(win, target, win_mod.IDX_LOCAL_LOCK,
                                  "add", 0)  # remote read
            if not (cur & WRITER_BIT):
                break


def _lock_exclusive(win, target: int):
    st = win.lock_state
    attempt = 0
    while True:
        if st.exclusive_count == 0:
            # Invariant (1): register at the master; back off on lock_all.
            yield from _acquire_global_writer(win)
        # Invariant (2): CAS the target's local word 0 -> WRITER.
        try:
            old = yield from _amo(win, target, win_mod.IDX_LOCAL_LOCK,
                                  "cas", 0, WRITER_BIT)
        except NodeCrashedError:
            # The target died after we registered at the master: undo the
            # registration before failing, or the survivors' lock_all
            # would wait on a phantom exclusive holder.
            if st.exclusive_count == 0:
                yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK,
                                "add", -1, blocking=False)
            raise
        if old == 0:
            st.exclusive_count += 1
            return
        # Failed: release the global registration (only if we hold no
        # other exclusive lock) and retry the two-step operation.
        if st.exclusive_count == 0:
            yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK,
                            "add", -1, blocking=False)
        yield from _backoff(win, attempt)
        attempt += 1


def _acquire_global_writer(win):
    attempt = 0
    while True:
        old = yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK,
                              "add", 1)
        if (old >> 32) == 0:  # no lock_all (global shared) holders
            return
        yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK, "add", -1,
                        blocking=False)
        yield from _backoff(win, attempt)
        attempt += 1


def _forgiving_add(win, target: int, idx: int, delta: int):
    """Fire-and-forget lock-word decrement that tolerates a dead home
    rank: the word died with its owner, so there is nothing to release."""
    try:
        yield from _amo(win, target, idx, "add", delta, blocking=False)
    except NodeCrashedError:
        if win.ctx.notifier is None:
            raise


def unlock(win, target: int):
    """MPI_Win_unlock: completes all operations to ``target`` first
    (gsync is free when nothing is outstanding -- the measured 0.4 us)."""
    st = win.lock_state
    lt = st.held.get(target)
    if lt is None:
        raise LockError(f"unlock() of unlocked target {target}")
    ctx = win.ctx
    ctx.note_api(f"win.unlock(target={target})")
    yield from ctx.xpmem.mfence()
    yield from ctx.dmapp.gsync()
    if lt is LockType.SHARED:
        yield from _forgiving_add(win, target, win_mod.IDX_LOCAL_LOCK, -1)
    else:
        yield from _forgiving_add(win, target, win_mod.IDX_LOCAL_LOCK,
                                  -WRITER_BIT)
        st.exclusive_count -= 1
        if st.exclusive_count == 0:
            yield from _forgiving_add(win, win.master,
                                      win_mod.IDX_GLOBAL_LOCK, -1)
    obs = ctx.obs
    if obs is not None:
        t_acq = st.acquired_at.pop(target, ctx.now)
        obs.rank_span(ctx.rank, "lock.hold", t_acq, ctx.now, cat="lock",
                      args={"target": target})
        obs.metrics.observe("lock_hold_ns", ctx.rank, ctx.now - t_acq)
    ck = ctx.checker
    if ck is not None:
        ck.lock_released(win, target, lt is LockType.EXCLUSIVE)
    del st.held[target]
    if not st.held:
        win.epoch_access = None
    win.ctx.env.note_progress()


def lock_all(win):
    """MPI_Win_lock_all: a *shared* lock on every rank via one AMO on the
    global word (the spec has no exclusive lock_all)."""
    st = win.lock_state
    ctx = win.ctx
    if ctx.ft is not None and ctx.ft.consume_restored_lock_all(win):
        # Restarted incarnation re-executing its program from the top: the
        # checkpoint says this epoch was already open and the global-word
        # registration survived the crash (lock words are checkpointed
        # state, not revoked for recoverable ranks) -- re-enter silently
        # without touching the master's word again.
        st.lock_all_held = True
        win.epoch_access = "lock_all"
        return
    if win.epoch_access is not None:
        raise LockError(f"lock_all() during a {win.epoch_access!r} epoch")
    if st.lock_all_held:
        raise LockError("lock_all() already held")
    win.ctx.note_api("win.lock_all()")
    t0 = win.ctx.now
    yield from win.ctx.instr(win.params.instr_lock)
    attempt = 0
    try:
        while True:
            old = yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK,
                                  "add", GLOBAL_SHARED_UNIT)
            if (old & _EXCL_MASK) == 0:  # no exclusive holders
                break
            yield from _amo(win, win.master, win_mod.IDX_GLOBAL_LOCK, "add",
                            -GLOBAL_SHARED_UNIT, blocking=False)
            yield from _backoff(win, attempt)
            attempt += 1
    except NodeCrashedError as exc:
        recovery.fail_acquire(win.ctx, exc, "lock_all")
    obs = win.ctx.obs
    if obs is not None:
        now = win.ctx.now
        obs.rank_span(win.ctx.rank, "lock.lock_all", t0, now, cat="lock")
        obs.metrics.count("rma.lock_all", win.ctx.rank)
        obs.metrics.observe("lock_acquire_ns", win.ctx.rank, now - t0)
        st.acquired_at["all"] = now
    ck = win.ctx.checker
    if ck is not None:
        ck.lock_all_acquired(win)
    st.lock_all_held = True
    win.epoch_access = "lock_all"
    win.ctx.env.note_progress()


def unlock_all(win):
    st = win.lock_state
    if not st.lock_all_held:
        raise LockError("unlock_all() without lock_all()")
    ctx = win.ctx
    yield from ctx.xpmem.mfence()
    yield from ctx.dmapp.gsync()
    yield from _forgiving_add(win, win.master, win_mod.IDX_GLOBAL_LOCK,
                              -GLOBAL_SHARED_UNIT)
    obs = ctx.obs
    if obs is not None:
        t_acq = st.acquired_at.pop("all", ctx.now)
        obs.rank_span(ctx.rank, "lock.hold_all", t_acq, ctx.now, cat="lock")
        obs.metrics.observe("lock_hold_ns", ctx.rank, ctx.now - t_acq)
    ck = ctx.checker
    if ck is not None:
        ck.lock_all_released(win)
    st.lock_all_held = False
    win.epoch_access = None
    win.ctx.env.note_progress()
