"""Accumulate operations (paper Section 2.4).

Two paths, exactly as in foMPI:

* **NIC fast path** for 8-byte integer elements with a DMAPP-supported
  operation (SUM/BAND/BOR/BXOR/REPLACE): streamed AMOs, giving
  P_acc,sum = 28 ns/elem + 2.4 us (Figure 6a).
* **software fallback** for everything else (MIN/MAX/PROD, floats,
  non-8-byte types): "locks the remote window, gets the data, accumulates
  it locally, and writes it back".  Higher base cost (P_acc,min ~ 7.3 us)
  but put/get bandwidth, so it overtakes the AMO stream at large element
  counts -- the crossover visible in Figure 6a.

The fallback uses a dedicated internal lock word (``IDX_ACC_LOCK``) so it
serializes only against other accumulates, never against user lock
epochs; element-wise atomicity of the fast path is a property of the NIC
AMO engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RmaError
from repro.mem.atomic import SegmentCells
from repro.rma import window as win_mod
from repro.rma.enums import HW_OPS, Op, WinFlavor

__all__ = ["accumulate", "fetch_and_op", "compare_and_swap", "apply_op",
           "acc_path"]


def apply_op(op: Op, old: np.ndarray, operand: np.ndarray) -> np.ndarray:
    """Element-wise MPI reduction used by the software fallback."""
    if op is Op.SUM:
        return old + operand
    if op is Op.PROD:
        return old * operand
    if op is Op.MIN:
        return np.minimum(old, operand)
    if op is Op.MAX:
        return np.maximum(old, operand)
    if op is Op.BAND:
        return old & operand
    if op is Op.BOR:
        return old | operand
    if op is Op.BXOR:
        return old ^ operand
    if op is Op.REPLACE:
        return operand.copy()
    if op is Op.NO_OP:
        return old.copy()
    raise RmaError(f"unsupported accumulate op {op}")


def _hw_eligible(win, op: Op, arr: np.ndarray, toff: int) -> bool:
    if op not in HW_OPS:
        return False
    if arr.dtype.kind not in "iu" or arr.dtype.itemsize != 8:
        return False
    if toff % 8 != 0:
        return False
    return win.flavor in (WinFlavor.ALLOCATE, WinFlavor.CREATE,
                          WinFlavor.SHARED)


def acc_path(win, op: Op, arr: np.ndarray, toff: int) -> str:
    """Which implementation an accumulate takes: ``"hw"`` (NIC AMO
    stream) or ``"sw"`` (locked fallback).  Diagnostic colour for the
    memory-model checker -- both paths are atomic with respect to each
    other, so the tag never affects race classification."""
    return "hw" if _hw_eligible(win, op, arr, toff) else "sw"


def accumulate(win, data, target: int, target_disp: int, op: Op, *,
               element_bytes: int | None = None, fetch: bool):
    """MPI_Accumulate / MPI_Get_accumulate."""
    ctx = win.ctx
    arr = np.asarray(data)
    toff = win._byte_offset(target_disp)
    yield from ctx.instr(win.params.instr_accumulate)

    if _hw_eligible(win, op, arr, toff):
        seg, base = win._target_segment(target, toff, arr.nbytes)
        cells = SegmentCells(seg, 0, signed=arr.dtype.kind == "i")
        base_idx = (base + toff) // 8
        operands = arr.ravel().astype(np.int64, copy=False)
        hw = op.hw_name
        if ctx.same_node(target):
            old = yield from ctx.xpmem.amo_stream(cells, base_idx, hw,
                                                  operands, fetch=fetch)
        else:
            logger = (ctx.ft.amo_stream_logger(win, target, cells, base_idx)
                      if ctx.ft is not None else None)
            h = yield from ctx.dmapp.amo_stream_nbi(target, cells, base_idx,
                                                    hw, operands, fetch=fetch,
                                                    on_applied=logger)
            if fetch:
                yield from ctx.dmapp.wait(h)
            old = h.result
        if fetch:
            return np.asarray(old, dtype=np.uint64).view(arr.dtype).reshape(
                arr.shape)
        return None

    # ---------------- software fallback ---------------------------------
    old = yield from _locked_fallback(win, arr, target, toff, op)
    return old.reshape(arr.shape) if fetch else None


def _locked_fallback(win, arr: np.ndarray, target: int, toff: int, op: Op):
    """Lock-get-modify-put protocol on the internal accumulate lock."""
    ctx = win.ctx
    if (ctx.ft is not None and ctx.ft.logged(win)
            and not ctx.same_node(target)):
        from repro.errors import FTError
        raise FTError(
            f"software-fallback accumulate (op={op.name}) on protected "
            f"window {win.win_id}: the lock-get-modify-put sequence cannot "
            f"be logged as a deterministic delta; use an 8-byte integer "
            f"HW op or unprotect the window")
    attempt = 0
    # Acquire the internal exclusive lock (CAS 0 -> 1 on IDX_ACC_LOCK).
    while True:
        old_lock = yield from _acc_amo(win, target, "cas", 0, 1)
        if old_lock == 0:
            break
        delay = min(win.params.backoff_base_ns * (1 << min(attempt, 16)),
                    win.params.backoff_max_ns)
        attempt += 1
        yield ctx.env.timeout(int(delay))

    nbytes = arr.nbytes
    # Get current contents.
    if ctx.same_node(target) and win.flavor is not WinFlavor.DYNAMIC:
        seg, base = win._target_segment(target, toff, nbytes)
        cur = yield from ctx.xpmem.load(win_mod._SegToken(seg), base + toff,
                                        nbytes)
    else:
        desc = yield from _data_desc(win, target, toff, nbytes)
        cur = yield from ctx.dmapp.get_b(desc, _desc_off(win, desc, toff),
                                         nbytes)
    old_vals = cur.view(arr.dtype).reshape(-1).copy()
    new_vals = apply_op(op, old_vals, arr.ravel())
    # Local reduction cost.
    yield from ctx.compute(win.params.fallback_reduce_per_byte * nbytes)
    # Write back and make it visible before releasing the lock.
    if ctx.same_node(target) and win.flavor is not WinFlavor.DYNAMIC:
        seg, base = win._target_segment(target, toff, nbytes)
        yield from ctx.xpmem.store(win_mod._SegToken(seg), base + toff,
                                   new_vals.view(np.uint8))
    else:
        desc = yield from _data_desc(win, target, toff, nbytes)
        yield from ctx.dmapp.put_nbi(desc, _desc_off(win, desc, toff),
                                     new_vals.view(np.uint8))
        yield from ctx.dmapp.gsync()
    # Release (fire-and-forget).
    yield from _acc_amo(win, target, "replace", 0, blocking=False)
    return old_vals


def _data_desc(win, target: int, toff: int, nbytes: int):
    """Descriptor for the fallback's raw data access."""
    if win.flavor is WinFlavor.DYNAMIC:
        return (yield from win.dyn.resolve(win, target, toff, nbytes))
    return win._target_desc(target, toff, nbytes)


def _desc_off(win, desc, toff: int) -> int:
    if win.flavor is WinFlavor.DYNAMIC:
        return toff - desc.vaddr
    if win.flavor is WinFlavor.ALLOCATE:
        return (win.base_vaddr - desc.vaddr) + toff
    return toff


def _acc_amo(win, target: int, op: str, operand: int, operand2: int = 0,
             blocking: bool = True):
    ctx = win.ctx
    cells = win.ctrl_refs[target]
    if ctx.same_node(target):
        return (yield from ctx.xpmem.amo(cells, win_mod.IDX_ACC_LOCK, op,
                                         operand, operand2))
    if blocking:
        return (yield from ctx.dmapp.amo_b(target, cells,
                                           win_mod.IDX_ACC_LOCK, op,
                                           operand, operand2))
    yield from ctx.dmapp.amo_nbi(target, cells, win_mod.IDX_ACC_LOCK, op,
                                 operand, operand2)
    return None


def fetch_and_op(win, value, target: int, target_disp: int, op: Op):
    """Single 8-byte element fetch-and-op (fine-grained completion)."""
    ctx = win.ctx
    arr = np.asarray(value).reshape(1)
    toff = win._byte_offset(target_disp)
    yield from ctx.instr(win.params.instr_accumulate)
    if _hw_eligible(win, op, arr, toff):
        seg, base = win._target_segment(target, toff, 8)
        cells = SegmentCells(seg, 0, signed=arr.dtype.kind == "i")
        idx = (base + toff) // 8
        operand = int(arr.astype(np.int64)[0])
        if ctx.same_node(target):
            old = yield from ctx.xpmem.amo(cells, idx, op.hw_name, operand)
        else:
            logger = (ctx.ft.amo_logger(win, target, cells, idx)
                      if ctx.ft is not None else None)
            old = yield from ctx.dmapp.amo_b(target, cells, idx, op.hw_name,
                                             operand, on_applied=logger)
        return np.uint64(old).view(np.dtype(arr.dtype))
    old = yield from _locked_fallback(win, arr, target, toff, op)
    return old[0]


def compare_and_swap(win, compare, swap, target: int, target_disp: int):
    """8-byte CAS; always on the AMO engine (P_CAS = 2.4 us)."""
    ctx = win.ctx
    toff = win._byte_offset(target_disp)
    if toff % 8:
        raise RmaError("CAS target must be 8-byte aligned")
    yield from ctx.instr(win.params.instr_accumulate)
    comp_arr = np.asarray(compare).reshape(1)
    seg, base = win._target_segment(target, toff, 8)
    cells = SegmentCells(seg, 0, signed=comp_arr.dtype.kind == "i")
    idx = (base + toff) // 8
    c = int(comp_arr.astype(np.int64)[0])
    s = int(np.asarray(swap).reshape(1).astype(np.int64)[0])
    if ctx.same_node(target):
        old = yield from ctx.xpmem.amo(cells, idx, "cas", c, s)
    else:
        logger = (ctx.ft.amo_logger(win, target, cells, idx)
                  if ctx.ft is not None else None)
        old = yield from ctx.dmapp.amo_b(target, cells, idx, "cas", c, s,
                                         on_applied=logger)
    return np.uint64(old).view(comp_arr.dtype)
