"""MPI-3 one-sided (RMA) library -- the paper's core contribution.

The package implements every concept of the MPI-3.0 RMA chapter with the
scalable protocols of the paper:

* window creation (Section 2.2): traditional (``win_create``), allocated
  with symmetric heap (``win_allocate``), dynamic (``win_create_dynamic`` +
  attach/detach with the one-sided descriptor-cache protocol) and shared
  (``win_allocate_shared``);
* synchronization (Section 2.3): fence, general active target (PSCW) with
  remote free-storage matching lists, the two-level global/local lock
  protocol, and the flush family;
* communication (Section 2.4): put/get, accumulates with the NIC AMO
  fast path and the lock-get-modify-put fallback, fetch-and-op, CAS,
  request-based variants, and full derived-datatype support.

Entry point: ``ctx.rma`` on a :class:`~repro.runtime.process.RankContext`.
"""

from repro.rma.enums import LockType, Op, WinFlavor
from repro.rma.datatypes import (
    BYTE,
    DOUBLE,
    FLOAT,
    INT32,
    INT64,
    UINT64,
    Contiguous,
    Datatype,
    Hvector,
    Indexed,
    Struct,
    Vector,
)
from repro.rma.runtime import RmaContext
from repro.rma.window import Window

__all__ = [
    "RmaContext",
    "Window",
    "LockType",
    "Op",
    "WinFlavor",
    "Datatype",
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Struct",
    "BYTE",
    "INT32",
    "INT64",
    "UINT64",
    "FLOAT",
    "DOUBLE",
]
