"""Distributed MCS queue lock over RMA atomics.

The paper (Section 2.3): "The number of remote requests while waiting can
be bound by using MCS locks [24]".  The back-off protocol of Figure 3
issues an unbounded number of remote reads under contention; an MCS queue
bounds the traffic to O(1) remote operations per acquire/release because
each waiter spins on a *local* flag that its predecessor sets exactly
once.

Layout (on a window created with :func:`mcs_alloc`, disp_unit 8):

    word 0 at the master rank   tail: rank+1 of the last enqueued waiter
    word 1 at every rank        next: rank+1 of my successor (0 = none)
    word 2 at every rank        flag: set by my predecessor on hand-off

Acquire: SWAP my id into the tail; if there was a predecessor, publish
myself as its ``next`` and spin locally until it hands off.  Release: if
``next`` is empty, try CAS tail (me -> 0); on failure wait for the
successor to appear, then set its flag.  Every path issues a bounded
number of remote AMOs.
"""

from __future__ import annotations

from repro.errors import LockError

__all__ = ["McsLock", "IDX_TAIL", "IDX_NEXT", "IDX_FLAG"]

IDX_TAIL = 0
IDX_NEXT = 1
IDX_FLAG = 2


class McsLock:
    """One MCS lock instance bound to a window's control structures.

    All ranks of the window share the lock; the tail word lives at the
    window master.  Uses three control words per rank (O(1) memory).
    """

    def __init__(self, win, cell_base: int | None = None) -> None:
        # cell_base: first control word to use (defaults to the user-
        # extension words past the PSCW ring; several MCS locks can
        # coexist by passing staggered bases).
        from repro.rma.window import CTRL_WORDS_BASE

        self.win = win
        self.base = (CTRL_WORDS_BASE + win.params.pscw_ring_capacity
                     if cell_base is None else cell_base)
        self.holding = False
        self.remote_ops = 0  # for the boundedness tests
        # Recovery bookkeeping, written at AMO *delivery* time by the
        # guarded paths so it reflects what actually took effect remotely,
        # never this rank's possibly-stale view (repro.rma.recovery).
        self._queued = False      # swap delivered at the master
        self._pred = 0            # predecessor id (rank+1) the swap saw
        self._published = False   # next-pointer publication delivered
        self._token = False       # token held (acquired, or handed to us)
        self._handed = False      # hand-off to the successor delivered
        ctx = win.ctx
        if ctx.notifier is not None:
            ctx.world.blackboard.setdefault(
                ("mcs", win.win_id, self.base), {})[ctx.rank] = self

    def _cells(self, rank: int):
        return self.win.ctrl_refs[rank]

    def _amo(self, target: int, idx: int, op: str, a: int, b: int = 0,
             blocking: bool = True):
        ctx = self.win.ctx
        self.remote_ops += 1
        cells = self._cells(target)
        if ctx.same_node(target):
            return (yield from ctx.xpmem.amo(cells, self.base + idx, op, a, b))
        if blocking:
            return (yield from ctx.dmapp.amo_b(target, cells,
                                               self.base + idx, op, a, b))
        yield from ctx.dmapp.amo_nbi(target, cells, self.base + idx, op, a, b)
        return None

    def _amo_custom(self, target: int, mutate):
        """Blocking delivery-time mutate at ``target`` (recovery path)."""
        ctx = self.win.ctx
        self.remote_ops += 1
        if ctx.same_node(target):
            return (yield from ctx.xpmem.amo_custom(mutate))
        handle = yield from ctx.dmapp.amo_custom_nbi(target, mutate)
        return (yield from ctx.dmapp.wait(handle))

    def _amo_custom_to_peer(self, target: int, mutate):
        """Like :meth:`_amo_custom` but tolerant of a dead peer: the
        mutation is applied directly to the shared cells (they outlive the
        simulated process) so queue links stay consistent even when the
        peer's NIC is quarantined."""
        ctx = self.win.ctx
        from repro.errors import NodeCrashedError
        try:
            yield from self._amo_custom(target, mutate)
        except NodeCrashedError:
            yield from ctx.instr(self.win.params.instr_lock)
            mutate()

    # ------------------------------------------------------------------
    def acquire(self):
        """Enqueue and wait; O(1) remote AMOs regardless of contention."""
        if self.holding:
            raise LockError("MCS lock is not reentrant")
        win = self.win
        ctx = win.ctx
        t0 = ctx.now
        if ctx.notifier is not None:
            yield from self._acquire_guarded()
        else:
            yield from self._acquire_plain()
        obs = ctx.obs
        if obs is not None:
            # Lock-contention span: wait time is the whole enqueue-to-
            # hand-off interval (uncontended acquires show the bare AMO
            # round trip).  Pure recording -- never perturbs schedules.
            obs.rank_span(ctx.rank, "mcs.acquire", t0, ctx.now, cat="lock",
                          args={"win": win.win_id, "base": self.base})
            obs.metrics.count("mcs.acquires", ctx.rank)
            obs.metrics.observe("mcs.acquire_wait_ns", ctx.rank,
                                ctx.now - t0)
        ck = ctx.checker
        if ck is not None:
            # Happens-before: an exclusive MCS acquire is ordered after
            # every prior release of this lock instance.
            ck.mcs_acquired(ctx.rank, (win.win_id, self.base))

    def _acquire_plain(self):
        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        my.store(self.base + IDX_NEXT, 0)
        my.store(self.base + IDX_FLAG, 0)
        pred = yield from self._amo(win.master, IDX_TAIL, "replace", me)
        if pred != 0:
            # Publish myself to the predecessor, then spin on MY flag --
            # zero remote traffic while waiting (the MCS property).
            yield from self._amo(int(pred) - 1, IDX_NEXT, "replace", me,
                                 blocking=False)
            yield my.wait_until(self.base + IDX_FLAG, lambda v: v != 0)
            my.store(self.base + IDX_FLAG, 0)
        self.holding = True

    def release(self):
        """Hand off to the successor (or clear the tail).

        Checker contract: the release deposits this rank's clock *before*
        the hand-off AMO fires, so a successor's acquire observes it.
        Like the paper's lock examples, the program must flush its RMA
        operations before releasing for the edge to be truthful -- the
        MCS hand-off itself completes no RMA operations.
        """
        if not self.holding:
            raise LockError("releasing an MCS lock not held")
        win = self.win
        ctx = win.ctx
        ck = ctx.checker
        if ck is not None:
            ck.mcs_released(ctx.rank, (win.win_id, self.base))
        t0 = ctx.now
        if ctx.notifier is not None:
            yield from self._release_guarded()
        else:
            yield from self._release_plain()
        obs = ctx.obs
        if obs is not None:
            obs.rank_span(ctx.rank, "mcs.release", t0, ctx.now, cat="lock",
                          args={"win": win.win_id, "base": self.base})
            obs.metrics.count("mcs.releases", ctx.rank)

    def _release_plain(self):
        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        if my.load(self.base + IDX_NEXT) == 0:
            old = yield from self._amo(win.master, IDX_TAIL, "cas", me, 0)
            if old == me:
                self.holding = False
                return
            # A successor is in the middle of enqueueing: wait for its
            # next-pointer publication (local spin).
            yield my.wait_until(self.base + IDX_NEXT, lambda v: v != 0)
        succ = int(my.load(self.base + IDX_NEXT)) - 1
        my.store(self.base + IDX_NEXT, 0)
        yield from self._amo(succ, IDX_FLAG, "replace", 1, blocking=False)
        self.holding = False

    # ------------------------------------------------------------------
    # failure-aware paths (identical wire protocol; the queue membership
    # flags are recorded atomically with each AMO's remote effect so the
    # recovery service knows exactly where a dead rank stood)
    # ------------------------------------------------------------------
    def _acquire_guarded(self):
        from repro.errors import NodeCrashedError
        from repro.rma import recovery

        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        tail_cells = self._cells(win.master)
        my.store(self.base + IDX_NEXT, 0)
        my.store(self.base + IDX_FLAG, 0)
        self._queued = False
        self._pred = 0
        self._published = False
        self._token = False
        self._handed = False

        def swap_mutate():
            old = tail_cells.apply(self.base + IDX_TAIL, "replace", me)
            self._queued = True
            self._pred = int(old)
            if old == 0:
                self._token = True  # empty queue: token is ours on arrival
            return old

        try:
            pred = yield from self._amo_custom(win.master, swap_mutate)
        except NodeCrashedError as exc:
            recovery.fail_acquire(ctx, exc, "mcs acquire")
        if pred != 0:
            target = int(pred) - 1

            def publish_mutate():
                self._cells(target).apply(self.base + IDX_NEXT,
                                          "replace", me)
                self._published = True

            # The predecessor may be dead (or die mid-publication); the
            # queue link must be written regardless -- its zombie
            # forwarder reads it to hand the token onward.
            yield from self._amo_custom_to_peer(target, publish_mutate)
            if ctx.lock_ledger is not None:
                # Revocation on: a dead predecessor's token is forwarded
                # by its zombie, so the plain local spin terminates.
                yield my.wait_until(self.base + IDX_FLAG, lambda v: v != 0)
            else:
                # Revocation off: a dead predecessor never hands off --
                # race the spin against the failure notification.
                from repro.sim.kernel import AnyOf
                notifier = ctx.notifier
                while my.load(self.base + IDX_FLAG) == 0:
                    known = notifier.known(ctx.rank)
                    if known:
                        ctx.world.injector.stats.acquisitions_failed += 1
                        from repro.errors import RankFailedError
                        raise RankFailedError(
                            known, op="mcs acquire",
                            detail="lock revocation disabled; predecessor "
                                   "may never hand off")
                    yield AnyOf(ctx.env, [
                        my.wait_until(self.base + IDX_FLAG,
                                      lambda v: v != 0),
                        notifier.failure_event(ctx.rank)])
            my.store(self.base + IDX_FLAG, 0)
        self._token = True
        self.holding = True

    def _release_guarded(self):
        from repro.errors import NodeCrashedError

        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        tail_cells = self._cells(win.master)
        if my.load(self.base + IDX_NEXT) == 0:

            def cas_mutate():
                old = tail_cells.cas(self.base + IDX_TAIL, me, 0)
                if old == me:
                    self._queued = False
                    self._token = False
                return old

            try:
                old = yield from self._amo_custom(win.master, cas_mutate)
            except NodeCrashedError:
                # The master died: the queue is gone with it.  Clear local
                # state; no survivor can be waiting on this lock's words.
                self._queued = False
                self._token = False
                self.holding = False
                return
            if old == me:
                self.holding = False
                return
            if ctx.lock_ledger is not None:
                # A dead mid-enqueue successor's publication is finished
                # by its zombie forwarder, so this spin terminates.
                yield my.wait_until(self.base + IDX_NEXT, lambda v: v != 0)
            else:
                from repro.errors import RankFailedError
                from repro.sim.kernel import AnyOf
                notifier = ctx.notifier
                while my.load(self.base + IDX_NEXT) == 0:
                    known = notifier.known(ctx.rank)
                    if known:
                        ctx.world.injector.stats.acquisitions_failed += 1
                        self.holding = False
                        raise RankFailedError(
                            known, op="mcs release",
                            detail="lock revocation disabled; successor "
                                   "died mid-enqueue")
                    yield AnyOf(ctx.env, [
                        my.wait_until(self.base + IDX_NEXT,
                                      lambda v: v != 0),
                        notifier.failure_event(ctx.rank)])
        succ = int(my.load(self.base + IDX_NEXT)) - 1

        def hand_mutate():
            self._cells(succ).apply(self.base + IDX_FLAG, "replace", 1)
            self._handed = True
            self._queued = False
            self._token = False

        # NEXT is cleared only *after* the hand-off is issued: if this
        # rank dies in between, its zombie forwarder still needs the
        # successor link to finish the hand-off.
        yield from self._amo_custom_to_peer(succ, hand_mutate)
        my.store(self.base + IDX_NEXT, 0)
        self.holding = False
