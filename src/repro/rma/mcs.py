"""Distributed MCS queue lock over RMA atomics.

The paper (Section 2.3): "The number of remote requests while waiting can
be bound by using MCS locks [24]".  The back-off protocol of Figure 3
issues an unbounded number of remote reads under contention; an MCS queue
bounds the traffic to O(1) remote operations per acquire/release because
each waiter spins on a *local* flag that its predecessor sets exactly
once.

Layout (on a window created with :func:`mcs_alloc`, disp_unit 8):

    word 0 at the master rank   tail: rank+1 of the last enqueued waiter
    word 1 at every rank        next: rank+1 of my successor (0 = none)
    word 2 at every rank        flag: set by my predecessor on hand-off

Acquire: SWAP my id into the tail; if there was a predecessor, publish
myself as its ``next`` and spin locally until it hands off.  Release: if
``next`` is empty, try CAS tail (me -> 0); on failure wait for the
successor to appear, then set its flag.  Every path issues a bounded
number of remote AMOs.
"""

from __future__ import annotations

from repro.errors import LockError

__all__ = ["McsLock", "IDX_TAIL", "IDX_NEXT", "IDX_FLAG"]

IDX_TAIL = 0
IDX_NEXT = 1
IDX_FLAG = 2


class McsLock:
    """One MCS lock instance bound to a window's control structures.

    All ranks of the window share the lock; the tail word lives at the
    window master.  Uses three control words per rank (O(1) memory).
    """

    def __init__(self, win, cell_base: int | None = None) -> None:
        # cell_base: first control word to use (defaults to the user-
        # extension words past the PSCW ring; several MCS locks can
        # coexist by passing staggered bases).
        from repro.rma.window import CTRL_WORDS_BASE

        self.win = win
        self.base = (CTRL_WORDS_BASE + win.params.pscw_ring_capacity
                     if cell_base is None else cell_base)
        self.holding = False
        self.remote_ops = 0  # for the boundedness tests

    def _cells(self, rank: int):
        return self.win.ctrl_refs[rank]

    def _amo(self, target: int, idx: int, op: str, a: int, b: int = 0,
             blocking: bool = True):
        ctx = self.win.ctx
        self.remote_ops += 1
        cells = self._cells(target)
        if ctx.same_node(target):
            return (yield from ctx.xpmem.amo(cells, self.base + idx, op, a, b))
        if blocking:
            return (yield from ctx.dmapp.amo_b(target, cells,
                                               self.base + idx, op, a, b))
        yield from ctx.dmapp.amo_nbi(target, cells, self.base + idx, op, a, b)
        return None

    # ------------------------------------------------------------------
    def acquire(self):
        """Enqueue and wait; O(1) remote AMOs regardless of contention."""
        if self.holding:
            raise LockError("MCS lock is not reentrant")
        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        my.store(self.base + IDX_NEXT, 0)
        my.store(self.base + IDX_FLAG, 0)
        pred = yield from self._amo(win.master, IDX_TAIL, "replace", me)
        if pred != 0:
            # Publish myself to the predecessor, then spin on MY flag --
            # zero remote traffic while waiting (the MCS property).
            yield from self._amo(int(pred) - 1, IDX_NEXT, "replace", me,
                                 blocking=False)
            yield my.wait_until(self.base + IDX_FLAG, lambda v: v != 0)
            my.store(self.base + IDX_FLAG, 0)
        self.holding = True

    def release(self):
        """Hand off to the successor (or clear the tail)."""
        if not self.holding:
            raise LockError("releasing an MCS lock not held")
        win = self.win
        ctx = win.ctx
        me = ctx.rank + 1
        my = self._cells(ctx.rank)
        if my.load(self.base + IDX_NEXT) == 0:
            old = yield from self._amo(win.master, IDX_TAIL, "cas", me, 0)
            if old == me:
                self.holding = False
                return
            # A successor is in the middle of enqueueing: wait for its
            # next-pointer publication (local spin).
            yield my.wait_until(self.base + IDX_NEXT, lambda v: v != 0)
        succ = int(my.load(self.base + IDX_NEXT)) - 1
        my.store(self.base + IDX_NEXT, 0)
        yield from self._amo(succ, IDX_FLAG, "replace", 1, blocking=False)
        self.holding = False
