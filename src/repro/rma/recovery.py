"""Survivor-side revocation of RMA protocol state owned by crashed ranks.

PR 1 hardened the *transport* (retransmit, AMO dedup, quarantine); this
module closes the protocol-layer gap: when a node crashes, the two-level
lock words of Figure 3, the MCS queue links, fence/PSCW epochs and window
resources it owned must be cleaned up or every survivor livelocks in a
spin loop (or hangs in a matching list) that can never complete.

Three cooperating mechanisms, all driven by the
:class:`~repro.runtime.notify.FailureNotifier` and fully deterministic
under the run seed:

**Revocation ledger** (:class:`RevocationLedger`).  Every lock-word AMO an
origin issues is routed through :func:`lock_amo`, which executes the
mutation *and* its ledger record atomically at delivery time (a chained
NIC mutate, same mechanism as the PSCW free-storage append).  Recording
at delivery -- not at the origin -- matters: a packet injected before its
origin's crash still delivers, so an origin that dies between remote
effect and acknowledgment must still be charged for its contribution.
On failure, the per-origin *net* contribution of each dead rank to each
lock word is rolled back with one compensating atomic, which wakes any
watchers of the word.

**Zombie forwarders** for MCS queues.  Splicing a dead waiter out of an
MCS queue in place is racy (the predecessor's hand-off may already be in
flight; moving the tail back can strand a releasing predecessor waiting
on its next-pointer).  Instead the dead rank's queue node becomes a
token *forwarder*: a recovery process waits until the token reaches the
dead node -- by the predecessor's normal hand-off, or immediately when
the dead rank held the lock -- then forwards it to the successor or
retires it by CAS-ing the tail back to empty.  Token conservation holds
by construction and adjacent dead ranks chain naturally.

**Epoch fault containment.**  Fence and collective window free run their
barrier in a child process raced against the rank's failure-notification
event; PSCW waits race their condition against the same event.  A crashed
participant turns the epoch into a structured
:class:`~repro.errors.EpochError` carrying ``failed_ranks`` on every
survivor instead of a hang or a watchdog livelock.  ``win_free`` degrades
to a local free so a dead rank cannot deadlock collective teardown, and
the dead ranks' dynamic attach lists and heap segments are reclaimed.

Timing assumption (documented, also in DESIGN.md section 9): revocation
runs at least ``detect_ns + revoke_ns`` after the crash, which must
exceed the maximum in-flight packet latency so that every pre-crash
effect has landed before compensation.  The defaults leave a wide margin
over the modeled wire latencies.
"""

from __future__ import annotations

from repro.errors import (EpochError, FaultError, NodeCrashedError,
                          RankFailedError)
from repro.sim.kernel import AnyOf

__all__ = [
    "RevocationLedger",
    "lock_amo",
    "install",
    "ranks_on_node",
    "fail_acquire",
    "check_peer_alive",
    "check_pending_acquire",
    "guarded_barrier",
    "guarded_free",
]


class RevocationLedger:
    """Net lock-word contributions per ``(window, word, origin)``.

    ``record`` is called from inside delivery-time mutate closures, so the
    ledger always reflects exactly the mutations that took effect at the
    target -- never the origin's possibly-stale view.
    """

    def __init__(self) -> None:
        self._net: dict[tuple[int, int, int, int], int] = {}

    def record(self, win_id: int, target: int, idx: int, origin: int,
               delta: int) -> None:
        if delta == 0:
            return
        key = (win_id, target, idx, origin)
        new = self._net.get(key, 0) + delta
        if new:
            self._net[key] = new
        else:
            self._net.pop(key, None)

    def sums(self, win_id: int, target: int) -> dict[int, int]:
        """Non-destructive view for the FT layer: total net contribution
        to each lock word ``idx`` of ``target``'s window, summed over all
        origins.  Checkpoints record this; restore re-applies only the
        delta accrued since (see repro.ft.core)."""
        out: dict[int, int] = {}
        for (w, t, idx, _origin), delta in self._net.items():
            if w == win_id and t == target:
                out[idx] = out.get(idx, 0) + delta
        return out

    def debts_of(self, failed_ranks) -> list:
        """Pop and return ``(win_id, target, idx, origin, delta)`` for
        every net contribution owed by a dead origin."""
        failed = set(failed_ranks)
        out = []
        for key in list(self._net):
            if key[3] in failed:
                out.append(key + (self._net.pop(key),))
        return out


def lock_amo(win, target: int, idx: int, op: str, operand: int,
             operand2: int = 0, blocking: bool = True):
    """Ledger-aware twin of ``locks._amo``: the lock-word mutation and its
    ledger record execute atomically at delivery time, so contributions
    from origins that die mid-flight are never lost or double-counted."""
    ctx = win.ctx
    ledger = ctx.lock_ledger
    cells = win.ctrl_refs[target]
    origin = ctx.rank
    win_id = win.win_id

    def mutate():
        if op == "cas":
            old = cells.cas(idx, operand, operand2)
            if old == operand:
                ledger.record(win_id, target, idx, origin,
                              operand2 - operand)
        else:
            old = cells.apply(idx, op, operand)
            if op == "add":
                ledger.record(win_id, target, idx, origin, operand)
        return old

    if ctx.same_node(target):
        return (yield from ctx.xpmem.amo_custom(mutate))
    if blocking:
        handle = yield from ctx.dmapp.amo_custom_nbi(target, mutate)
        return (yield from ctx.dmapp.wait(handle))
    yield from ctx.dmapp.amo_custom_nbi(target, mutate)
    return None


# ----------------------------------------------------------------------
# structured-failure helpers for the lock layer
# ----------------------------------------------------------------------
def ranks_on_node(world, node: int) -> tuple:
    node_of = world.rank_map.node_of
    return tuple(r for r in range(world.nranks) if node_of(r) == node)


def fail_acquire(ctx, exc: NodeCrashedError, op: str):
    """Convert a transport-level quarantine error hit inside a lock
    acquisition into the user-level structured error."""
    if ctx.notifier is None:
        raise exc
    ctx.world.injector.stats.acquisitions_failed += 1
    raise RankFailedError(ranks_on_node(ctx.world, exc.node), op=op,
                          detail=str(exc)) from exc


def check_peer_alive(win, target: int, op: str) -> None:
    """Fail a new acquisition addressed to a rank already known dead."""
    ctx = win.ctx
    notifier = ctx.notifier
    if notifier is None:
        return
    if notifier.rank_failed(ctx.rank, target):
        ctx.world.injector.stats.acquisitions_failed += 1
        raise RankFailedError((target,), op=op)


def check_pending_acquire(win) -> None:
    """With revocation disabled, a spinning acquisition can never be
    unblocked by a dead holder -- abandon it with the structured error as
    soon as this rank learns of any failure."""
    ctx = win.ctx
    notifier = ctx.notifier
    if notifier is None or ctx.lock_ledger is not None:
        return
    known = notifier.known(ctx.rank)
    if known:
        ctx.world.injector.stats.acquisitions_failed += 1
        raise RankFailedError(
            known, op="lock acquisition retry",
            detail="lock revocation disabled; abandoning the spin loop")


# ----------------------------------------------------------------------
# epoch fault containment
# ----------------------------------------------------------------------
def guarded_barrier(ctx, op: str):
    """Run the collective barrier racing this rank's failure-notification
    event; a crashed participant yields ``EpochError(failed_ranks=...)``
    on every survivor instead of an unbounded hang."""
    notifier = ctx.notifier
    env = ctx.env
    stats = ctx.world.injector.stats
    known = notifier.known(ctx.rank)
    if known:
        stats.epochs_failed += 1
        raise EpochError(f"{op}: participants already failed",
                         failed_ranks=known)

    def _child():
        yield from ctx.coll.barrier()

    proc = env.process(_child(), name=f"{op}-barrier:rank{ctx.rank}")
    try:
        yield AnyOf(env, [proc, notifier.failure_event(ctx.rank)])
    except BaseException as exc:
        if proc.is_alive:
            proc.interrupt(exception=EpochError(f"{op}: barrier abandoned"))
        if isinstance(exc, FaultError) and not isinstance(exc, RankFailedError):
            stats.epochs_failed += 1
            failed = set(notifier.known(ctx.rank))
            if isinstance(exc, NodeCrashedError):
                failed.update(ranks_on_node(ctx.world, exc.node))
            raise EpochError(f"{op} aborted", failed_ranks=failed) from exc
        raise
    if proc.is_alive:
        # The failure notification won the race: contain the epoch.
        stats.epochs_failed += 1
        failed = set(notifier.known(ctx.rank))
        proc.interrupt(exception=EpochError(f"{op}: barrier abandoned",
                                            failed_ranks=failed))
        env.note_progress()
        raise EpochError(f"{op} aborted", failed_ranks=failed)


def guarded_free(win):
    """Collective free that survives dead participants: on epoch failure
    the free degrades to a local teardown instead of deadlocking."""
    ctx = win.ctx
    try:
        yield from guarded_barrier(ctx, "win_free")
    except EpochError as exc:
        inj = ctx.world.injector
        inj.stats.degraded_frees += 1
        inj._trace("degraded-free",
                   f"win{win.win_id} rank{ctx.rank}: {exc}")
        ctx.env.note_progress()


# ----------------------------------------------------------------------
# revocation service (runs inside the notifier's dissemination process)
# ----------------------------------------------------------------------
def install(world) -> None:
    """Register the revocation hook on the world's failure notifier."""
    world.notifier.on_revoke(
        lambda failed_ranks: _revoke(world, failed_ranks))


def _revoke(world, failed_ranks):
    rec = world.faults.recovery
    failed = set(failed_ranks)
    if world.ft is not None:
        # Ranks the FT layer will restore keep their protocol state: their
        # lock-word contributions, queue slots, registrations and heap
        # segments are rolled back to a checkpoint, not revoked.
        failed -= world.ft.recoverable(failed)
        if not failed:
            return
    if rec.revoke_locks:
        yield from _revoke_lock_words(world, failed)
        _spawn_mcs_zombies(world, failed)
    yield from _reclaim(world, failed)


def _revoke_lock_words(world, failed):
    """Roll back the dead origins' net contributions to every lock word
    (global and local halves of the two-level hierarchy alike)."""
    ledger = world.lock_ledger
    if ledger is None:
        return
    env = world.env
    rec = world.faults.recovery
    inj = world.injector
    node_of = world.rank_map.node_of
    comp: dict[tuple[int, int, int], int] = {}
    for win_id, target, idx, origin, delta in ledger.debts_of(failed):
        key = (win_id, target, idx)
        comp[key] = comp.get(key, 0) + delta
    for key in sorted(comp):
        delta = comp[key]
        if delta == 0:
            continue
        win_id, target, idx = key
        if inj.node_crashed(node_of(target), env.now):
            continue  # the word died with its home rank
        ctrl = world.blackboard.get(("winctrl", win_id), {}).get(target)
        if ctrl is None:
            continue
        if rec.revoke_ns:
            yield env.timeout(rec.revoke_ns)
        ctrl.apply(idx, "add", -delta)  # wakes any watchers of the word
        inj.stats.locks_revoked += 1
        inj._trace("lock-revoke",
                   f"win{win_id} word{idx}@rank{target} -= {delta:#x}")
        env.note_progress()


def _spawn_mcs_zombies(world, failed) -> None:
    bb = world.blackboard
    keys = sorted((k for k in bb
                   if isinstance(k, tuple) and k and k[0] == "mcs"),
                  key=lambda k: (k[1], k[2]))
    for key in keys:
        instances = bb[key]
        for r in sorted(instances):
            if r in failed and instances[r]._queued:
                world.env.process(_mcs_zombie(world, instances[r], r),
                                  name=f"mcs-zombie:rank{r}")


def _mcs_zombie(world, lock, rank: int):
    """Token-conserving MCS revocation for dead ``rank``: wait for the
    token at the dead node, then forward it to the successor or retire it
    (see the module docstring for why in-place splicing is racy)."""
    from repro.rma.mcs import IDX_FLAG, IDX_NEXT, IDX_TAIL

    env = world.env
    rec = world.faults.recovery
    inj = world.injector
    base = lock.base
    my = lock._cells(rank)
    me = rank + 1

    # The dead rank may have enqueued (swap delivered at the master)
    # without ever publishing itself to its predecessor -- finish the
    # publication so the predecessor's release can find this node.
    if lock._pred and not lock._published:
        if rec.revoke_ns:
            yield env.timeout(rec.revoke_ns)
        lock._cells(lock._pred - 1).apply(base + IDX_NEXT, "replace", me)
        lock._published = True
        env.note_progress()

    # Wait for the token: the dead rank either had it already (held the
    # lock, or its swap found an empty queue) or receives it through its
    # FLAG word by the predecessor's normal hand-off.
    if not (lock._token or lock.holding) \
            and my.load(base + IDX_FLAG) == 0:
        yield my.wait_until(base + IDX_FLAG, lambda v: v != 0)
    if lock._handed:
        return  # the hand-off was already delivered before the crash

    # Forward to the successor, or retire the token at the tail.
    while True:
        if rec.revoke_ns:
            yield env.timeout(rec.revoke_ns)
        succ = int(my.load(base + IDX_NEXT))
        if succ != 0 and succ != me:
            lock._cells(succ - 1).apply(base + IDX_FLAG, "replace", 1)
            break
        tail = lock._cells(lock.win.master)
        if tail.cas(base + IDX_TAIL, me, 0) == me:
            break
        # A successor is mid-enqueue: wait for its publication.
        yield my.wait_until(base + IDX_NEXT, lambda v: v != 0)
    lock._queued = False
    lock._token = False
    lock.holding = False
    inj.stats.queue_splices += 1
    inj._trace("mcs-splice", f"rank {rank} spliced out of the queue")
    env.note_progress()


def _reclaim(world, failed):
    """Window teardown for dead ranks: deregister their dynamic attach
    lists and reclaim their window heap segments so crashed ranks cannot
    leak registrations."""
    env = world.env
    rec = world.faults.recovery
    inj = world.injector
    bb = world.blackboard
    dyn_keys = sorted((k for k in bb
                       if isinstance(k, tuple) and k and k[0] == "dyn"),
                      key=lambda k: (k[1], k[2]))
    for key in dyn_keys:
        _, win_id, r = key
        if r not in failed:
            continue
        st = bb[key]
        n = len(st.regions)
        if not n:
            continue
        if rec.revoke_ns:
            yield env.timeout(rec.revoke_ns)
        for desc in list(st.regions):
            try:
                world.reg_tables[r].deregister(desc)
            except Exception:
                pass
        st.regions.clear()
        st.cache.clear()
        inj.stats.regions_reclaimed += n
        inj._trace("reclaim", f"win{win_id} rank{r}: {n} dynamic region(s)")
        env.note_progress()
    win_keys = sorted((k for k in bb
                       if isinstance(k, tuple) and k and k[0] == "winobjs"),
                      key=lambda k: k[1])
    for key in win_keys:
        wins = bb[key]
        for r in sorted(wins):
            if r not in failed:
                continue
            win = wins[r]
            if win.freed or win.seg is None:
                continue
            if rec.revoke_ns:
                yield env.timeout(rec.revoke_ns)
            try:
                world.spaces[r].free(win.seg)
            except Exception:
                pass
            win.freed = True
            inj.stats.regions_reclaimed += 1
            inj._trace("reclaim", f"win{win.win_id} rank{r}: heap segment")
            env.note_progress()
