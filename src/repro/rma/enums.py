"""Enumerations for the RMA API."""

from __future__ import annotations

import enum

__all__ = ["LockType", "Op", "WinFlavor", "HW_OPS"]


class LockType(enum.Enum):
    """MPI lock types for passive target synchronization."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class Op(enum.Enum):
    """MPI reduction operations usable in accumulates.

    ``hw_name`` is the DMAPP AMO the NIC can run for 8-byte integers; ops
    without one always take the software fallback path (paper Section 2.4,
    measured as P_acc,min in Figure 6a).
    """

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    BAND = "band"
    BOR = "bor"
    BXOR = "bxor"
    REPLACE = "replace"
    NO_OP = "no_op"

    @property
    def hw_name(self) -> str | None:
        return _HW_MAP.get(self)


#: Ops with a NIC AMO fast path for 8-byte integer data.  Gemini's AMO set
#: has add/and/or/xor but no min/max/prod -- exactly why the paper's MIN
#: curve takes the fallback protocol.
_HW_MAP = {
    Op.SUM: "add",
    Op.BAND: "and",
    Op.BOR: "or",
    Op.BXOR: "xor",
    Op.REPLACE: "replace",
}

HW_OPS = frozenset(_HW_MAP)


class WinFlavor(enum.Enum):
    """How a window's memory came to be (MPI_WIN_CREATE_FLAVOR_*)."""

    CREATE = "create"
    ALLOCATE = "allocate"
    DYNAMIC = "dynamic"
    SHARED = "shared"
