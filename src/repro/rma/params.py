"""foMPI software-path constants.

Instruction counts come straight from the paper: "our full implementation
adds only 173 CPU instructions (x86) in the optimized critical path of
MPI_Put and MPI_Get"; "all flush operations share the same implementation
and add only 78 CPU instructions to the critical path"; the interface adds
"merely between 150 and 200 instructions in the fast path" overall.

The remaining constants calibrate the protocol software paths to the
measured performance functions of Section 3.2 (P_start = 0.7 us,
P_wait = 1.8 us, P_fence = 2.9 us * log2 p, P_sync = 17 ns ...).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FompiParams", "INSTRUCTION_TABLE"]

#: The paper's instruction-count claims (Table reproduced by
#: benchmarks/bench_table_instructions.py).
INSTRUCTION_TABLE = {
    "put_fast_path": 173,
    "get_fast_path": 173,
    "flush": 78,
    "sync": 40,           # ~17 ns at 2.3 GHz
    "accumulate": 240,
    "win_lock": 110,
    "pscw_post_per_neighbor": 90,
    "message_injection_intra": 190,  # "80 ns (~190 instructions)"
}


@dataclass(frozen=True)
class FompiParams:
    """Tunables of the foMPI software layer (times in ns)."""

    instr_put: int = INSTRUCTION_TABLE["put_fast_path"]
    instr_get: int = INSTRUCTION_TABLE["get_fast_path"]
    instr_flush: int = INSTRUCTION_TABLE["flush"]
    instr_sync: int = INSTRUCTION_TABLE["sync"]
    instr_accumulate: int = INSTRUCTION_TABLE["accumulate"]
    instr_lock: int = INSTRUCTION_TABLE["win_lock"]

    mfence_ns: float = 40.0

    # PSCW (Section 2.3, Figure 2): software costs around the AMO traffic.
    pscw_start_overhead: float = 700.0   # P_start = 0.7 us
    pscw_wait_overhead: float = 1800.0   # P_wait  = 1.8 us
    pscw_ring_capacity: int = 64         # matching-list slots (>= max k)

    # User-extension control words past the PSCW ring (MCS queue locks
    # take three words each; apps needing many striped locks raise this).
    user_ctrl_words: int = 8

    # Fence: per-dissemination-round software cost (gsync bookkeeping,
    # memory barriers, progress) on top of the barrier messages, so the
    # total lands on P_fence = 2.9 us * log2 p.
    fence_round_overhead: float = 1450.0

    # Lock protocol backoff (exponential, deterministic).
    backoff_base_ns: float = 800.0
    backoff_max_ns: float = 65536.0

    # Software fallback accumulate: per-byte local reduction cost.
    fallback_reduce_per_byte: float = 0.12

    # Dynamic windows: bytes per serialized region descriptor fetched by
    # the cache-refresh protocol.
    dyn_descriptor_bytes: int = 24
