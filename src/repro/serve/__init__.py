"""Open-loop serving layer: workload generation, drivers, SLO reports.

``repro.serve`` turns the RMA KV store (:mod:`repro.apps.kvstore`) into
a served system: seeded Zipfian key popularity + Poisson arrivals
(:mod:`repro.serve.zipf`), open-loop SPMD drivers measuring per-request
latency end to end through the DES (:mod:`repro.serve.driver`), and
deterministic tail-latency reports with SLO gates
(:mod:`repro.serve.slo`).
"""

from repro.serve.driver import kv_serve_program, run_kv_serve
from repro.serve.slo import build_report, render_report, report_digest
from repro.serve.zipf import ServeSpec, client_schedule

__all__ = ["ServeSpec", "client_schedule", "kv_serve_program",
           "run_kv_serve", "build_report", "render_report",
           "report_digest"]
