"""Open-loop serving drivers: one client co-located with each store rank.

Each rank preloads its share of the keyspace, then replays its seeded
schedule (:func:`repro.serve.zipf.client_schedule`) open-loop: request
``i`` is *scheduled* at phase-relative time ``t_i``; if the client is
still busy when ``t_i`` passes, the request queues and its measured
latency includes the queueing delay (completion minus scheduled arrival)
-- the honest open-loop tail, not the coordinated-omission one.

Two store backends share the schedule: the RMA :class:`KvStore`
(:func:`kv_serve_program` here) and the MPI-1 active-message comparator
(:func:`repro.apps.kvstore.mpi1_kv.mpi1_kv_program`), which models the
paper's receiver involvement -- every remote request interrupts the
owner, exactly the cost fig7a's two-sided curve pays.
"""

from __future__ import annotations

import numpy as np

from repro.apps.kvstore.layout import KvLayout
from repro.apps.kvstore.rma_kv import KvStore
from repro.config import CheckConfig, MachineConfig, ObsConfig, SimConfig
from repro.serve.zipf import OP_GET, OP_PUT, OP_UPDATE, ServeSpec, \
    client_schedule
from repro.sim.random import derive_seed

__all__ = ["kv_serve_program", "run_kv_serve", "initial_value",
           "expected_contents", "merged_contents", "all_latencies"]

_MASK63 = (1 << 63) - 1


def initial_value(seed: int, key: int) -> int:
    """Preloaded value of ``key`` (shared by all backends + the model)."""
    return derive_seed(seed, f"kv-init-{key}") & _MASK63


# ----------------------------------------------------------------------
# RMA backend
# ----------------------------------------------------------------------
def kv_serve_program(ctx, spec: ServeSpec, n_stripes: int = 8):
    """One rank of the RMA serving phase.

    Returns ``(lat, contents)``: ``lat`` is an int64 array of
    ``(scheduled_ns, completed_ns, op)`` rows, ``contents`` this rank's
    final (key, value) partition from the post-barrier occupancy scan.
    Schedule keys are 0-based; the store keys are ``key + 1`` (zero
    marks an empty slot word).
    """
    layout = KvLayout.default(max(1, spec.nkeys // ctx.nranks + 1))
    store = KvStore(ctx, layout, n_stripes=n_stripes)
    yield from store.setup()
    for key in range(ctx.rank, spec.nkeys, ctx.nranks):
        yield from store.put(key + 1, initial_value(spec.seed, key))
    yield from store.win.flush_all()
    yield from ctx.coll.barrier()

    sched = client_schedule(spec, ctx.rank, ctx.nranks)
    lat = np.zeros((len(sched), 3), dtype=np.int64)
    t0 = ctx.now
    obs = ctx.obs
    for i in range(len(sched)):
        t_arr = t0 + int(sched[i, 0])
        if ctx.now < t_arr:
            yield ctx.env.timeout(t_arr - ctx.now)
        op, key, value = int(sched[i, 1]), int(sched[i, 2]), int(sched[i, 3])
        if op == OP_GET:
            yield from store.get(key + 1)
        elif op == OP_PUT:
            yield from store.put(key + 1, value)
        else:
            yield from store.update(key + 1, value)
        done = ctx.now
        lat[i] = (t_arr, done, op)
        if obs is not None:
            obs.metrics.observe("kv.latency_ns", ctx.rank, done - t_arr)

    yield from store.win.flush_all()
    # Orders every rank's remote operations before the local scans.
    yield from ctx.coll.barrier()
    contents = store.scan_local()
    yield from store.close()
    return lat, contents


def run_kv_serve(nranks: int, spec: ServeSpec, *, n_stripes: int = 8,
                 ranks_per_node: int = 8, check: bool = False):
    """One-shot RMA serving run with observability (and optionally the
    race checker) attached."""
    from repro.runtime.job import run_spmd

    return run_spmd(kv_serve_program, nranks, spec, n_stripes,
                    machine=MachineConfig(ranks_per_node=ranks_per_node),
                    sim=SimConfig(seed=spec.seed),
                    obs=ObsConfig(enabled=True),
                    check=CheckConfig(enabled=True) if check else None)


# ----------------------------------------------------------------------
# verification helpers
# ----------------------------------------------------------------------
def all_latencies(result) -> np.ndarray:
    """Per-request latencies (completed - scheduled) across all ranks;
    raises the first rank failure."""
    rows = []
    for value in result.returns:
        if isinstance(value, BaseException):
            raise value
        rows.append(value[0])
    lat = np.concatenate(rows) if rows else np.zeros((0, 3), np.int64)
    return lat[:, 1] - lat[:, 0]


def merged_contents(result) -> dict[int, int]:
    """Union of all ranks' final partitions (1-based store keys)."""
    merged: dict[int, int] = {}
    for value in result.returns:
        if isinstance(value, BaseException):
            raise value
        merged.update(value[1])
    return merged


def expected_contents(spec: ServeSpec, nclients: int):
    """Replay the schedules into a model: returns (key set, and for keys
    never PUT, the deterministic final value).

    PUT overwrites resolve by timing against other clients' PUTs and
    UPDATEs (last writer wins), so only the key *set* is
    schedule-independent for them; keys touched by GETs/UPDATEs only
    keep a deterministic value (updates commute and are applied under
    CAS).  Both returned structures use 1-based store keys."""
    keys = {k + 1 for k in range(spec.nkeys)}
    put_by: dict[int, set] = {}
    deltas: dict[int, int] = {}
    for client in range(nclients):
        for t, op, key, value in client_schedule(spec, client, nclients):
            k = int(key) + 1
            if op == OP_PUT:
                put_by.setdefault(k, set()).add(client)
            elif op == OP_UPDATE:
                deltas[k] = (deltas.get(k, 0) + int(value)) & _MASK63
    determined = {}
    for k in keys:
        if k in put_by:
            continue
        determined[k] = (initial_value(spec.seed, k - 1)
                         + deltas.get(k, 0)) & _MASK63
    return keys, determined
