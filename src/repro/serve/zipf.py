"""Seeded open-loop workload generation: Zipfian keys, Poisson arrivals.

A :class:`ServeSpec` plus (client id, client count) fully determines a
client's request schedule -- a pure function of the seed via the
``derive_seed`` stream discipline, so schedules are bit-identical across
process-pool workers, reruns, and the MPI-1/RMA/FT store variants.

Keys in a schedule are 0-based popularity ranks (key 0 is the hottest);
store frontends map them to their own key space (the RMA store adds 1,
the FT array store uses them as slot indices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SimConfig
from repro.sim.random import stream

__all__ = ["ServeSpec", "OP_GET", "OP_PUT", "OP_UPDATE", "zipf_cdf",
           "client_schedule", "requests_for", "mutator_of"]

OP_GET = 0
OP_PUT = 1
OP_UPDATE = 2


@dataclass(frozen=True)
class ServeSpec:
    """One serving experiment (frozen => picklable, cache-keyable).

    ``theta`` is the Zipf exponent (0 = uniform; the YCSB-style default
    0.99 is heavily skewed).  ``rate_hz`` is the per-client open-loop
    arrival rate; arrivals are Poisson, so requests queue behind slow
    ones instead of the client slowing down -- latency includes that
    queueing, which is what makes the tail honest.  ``total_requests``
    is split across clients (earlier clients get the remainder).

    ``ft_mode`` remaps every mutation to a key owned by the issuing
    client (:func:`mutator_of`), making the final store state a pure
    function of the schedule -- the property the crash-through serving
    test compares bit-for-bit.  Gets are not remapped.
    """

    nkeys: int = 512
    theta: float = 0.99
    get_frac: float = 0.8
    update_frac: float = 0.1
    total_requests: int = 4_000
    rate_hz: float = 200_000.0
    seed: int = SimConfig.seed
    ft_mode: bool = False

    def __post_init__(self) -> None:
        if self.nkeys < 1:
            raise ValueError(f"nkeys={self.nkeys} must be >= 1")
        if self.theta < 0:
            raise ValueError(f"theta={self.theta} is negative")
        if not 0.0 <= self.get_frac <= 1.0:
            raise ValueError(f"get_frac={self.get_frac} outside [0, 1]")
        if not 0.0 <= self.update_frac <= 1.0 - self.get_frac:
            raise ValueError(
                f"update_frac={self.update_frac} outside "
                f"[0, {1.0 - self.get_frac:g}]")
        if self.total_requests < 0:
            raise ValueError(f"total_requests={self.total_requests} "
                             "is negative")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz={self.rate_hz} must be positive")


def requests_for(spec: ServeSpec, client: int, nclients: int) -> int:
    """This client's share of ``total_requests``."""
    base, rem = divmod(spec.total_requests, nclients)
    return base + (1 if client < rem else 0)


def zipf_cdf(nkeys: int, theta: float) -> np.ndarray:
    """Cumulative Zipf(theta) distribution over ``nkeys`` ranks."""
    weights = 1.0 / np.power(np.arange(1, nkeys + 1, dtype=np.float64),
                             theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    cdf[-1] = 1.0
    return cdf


def mutator_of(key: int, nranks: int) -> int:
    """The one client allowed to mutate ``key`` in ``ft_mode``.

    Diagonal assignment: for a fixed owner column (``key % nranks``) the
    rows map to different clients, so each client's mutation set still
    spreads across all owners -- single-writer without making traffic
    local."""
    return (key + key // nranks) % nranks


def client_schedule(spec: ServeSpec, client: int,
                    nclients: int) -> np.ndarray:
    """One client's request schedule: int64 rows ``(t_ns, op, key,
    value)`` with ``t_ns`` relative to the serving phase start and
    strictly increasing."""
    if not 0 <= client < nclients:
        raise ValueError(f"client {client} outside [0, {nclients})")
    n = requests_for(spec, client, nclients)
    out = np.zeros((n, 4), dtype=np.int64)
    if n == 0:
        return out
    arr = stream(spec.seed, f"serve-arr-{client}")
    keys = stream(spec.seed, f"serve-key-{client}")
    ops = stream(spec.seed, f"serve-op-{client}")
    vals = stream(spec.seed, f"serve-val-{client}")

    gaps = arr.exponential(1e9 / spec.rate_hz, size=n)
    out[:, 0] = np.cumsum(np.maximum(1, np.rint(gaps).astype(np.int64)))

    cdf = zipf_cdf(spec.nkeys, spec.theta)
    out[:, 2] = np.searchsorted(cdf, keys.random(n), side="right")

    draw = ops.random(n)
    out[:, 1] = np.where(
        draw < spec.get_frac, OP_GET,
        np.where(draw < spec.get_frac + spec.update_frac, OP_UPDATE,
                 OP_PUT))
    out[:, 3] = vals.integers(1, 1 << 40, size=n)

    if spec.ft_mode:
        # Single-writer remap: mutations target only this client's keys.
        own = np.array([k for k in range(spec.nkeys)
                        if mutator_of(k, nclients) == client]
                       or [client % spec.nkeys], dtype=np.int64)
        mut = out[:, 1] != OP_GET
        out[mut, 2] = own[out[mut, 2] % own.size]
    return out
