"""Tail-latency SLO aggregation and the deterministic serving report.

Two latency views, cross-checkable against each other:

* exact streaming percentiles (:func:`exact_percentiles`, nearest-rank
  on the full sorted sample) -- the SLO gate's source of truth;
* the obs layer's power-of-two histogram (``kv.latency_ns`` merged
  across ranks) -- the cheap always-on view whose bucket for p99 must
  bracket the exact value.

Everything in the report is integer nanoseconds or round()-ed floats of
deterministic inputs, so a repeated run of the same spec produces a
bit-identical JSON document -- the acceptance property the CLI and the
CI job assert by hashing.
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.serve.driver import all_latencies
from repro.serve.zipf import OP_GET, OP_PUT, OP_UPDATE, ServeSpec

__all__ = ["exact_percentiles", "build_report", "render_report",
           "report_digest"]

_QUANTILES = (("p50", 50.0), ("p99", 99.0), ("p99_9", 99.9))


def exact_percentiles(samples, quantiles=_QUANTILES) -> dict[str, int]:
    """Nearest-rank percentiles of integer samples (exact, not
    interpolated: every reported value is an observed latency)."""
    arr = np.sort(np.asarray(samples, dtype=np.int64))
    out = {}
    for name, q in quantiles:
        if arr.size == 0:
            out[name] = 0
        else:
            idx = max(0, math.ceil(q / 100.0 * arr.size) - 1)
            out[name] = int(arr[min(idx, arr.size - 1)])
    return out


def _hotspots(obs, top: int = 8) -> dict:
    """Per-rank hotspot section from the obs metrics: key-skew heatmap
    (requests served per owner) and lock contention."""
    if obs is None:
        return {}
    snap = obs.metrics.snapshot()
    owners = snap["counters"].get("kv.owner_requests", {})
    ranked = sorted(owners.items(), key=lambda kv: (-kv[1], int(kv[0])))
    wait = obs.metrics.merged_histogram("mcs.acquire_wait_ns")
    return {
        "owner_requests": {r: n for r, n in ranked},
        "hottest_owners": [{"rank": int(r), "requests": n}
                           for r, n in ranked[:top]],
        "mcs_acquires": obs.metrics.counter_total("mcs.acquires"),
        "mcs_wait_ns_mean": round(wait.mean, 1),
        "mcs_wait_ns_max": int(wait.max or 0),
    }


def build_report(result, spec: ServeSpec, nranks: int, *,
                 variant: str = "rma") -> dict:
    """JSON-ready serving report for one run (deterministic)."""
    lats = all_latencies(result)
    rows = np.concatenate([v[0] for v in result.returns]) \
        if result.returns else np.zeros((0, 3), np.int64)
    ops = rows[:, 2] if rows.size else np.zeros(0, np.int64)
    pct = exact_percentiles(lats)
    sim_s = result.sim_time_ns / 1e9
    report = {
        "workload": {
            "variant": variant,
            "nranks": nranks,
            "nkeys": spec.nkeys,
            "theta": spec.theta,
            "requests": int(lats.size),
            "rate_hz": spec.rate_hz,
            "seed": spec.seed,
            "ft_mode": spec.ft_mode,
        },
        "latency_ns": {
            **pct,
            "mean": round(float(lats.mean()), 1) if lats.size else 0.0,
            "max": int(lats.max()) if lats.size else 0,
            "count": int(lats.size),
        },
        "ops": {
            "get": int(np.count_nonzero(ops == OP_GET)),
            "put": int(np.count_nonzero(ops == OP_PUT)),
            "update": int(np.count_nonzero(ops == OP_UPDATE)),
        },
        "throughput_rps": round(lats.size / sim_s, 1) if sim_s else 0.0,
        "sim_time_ns": result.sim_time_ns,
        "hotspots": _hotspots(result.obs),
    }
    if result.obs is not None:
        hist = result.obs.metrics.merged_histogram("kv.latency_ns")
        report["latency_hist"] = hist.snapshot()
    return report


def report_digest(report: dict) -> str:
    """Content hash of a report -- the bit-identity acceptance check."""
    import hashlib

    blob = json.dumps(report, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def render_report(report: dict) -> str:
    """Plain-text rendering of :func:`build_report`'s dict."""
    w = report["workload"]
    lat = report["latency_ns"]
    ops = report["ops"]
    lines = [
        f"kvstore serve ({w['variant']}): {w['requests']} requests, "
        f"{w['nranks']} ranks, {w['nkeys']} keys, theta={w['theta']:g}, "
        f"seed={w['seed']}",
        f"  ops: {ops['get']} get / {ops['put']} put / "
        f"{ops['update']} update",
        f"  throughput: {report['throughput_rps']:,.0f} req/s over "
        f"{report['sim_time_ns'] / 1e6:.3f} ms simulated",
        f"  latency: p50 {lat['p50'] / 1e3:.2f} us | "
        f"p99 {lat['p99'] / 1e3:.2f} us | "
        f"p99.9 {lat['p99_9'] / 1e3:.2f} us | "
        f"max {lat['max'] / 1e3:.2f} us",
    ]
    hot = report.get("hotspots") or {}
    if hot.get("hottest_owners"):
        tops = ", ".join(f"r{h['rank']}={h['requests']}"
                         for h in hot["hottest_owners"][:4])
        lines.append(f"  hotspots: {tops} "
                     f"(mcs acquires {hot['mcs_acquires']}, "
                     f"mean wait {hot['mcs_wait_ns_mean']:.0f} ns)")
    ft = report.get("ft")
    if ft:
        lines.append(
            f"  ft: crashed rank {ft['crash_rank']} at "
            f"{ft['crash_time_ns'] / 1e6:.3f} ms, availability gap "
            f"{ft['availability_gap_ns'] / 1e3:.1f} us, post-recovery "
            f"p99 {ft['post_recovery_p99_ns'] / 1e3:.2f} us, state "
            + ("MATCH" if ft["state_match"] else "MISMATCH"))
    lines.append(f"  report digest: {report_digest(report)[:16]}")
    return "\n".join(lines)
