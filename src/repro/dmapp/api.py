"""DMAPP endpoint: per-rank RDMA operations over the network model.

Completion semantics (matching real DMAPP closely enough for the paper's
protocols):

* every operation has a *remote completion* time -- when its effect is
  globally visible and the origin could know (ack round trip);
* explicit-nonblocking ops return a :class:`DmappHandle` that can be
  waited on individually;
* implicit-nonblocking ops are only completed in bulk by :meth:`gsync`,
  exactly the primitive foMPI's flush/fence are built from.

Because the network layer computes delivery times eagerly (busy-until
channels), remote-completion *times* are known at issue; waiting is then a
single timeout rather than per-packet events.  Target-memory mutation still
happens via an event callback at the delivery instant, so reads at the
target observe writes in true simulated-time order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeadlineError, NodeCrashedError, SimulationError
from repro.mem.atomic import AtomicArray
from repro.mem.registration import MemDescriptor, RegistrationTable
from repro.machine.network import Network

__all__ = ["DmappEndpoint", "ResilientDmappEndpoint", "DmappHandle"]

_HEADER_BYTES = 24  # request header: opcode + rkey + vaddr (get/amo requests)
_AMO_BYTES = 16     # AMO request payload: operand + address


def _as_payload(data) -> memoryview:
    """Issue-time capture of a put payload as a flat byte view.

    ``bytes`` input is immutable, so the view aliases it with *no* copy;
    mutable buffers are snapshotted once (the DMA capture the docstrings
    promise); numpy arrays flatten through ``tobytes`` -- the same C-order
    byte reinterpretation the old ``ascontiguousarray(...).view(uint8)``
    produced, but as a single copy with no per-chunk numpy machinery.
    Chunk pieces are then zero-copy ``memoryview`` slices of this capture,
    and land at the target through :meth:`Segment.write`'s slice-copy fast
    path.
    """
    if type(data) is bytes:
        return memoryview(data)
    if isinstance(data, (bytearray, memoryview)):
        return memoryview(bytes(data))
    return memoryview(np.asarray(data).tobytes())


@dataclass
class DmappHandle:
    """Explicit-nonblocking operation handle."""

    kind: str
    local_complete: int   # ns: origin buffer reusable
    remote_complete: int  # ns: effect visible + ack at origin
    result: np.ndarray | int | None = None  # filled for fetch ops at delivery


class DmappEndpoint:
    """One rank's DMAPP context.

    Mutating operations accept an optional ``on_applied`` delivery
    callback, invoked inside the target-side effect closure right after
    the mutation lands (puts: per chunk with ``(offset, piece)``; AMOs:
    with the old value(s)).  The FT layer uses it for demand-driven
    put/atomic logging; it is never called for deduplicated AMO replays.
    """

    # Observability sink; assigned by RankContext when the world carries
    # an Instrumentation, else stays None and every hook is one test.
    obs = None
    # Rollback-recovery runtime; assigned by RankContext when the world
    # carries an FTRuntime (same None-when-off contract as obs).
    ft = None

    def __init__(
        self,
        env,
        rank: int,
        network: Network,
        rank_map,
        reg_tables: dict[int, RegistrationTable],
    ) -> None:
        self.env = env
        self.rank = rank
        self.network = network
        self.rank_map = rank_map
        self.reg_tables = reg_tables
        self.node = rank_map.node_of(rank)
        self._horizon = 0      # latest remote-completion time of any op
        self._issued = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _target_node(self, rank: int) -> int:
        return self.rank_map.node_of(rank)

    def _wire_back(self, target_node: int) -> float:
        return self.network.wire(target_node, self.node)

    def _track(self, handle: DmappHandle, target: int | None = None,
               nbytes: int = 0) -> DmappHandle:
        self._horizon = max(self._horizon, handle.remote_complete)
        self._issued += 1
        # Data movement is forward progress for the watchdog; AMOs are
        # deliberately NOT marks (a spinning lock issues AMOs forever).
        if handle.kind in ("put", "get"):
            self.env.note_progress()
        # env.now has not advanced since issue (every op body computes its
        # times eagerly and only yields after _track), so now == t0.
        if self.obs is not None and target is not None:
            self.obs.on_op(self.rank, handle.kind, target, self.env.now,
                           handle.remote_complete, nbytes)
        return handle

    def _resolve(self, desc: MemDescriptor):
        return self.reg_tables[desc.rank].resolve(desc)

    # ------------------------------------------------------------------
    # put
    # ------------------------------------------------------------------
    def put_nbi(self, desc: MemDescriptor, offset: int, data,
                on_applied=None) -> "Generator":
        """Implicit-nonblocking put; completed by :meth:`gsync`.

        Charges the origin process for injection backpressure (this is what
        bounds the message rate at 1/o_inject) and captures ``data`` at
        issue time, as the hardware DMA would.
        """
        payload = _as_payload(data)
        seg = self._resolve(desc)
        seg._check(offset, payload.nbytes)  # fail at issue, like a bad rkey
        net = self.network
        tnode = self._target_node(desc.rank)
        handle = DmappHandle("put", 0, 0)
        total = payload.nbytes
        chunk = net.params.max_chunk
        pos = 0
        last_delivery = self.env.now
        cpu_free = self.env.now
        while True:
            n = min(chunk, total - pos) if total else 0
            inj_start, inj_end = net.occupy_injection(self.node, max(1, n))
            # The CPU blocks for the descriptor write, or -- when the
            # injection FIFO is full -- until an older descriptor drained.
            admit = net.injection_admit(self.node, inj_end, max(1, n))
            cpu_free = max(self.env.now + int(round(net.params.o_inject)),
                           admit)
            piece = payload[pos:pos + n]
            off = offset + pos

            def _write(_t, seg=seg, off=off, piece=piece):
                seg.write(off, piece)
                if on_applied is not None:
                    on_applied(off, piece)

            delivery, _ev = net.packet(
                self.node, tnode, max(1, n), inject_window=(inj_start, inj_end),
                on_deliver=_write)
            net.counters.count_issue(self.rank, "put", n)
            # Chunks can complete out of order (a small tail chunk takes
            # the FMA path while bulk chunks drain on the BTE): remote
            # completion is the MAX delivery, not the last one.
            last_delivery = max(last_delivery, delivery)
            pos += n
            if pos >= total:
                handle.local_complete = inj_end
                break
        handle.remote_complete = int(round(
            last_delivery + self._wire_back(tnode)))
        self._track(handle, desc.rank, total)
        # The CPU is blocked only until the NIC accepted the descriptor
        # (o_inject); the DMA drain itself overlaps with computation.
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def put_nb(self, desc: MemDescriptor, offset: int, data):
        """Explicit-nonblocking put (same cost; waitable handle)."""
        return (yield from self.put_nbi(desc, offset, data))

    def put_b(self, desc: MemDescriptor, offset: int, data):
        """Blocking put: returns at *local* completion (buffer reusable)."""
        handle = yield from self.put_nbi(desc, offset, data)
        return handle

    # ------------------------------------------------------------------
    # get
    # ------------------------------------------------------------------
    def get_nbi(self, desc: MemDescriptor, offset: int, nbytes: int,
                out: np.ndarray | None = None):
        """Implicit-nonblocking get; data lands in ``out`` (or the handle's
        ``result``) at remote completion."""
        seg = self._resolve(desc)
        seg._check(offset, nbytes)
        net = self.network
        p = net.params
        tnode = self._target_node(desc.rank)
        # Request packet (header only) travels to the target NIC ...
        inj_start, inj_end = net.occupy_injection(self.node, _HEADER_BYTES)
        req_delivery, _ = net.packet(self.node, tnode, _HEADER_BYTES,
                                     inject_window=(inj_start, inj_end))
        # ... the target NIC reads memory and streams the response back,
        # sharing the target's bulk-injection bandwidth with its own
        # outbound traffic (small responses use the FMA path).
        resp_ready = req_delivery + p.get_target_overhead
        resp_chan = (self.network.nic(tnode).fma
                     if nbytes <= p.fma_threshold
                     else self.network.nic(tnode).bte)
        _resp_start, resp_end = resp_chan.occupy(
            int(round(max(p.nic_packet_gap, nbytes * p.get_gap_per_byte))),
            earliest=int(round(resp_ready)))
        wire = self._wire_back(tnode)
        data_arrival = int(round(resp_end + wire))

        handle = DmappHandle("get", inj_end, data_arrival)
        if out is not None and out.nbytes != nbytes:
            raise SimulationError(
                f"get out-buffer is {out.nbytes} B, expected {nbytes}")

        # Memory is read at the target at resp_start, landed at data_arrival.
        ev = self.env.event(name="get-data")

        def _read_at_target(event):
            if out is not None and out.flags["C_CONTIGUOUS"]:
                # Zero-copy landing: one slice copy from target memory
                # straight into the caller's buffer (watch hook included).
                flat = out.view(np.uint8).ravel()
                seg.read_into(offset, memoryview(flat.data))
                handle.result = flat
                return
            data = seg.read(offset, nbytes)
            handle.result = data
            if out is not None:
                out.view(np.uint8).ravel()[:] = data

        ev.callbacks.append(_read_at_target)
        ev.succeed(delay=max(0, data_arrival - self.env.now))
        net.counters.count_issue(self.rank, "get", nbytes)
        self._track(handle, desc.rank, nbytes)
        admit = net.injection_admit(self.node, inj_end, _HEADER_BYTES)
        cpu_free = max(self.env.now + int(round(p.o_inject)), admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def get_b(self, desc: MemDescriptor, offset: int, nbytes: int):
        """Blocking get: waits for the data; returns a uint8 array."""
        handle = yield from self.get_nbi(desc, offset, nbytes)
        yield from self.wait(handle)
        return handle.result

    # ------------------------------------------------------------------
    # AMOs
    # ------------------------------------------------------------------
    def amo_nbi(self, target_rank: int, cells: AtomicArray, idx: int,
                op: str, operand: int, operand2: int = 0, fetch: bool = False,
                on_applied=None):
        """One 8-byte AMO at the target NIC.

        ``op='cas'`` uses ``operand`` as compare and ``operand2`` as swap.
        With ``fetch=True`` the old value is available in ``handle.result``
        once the handle completes.
        """
        net = self.network
        tnode = self._target_node(target_rank)
        inj_start, inj_end = net.occupy_injection(self.node, _AMO_BYTES)

        handle = DmappHandle("amo", inj_end, 0)

        def _execute(_t):
            if op == "cas":
                old = cells.cas(idx, operand, operand2)
            else:
                old = cells.apply(idx, op, operand)
            handle.result = old
            if on_applied is not None:
                on_applied(old)

        delivery, _ = net.packet(self.node, tnode, _AMO_BYTES,
                                 inject_window=(inj_start, inj_end),
                                 is_amo=True, on_deliver=_execute)
        handle.remote_complete = int(round(delivery + self._wire_back(tnode)))
        net.counters.count_issue(self.rank, f"amo:{op}", 8)
        self._track(handle, target_rank, 8)
        admit = net.injection_admit(self.node, inj_end, _AMO_BYTES)
        cpu_free = max(self.env.now + int(round(net.params.o_inject)), admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def amo_custom_nbi(self, target_rank: int, mutate):
        """Protocol-level chained AMO: run ``mutate()`` atomically at the
        target NIC at delivery time (one injection).

        Models operation chains the NIC executes without origin round
        trips -- foMPI's PSCW free-storage append (fetch-ticket + write
        slot, Figure 2c) uses this.  ``mutate`` returns a value exposed in
        ``handle.result``.
        """
        net = self.network
        tnode = self._target_node(target_rank)
        inj_start, inj_end = net.occupy_injection(self.node, _AMO_BYTES)
        handle = DmappHandle("amo-custom", inj_end, 0)

        def _execute(_t):
            handle.result = mutate()

        delivery, _ = net.packet(self.node, tnode, _AMO_BYTES,
                                 inject_window=(inj_start, inj_end),
                                 is_amo=True, on_deliver=_execute)
        handle.remote_complete = int(round(delivery + self._wire_back(tnode)))
        net.counters.count_issue(self.rank, "amo:custom", 8)
        self._track(handle, target_rank, 8)
        admit = net.injection_admit(self.node, inj_end, _AMO_BYTES)
        cpu_free = max(self.env.now + int(round(net.params.o_inject)), admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def amo_b(self, target_rank: int, cells: AtomicArray, idx: int,
              op: str, operand: int, operand2: int = 0, on_applied=None):
        """Blocking fetching AMO; returns the OLD value."""
        handle = yield from self.amo_nbi(target_rank, cells, idx, op,
                                         operand, operand2, fetch=True,
                                         on_applied=on_applied)
        yield from self.wait(handle)
        return handle.result

    def amo_stream_nbi(self, target_rank: int, cells: AtomicArray,
                       base_idx: int, op: str, operands, fetch: bool = False,
                       on_applied=None):
        """Streamed AMOs over consecutive cells (foMPI accelerated
        accumulate): one injection, AMO-engine occupancy per element.

        This is what produces the paper's P_acc,sum = 28 ns/elem + 2.4 us.
        """
        ops = [int(v) for v in np.asarray(operands).ravel()]
        n = len(ops)
        if n == 0:
            raise SimulationError("empty AMO stream")
        net = self.network
        p = net.params
        tnode = self._target_node(target_rank)
        nbytes = 8 * n
        inj_start, inj_end = net.occupy_injection(self.node, nbytes)
        admit = net.injection_admit(self.node, inj_end, nbytes)
        cpu_free = max(self.env.now + int(round(p.o_inject)), admit)

        handle = DmappHandle("amo-stream", inj_end, 0)

        def _execute(_t):
            old = [cells.apply(base_idx + i, op, v) for i, v in enumerate(ops)]
            if fetch:
                handle.result = np.array(old, dtype=np.uint64)
            if on_applied is not None:
                on_applied(old)

        # One packet; AMO engine busy amo_gap per element.
        wire = (p.wire_latency(net.hops(self.node, tnode)) + p.nic_latency
                + net._noise())
        head = inj_end + wire  # tail arrival; bandwidth paid at injection
        chan = net.nic(tnode).amo_engine
        start = max(int(round(head)), chan.busy_until)
        chan.busy_until = start + int(round(p.amo_gap * n))
        chan.total_busy += int(round(p.amo_gap * n))
        delivery = chan.busy_until + int(round(p.amo_service))
        ev = self.env.event(name="amo-stream")
        ev.callbacks.append(lambda _e: _execute(self.env.now))
        ev.succeed(delay=max(0, delivery - self.env.now))
        net.counters.count_service(tnode)
        net.counters.count_issue(self.rank, f"amo-stream:{op}", nbytes)
        handle.remote_complete = int(round(delivery + self._wire_back(tnode)))
        self._track(handle, target_rank, nbytes)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def extend_completion(self, handle: DmappHandle, extra_ns: float) -> None:
        """Push a handle's remote completion later by ``extra_ns``.

        Used by baselines whose software agent processes the operation at
        the *target* after delivery (Cray MPI-2.2 model): the extra time is
        asynchronous to the origin CPU, so it extends the completion
        horizon instead of charging origin compute.
        """
        handle.remote_complete += int(round(extra_ns))
        self._horizon = max(self._horizon, handle.remote_complete)

    def wait(self, handle: DmappHandle):
        """Wait for one explicit handle's remote completion."""
        delta = handle.remote_complete - self.env.now
        if delta > 0:
            yield self.env.timeout(delta)
        return handle.result

    def wait_local(self, handle: DmappHandle):
        delta = handle.local_complete - self.env.now
        if delta > 0:
            yield self.env.timeout(delta)

    def gsync(self):
        """Bulk remote completion of everything this endpoint issued."""
        delta = self._horizon - self.env.now
        if delta > 0:
            yield self.env.timeout(delta)

    @property
    def completion_horizon(self) -> int:
        return self._horizon

    @property
    def ops_issued(self) -> int:
        return self._issued


class ResilientDmappEndpoint(DmappEndpoint):
    """Hardened DMAPP transport for faulty fabrics.

    Every operation is sequence-numbered and transmitted until its effect
    is applied *and* acknowledged, or until the retry budget is exhausted:

    * per-op deadlines: a missing ack after ``op_deadline_ns`` triggers a
      NIC-driven retransmission (the issuing CPU is charged only for the
      first attempt's descriptor write -- recovery overlaps computation);
    * retransmits are idempotent for put/get (re-writing the same bytes /
      re-reading) and exactly-once for AMOs: the injector caches the
      result keyed by ``(origin_rank, seq)``, so a replayed atomic whose
      first copy took effect (only the ack was lost) returns the cached
      old value instead of re-applying;
    * retransmission attempts back off exponentially (capped) with seeded
      jitter, so replay timing is deterministic for a given seed + plan;
    * :class:`~repro.errors.DeadlineError` is raised after
      ``max_retries`` failed attempts, or
      :class:`~repro.errors.NodeCrashedError` when the target node is
      known to have fail-stopped (quarantine: ops to crashed nodes fail
      fast without touching the wire).
    """

    def __init__(self, env, rank, network, rank_map, reg_tables,
                 injector, fault_config) -> None:
        super().__init__(env, rank, network, rank_map, reg_tables)
        self.injector = injector
        self.fault_config = fault_config
        self._op_seq = 0

    # ------------------------------------------------------------------
    # resilience machinery
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._op_seq += 1
        return self._op_seq

    def _quarantine_check(self, tnode: int, op: str, target_rank: int) -> None:
        """Fail fast on ops addressed to a node already known crashed."""
        inj = self.injector
        if inj.node_crashed(tnode, self.env.now):
            raise NodeCrashedError(
                tnode, inj.crash_time(tnode),
                f"{op} from rank {self.rank} to rank {target_rank} refused "
                f"(node quarantined)")

    def _deliver_reliably(self, tnode: int, nbytes: int, effect_cb,
                          kind: str, target_rank: int, *,
                          is_amo: bool = False):
        """Transmit one request until applied + acked.

        Returns ``(first_inject_window, complete_time, attempts)``.  The
        effect callback is attached to every attempt; it must be
        idempotent (put rewrites) or self-deduplicating (AMOs via the
        injector's replay cache).
        """
        inj = self.injector
        cfg = self.fault_config
        net = self.network
        env = self.env
        attempts = 0
        resend_floor: int | None = None
        first_window: tuple[int, int] | None = None
        while True:
            attempts += 1
            if attempts > cfg.max_retries + 1:
                inj.stats.deadline_failures += 1
                ct = inj.crash_time(tnode)
                if ct is not None and env.now >= ct:
                    raise NodeCrashedError(
                        tnode, ct,
                        f"{kind} from rank {self.rank} to rank "
                        f"{target_rank} undeliverable")
                raise DeadlineError(kind, target_rank, attempts - 1,
                                    cfg.op_deadline_ns)
            data_fate = inj.packet_fate(self.node, tnode)
            inj_start, inj_end = net.occupy_injection(
                self.node, max(1, nbytes), earliest=resend_floor)
            if first_window is None:
                first_window = (inj_start, inj_end)
            delivery, ev = net.packet(
                self.node, tnode, max(1, nbytes),
                inject_window=(inj_start, inj_end),
                is_amo=is_amo, fate=data_fate, on_deliver=effect_cb)
            if ev.name == "packet-deliver":
                ack_fate = inj.packet_fate(tnode, self.node)
                if not ack_fate.lost:
                    complete = int(round(delivery + self._wire_back(tnode)
                                         + ack_fate.extra_delay_ns))
                    return first_window, complete, attempts
            # Lost somewhere (request dropped/corrupted, target crashed,
            # or the ack went missing): the source NIC times out after the
            # op deadline and retransmits with capped, jittered backoff.
            ct = inj.crash_time(tnode)
            if ct is not None and inj_end >= ct:
                # The target died before this attempt could complete, and
                # every later retransmit injects even later: give up now
                # instead of burning the whole retry budget (and clogging
                # the injection channel) against a dead node.
                raise NodeCrashedError(
                    tnode, ct,
                    f"{kind} from rank {self.rank} to rank "
                    f"{target_rank} undeliverable (target crashed)")
            inj.stats.retransmits += 1
            inj._trace("retransmit",
                       f"{kind} rank{self.rank}->rank{target_rank} "
                       f"#{attempts}")
            # Draw the backoff exactly once: the obs hook must reuse it,
            # or recording would consume an extra jitter sample and
            # perturb the (seeded, deterministic) retransmit schedule.
            backoff = inj.backoff_ns(attempts)
            if self.obs is not None:
                self.obs.on_retransmit(self.rank, kind, target_rank,
                                       env.now, attempts,
                                       int(round(backoff)))
            resend_floor = int(round(inj_end + cfg.op_deadline_ns
                                     + backoff))

    def _pause_or_raise(self, target_rank: int, exc: NodeCrashedError):
        """FT hook: block until the target's cohort is restored, then let
        the caller retry; re-raise when the crash is not recoverable."""
        yield from self.ft.pause_for_restore(self.rank, target_rank, exc)

    # ------------------------------------------------------------------
    # resilient operations
    # ------------------------------------------------------------------
    def put_nbi(self, desc: MemDescriptor, offset: int, data,
                on_applied=None):
        if self.ft is None:
            return (yield from self._put_nbi_inner(desc, offset, data,
                                                   on_applied))
        while True:
            try:
                return (yield from self._put_nbi_inner(desc, offset, data,
                                                       on_applied))
            except NodeCrashedError as exc:
                yield from self._pause_or_raise(desc.rank, exc)

    def _put_nbi_inner(self, desc: MemDescriptor, offset: int, data,
                       on_applied=None):
        payload = _as_payload(data)
        seg = self._resolve(desc)
        seg._check(offset, payload.nbytes)
        net = self.network
        tnode = self._target_node(desc.rank)
        self._quarantine_check(tnode, "put", desc.rank)
        handle = DmappHandle("put", 0, 0)
        total = payload.nbytes
        chunk = net.params.max_chunk
        pos = 0
        last_complete = self.env.now
        cpu_free = self.env.now
        while True:
            n = min(chunk, total - pos) if total else 0
            piece = payload[pos:pos + n]
            off = offset + pos

            def _write(_t, seg=seg, off=off, piece=piece):
                seg.write(off, piece)  # idempotent: retransmits re-write
                if on_applied is not None:
                    on_applied(off, piece)

            (inj_start, inj_end), complete, _att = self._deliver_reliably(
                tnode, max(1, n), _write, "put", desc.rank)
            admit = net.injection_admit(self.node, inj_end, max(1, n))
            cpu_free = max(self.env.now + int(round(net.params.o_inject)),
                           admit)
            net.counters.count_issue(self.rank, "put", n)
            last_complete = max(last_complete, complete)
            pos += n
            if pos >= total:
                handle.local_complete = inj_end
                break
        handle.remote_complete = last_complete
        self._track(handle, desc.rank, total)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def get_nbi(self, desc: MemDescriptor, offset: int, nbytes: int,
                out: np.ndarray | None = None):
        if self.ft is None:
            return (yield from self._get_nbi_inner(desc, offset, nbytes, out))
        while True:
            try:
                return (yield from self._get_nbi_inner(desc, offset,
                                                       nbytes, out))
            except NodeCrashedError as exc:
                yield from self._pause_or_raise(desc.rank, exc)

    def _get_nbi_inner(self, desc: MemDescriptor, offset: int, nbytes: int,
                       out: np.ndarray | None = None):
        seg = self._resolve(desc)
        seg._check(offset, nbytes)
        net = self.network
        p = net.params
        inj = self.injector
        cfg = self.fault_config
        tnode = self._target_node(desc.rank)
        self._quarantine_check(tnode, "get", desc.rank)
        if out is not None and out.nbytes != nbytes:
            raise SimulationError(
                f"get out-buffer is {out.nbytes} B, expected {nbytes}")

        attempts = 0
        resend_floor: int | None = None
        first_window: tuple[int, int] | None = None
        data_arrival = self.env.now
        while True:
            attempts += 1
            if attempts > cfg.max_retries + 1:
                inj.stats.deadline_failures += 1
                ct = inj.crash_time(tnode)
                if ct is not None and self.env.now >= ct:
                    raise NodeCrashedError(
                        tnode, ct,
                        f"get from rank {self.rank} to rank {desc.rank} "
                        f"undeliverable")
                raise DeadlineError("get", desc.rank, attempts - 1,
                                    cfg.op_deadline_ns)
            req_fate = inj.packet_fate(self.node, tnode)
            inj_start, inj_end = net.occupy_injection(
                self.node, _HEADER_BYTES, earliest=resend_floor)
            if first_window is None:
                first_window = (inj_start, inj_end)
            req_delivery, req_ev = net.packet(
                self.node, tnode, _HEADER_BYTES,
                inject_window=(inj_start, inj_end), fate=req_fate)
            if req_ev.name == "packet-deliver":
                resp_fate = inj.packet_fate(tnode, self.node)
                if not resp_fate.lost:
                    resp_ready = req_delivery + p.get_target_overhead
                    resp_ready = max(resp_ready, inj.stall_release(
                        tnode, int(round(resp_ready))))
                    resp_chan = (net.nic(tnode).fma
                                 if nbytes <= p.fma_threshold
                                 else net.nic(tnode).bte)
                    _rs, resp_end = resp_chan.occupy(
                        int(round(max(p.nic_packet_gap,
                                      nbytes * p.get_gap_per_byte))),
                        earliest=int(round(resp_ready)))
                    if not inj.node_crashed(tnode, resp_end):
                        data_arrival = int(round(
                            resp_end + self._wire_back(tnode)
                            + resp_fate.extra_delay_ns))
                        break
            ct = inj.crash_time(tnode)
            if ct is not None and inj_end >= ct:
                # Dead target: no retransmit can ever succeed (see
                # _deliver_reliably).
                raise NodeCrashedError(
                    tnode, ct,
                    f"get from rank {self.rank} to rank {desc.rank} "
                    f"undeliverable (target crashed)")
            inj.stats.retransmits += 1
            inj._trace("retransmit",
                       f"get rank{self.rank}->rank{desc.rank} #{attempts}")
            backoff = inj.backoff_ns(attempts)
            if self.obs is not None:
                self.obs.on_retransmit(self.rank, "get", desc.rank,
                                       self.env.now, attempts,
                                       int(round(backoff)))
            resend_floor = int(round(inj_end + cfg.op_deadline_ns
                                     + backoff))

        inj_start, inj_end = first_window
        handle = DmappHandle("get", inj_end, data_arrival)
        ev = self.env.event(name="get-data")

        def _read_at_target(event):
            if out is not None and out.flags["C_CONTIGUOUS"]:
                # Zero-copy landing: one slice copy from target memory
                # straight into the caller's buffer (watch hook included).
                flat = out.view(np.uint8).ravel()
                seg.read_into(offset, memoryview(flat.data))
                handle.result = flat
                return
            data = seg.read(offset, nbytes)
            handle.result = data
            if out is not None:
                out.view(np.uint8).ravel()[:] = data

        ev.callbacks.append(_read_at_target)
        ev.succeed(delay=max(0, data_arrival - self.env.now))
        net.counters.count_issue(self.rank, "get", nbytes)
        self._track(handle, desc.rank, nbytes)
        admit = net.injection_admit(self.node, inj_end, _HEADER_BYTES)
        cpu_free = max(self.env.now + int(round(p.o_inject)), admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def amo_nbi(self, target_rank: int, cells: AtomicArray, idx: int,
                op: str, operand: int, operand2: int = 0,
                fetch: bool = False, on_applied=None):
        # Draw the sequence number once, before any attempt: on a
        # crash-and-restore retry the injector's replay cache then
        # deduplicates an AMO whose first copy already took effect.
        seq = self._next_seq()
        if self.ft is None:
            return (yield from self._amo_nbi_inner(
                target_rank, cells, idx, op, operand, operand2, fetch,
                seq, on_applied))
        while True:
            try:
                return (yield from self._amo_nbi_inner(
                    target_rank, cells, idx, op, operand, operand2, fetch,
                    seq, on_applied))
            except NodeCrashedError as exc:
                yield from self._pause_or_raise(target_rank, exc)

    def _amo_nbi_inner(self, target_rank: int, cells: AtomicArray, idx: int,
                       op: str, operand: int, operand2: int, fetch: bool,
                       seq: int, on_applied=None):
        net = self.network
        inj = self.injector
        tnode = self._target_node(target_rank)
        self._quarantine_check(tnode, f"amo:{op}", target_rank)
        handle = DmappHandle("amo", 0, 0)

        def _execute(_t):
            if inj.amo_executed(self.rank, seq):
                handle.result = inj.replay_result(self.rank, seq)
                return
            if op == "cas":
                old = cells.cas(idx, operand, operand2)
            else:
                old = cells.apply(idx, op, operand)
            inj.record_amo(self.rank, seq, old)
            handle.result = old
            if on_applied is not None:
                on_applied(old)

        (inj_start, inj_end), complete, _att = self._deliver_reliably(
            tnode, _AMO_BYTES, _execute, f"amo:{op}", target_rank,
            is_amo=True)
        handle.local_complete = inj_end
        handle.remote_complete = complete
        net.counters.count_issue(self.rank, f"amo:{op}", 8)
        self._track(handle, target_rank, 8)
        admit = net.injection_admit(self.node, inj_end, _AMO_BYTES)
        cpu_free = max(self.env.now + int(round(net.params.o_inject)),
                       admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def amo_custom_nbi(self, target_rank: int, mutate):
        seq = self._next_seq()
        if self.ft is None:
            return (yield from self._amo_custom_nbi_inner(
                target_rank, mutate, seq))
        while True:
            try:
                return (yield from self._amo_custom_nbi_inner(
                    target_rank, mutate, seq))
            except NodeCrashedError as exc:
                yield from self._pause_or_raise(target_rank, exc)

    def _amo_custom_nbi_inner(self, target_rank: int, mutate, seq: int):
        net = self.network
        inj = self.injector
        tnode = self._target_node(target_rank)
        self._quarantine_check(tnode, "amo:custom", target_rank)
        handle = DmappHandle("amo-custom", 0, 0)

        def _execute(_t):
            if inj.amo_executed(self.rank, seq):
                handle.result = inj.replay_result(self.rank, seq)
                return
            result = mutate()
            inj.record_amo(self.rank, seq, result)
            handle.result = result

        (inj_start, inj_end), complete, _att = self._deliver_reliably(
            tnode, _AMO_BYTES, _execute, "amo:custom", target_rank,
            is_amo=True)
        handle.local_complete = inj_end
        handle.remote_complete = complete
        net.counters.count_issue(self.rank, "amo:custom", 8)
        self._track(handle, target_rank, 8)
        admit = net.injection_admit(self.node, inj_end, _AMO_BYTES)
        cpu_free = max(self.env.now + int(round(net.params.o_inject)),
                       admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle

    def amo_stream_nbi(self, target_rank: int, cells: AtomicArray,
                       base_idx: int, op: str, operands,
                       fetch: bool = False, on_applied=None):
        seq = self._next_seq()
        if self.ft is None:
            return (yield from self._amo_stream_nbi_inner(
                target_rank, cells, base_idx, op, operands, fetch, seq,
                on_applied))
        while True:
            try:
                return (yield from self._amo_stream_nbi_inner(
                    target_rank, cells, base_idx, op, operands, fetch, seq,
                    on_applied))
            except NodeCrashedError as exc:
                yield from self._pause_or_raise(target_rank, exc)

    def _amo_stream_nbi_inner(self, target_rank: int, cells: AtomicArray,
                              base_idx: int, op: str, operands,
                              fetch: bool, seq: int, on_applied=None):
        ops = [int(v) for v in np.asarray(operands).ravel()]
        n = len(ops)
        if n == 0:
            raise SimulationError("empty AMO stream")
        net = self.network
        p = net.params
        inj = self.injector
        cfg = self.fault_config
        tnode = self._target_node(target_rank)
        self._quarantine_check(tnode, f"amo-stream:{op}", target_rank)
        nbytes = 8 * n
        handle = DmappHandle("amo-stream", 0, 0)

        def _execute(_t):
            if inj.amo_executed(self.rank, seq):
                cached = inj.replay_result(self.rank, seq)
                if fetch:
                    handle.result = cached
                return
            old = [cells.apply(base_idx + i, op, v)
                   for i, v in enumerate(ops)]
            arr = np.array(old, dtype=np.uint64) if fetch else None
            inj.record_amo(self.rank, seq, arr)
            if fetch:
                handle.result = arr
            if on_applied is not None:
                on_applied(old)

        attempts = 0
        resend_floor: int | None = None
        first_window: tuple[int, int] | None = None
        complete = self.env.now
        while True:
            attempts += 1
            if attempts > cfg.max_retries + 1:
                inj.stats.deadline_failures += 1
                ct = inj.crash_time(tnode)
                if ct is not None and self.env.now >= ct:
                    raise NodeCrashedError(
                        tnode, ct,
                        f"amo-stream from rank {self.rank} to rank "
                        f"{target_rank} undeliverable")
                raise DeadlineError(f"amo-stream:{op}", target_rank,
                                    attempts - 1, cfg.op_deadline_ns)
            data_fate = inj.packet_fate(self.node, tnode)
            inj_start, inj_end = net.occupy_injection(
                self.node, nbytes, earliest=resend_floor)
            if first_window is None:
                first_window = (inj_start, inj_end)
            if not data_fate.drop:
                wire = (p.wire_latency(net.hops(self.node, tnode))
                        + p.nic_latency + net._noise()
                        + data_fate.extra_delay_ns)
                head = inj_end + wire
                head = max(head, inj.stall_release(tnode, int(round(head))))
                chan = net.nic(tnode).amo_engine
                start = max(int(round(head)), chan.busy_until)
                chan.busy_until = start + int(round(p.amo_gap * n))
                chan.total_busy += int(round(p.amo_gap * n))
                delivery = chan.busy_until + int(round(p.amo_service))
                net.counters.count_service(tnode)
                if (not data_fate.corrupt
                        and not inj.node_crashed(tnode, delivery)):
                    ev = self.env.event(name="amo-stream")
                    ev.callbacks.append(lambda _e: _execute(self.env.now))
                    ev.succeed(delay=max(0, delivery - self.env.now))
                    ack_fate = inj.packet_fate(tnode, self.node)
                    if not ack_fate.lost:
                        complete = int(round(
                            delivery + self._wire_back(tnode)
                            + ack_fate.extra_delay_ns))
                        break
            inj.stats.retransmits += 1
            inj._trace("retransmit",
                       f"amo-stream rank{self.rank}->rank{target_rank} "
                       f"#{attempts}")
            backoff = inj.backoff_ns(attempts)
            if self.obs is not None:
                self.obs.on_retransmit(self.rank, f"amo-stream:{op}",
                                       target_rank, self.env.now, attempts,
                                       int(round(backoff)))
            resend_floor = int(round(inj_end + cfg.op_deadline_ns
                                     + backoff))

        inj_start, inj_end = first_window
        handle.local_complete = inj_end
        handle.remote_complete = complete
        net.counters.count_issue(self.rank, f"amo-stream:{op}", nbytes)
        self._track(handle, target_rank, nbytes)
        admit = net.injection_admit(self.node, inj_end, nbytes)
        cpu_free = max(self.env.now + int(round(p.o_inject)), admit)
        wait = cpu_free - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        return handle
