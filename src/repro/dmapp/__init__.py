"""DMAPP-like RDMA substrate (inter-node path).

Mirrors the surface of Cray's Distributed Memory Application API that the
paper builds on: registered-memory put/get in blocking, explicit-nonblocking
(handle) and implicit-nonblocking (bulk ``gsync`` completion) flavors, plus
8-byte atomic memory operations (AMOs) and a streaming AMO used by foMPI's
accelerated accumulates.
"""

from repro.dmapp.amo import AMO_OPS, amo_supported
from repro.dmapp.api import DmappEndpoint, DmappHandle

__all__ = ["DmappEndpoint", "DmappHandle", "AMO_OPS", "amo_supported"]
