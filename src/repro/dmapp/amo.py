"""The DMAPP atomic-operation set.

Gemini's NIC executes a limited set of 64-bit integer atomics.  foMPI maps
MPI accumulate operations onto these when possible ("many common integer
operations on 8 Byte data") and falls back to a lock-get-modify-put
software protocol otherwise (paper Section 2.4) -- e.g. for MPI_MIN in
Figure 6a, or for any floating-point reduction.
"""

from __future__ import annotations

__all__ = ["AMO_OPS", "amo_supported"]

#: Ops the simulated NIC AMO engine accelerates (subset of MPI_Op space).
AMO_OPS = frozenset({"add", "and", "or", "xor", "replace", "cas"})


def amo_supported(op: str, nbytes: int) -> bool:
    """True when (op, operand size) can run on the NIC AMO engine.

    DMAPP AMOs always operate on 8 bytes; anything else takes the
    software fallback path.
    """
    return op in AMO_OPS and nbytes == 8
