"""The paper's measured performance functions (Section 3, Blue Waters).

These constants are quoted verbatim from the text:

* P_put = 0.16 ns/B * s + 1.0 us ; P_get = 0.17 ns/B * s + 1.9 us  (3.1)
* injection: 416 ns inter-node, 80 ns intra-node                  (3.1.2)
* P_acc,sum = 28 ns * s + 2.4 us ; P_acc,min = 0.8 ns * s + 7.3 us;
  P_CAS = 2.4 us                                                   (3.1.3)
* P_fence = 2.9 us * log2(p)                                       (3.2)
* P_post = P_complete = 350 ns * k ; P_start = 0.7 us ; P_wait = 1.8 us
* P_lock,excl = 5.4 us ; P_lock,shrd = P_lock_all = 2.7 us ;
  P_unlock = P_unlock_all = 0.4 us ; P_flush = 76 ns ; P_sync = 17 ns

`paper_model(name)` returns the corresponding model object; the benchmark
harness overlays these curves on the simulated series so EXPERIMENTS.md can
report paper-vs-measured for every figure.
"""

from __future__ import annotations

from repro.models.perfmodel import (
    AffineBytesModel,
    ConstantModel,
    LinearNeighborsModel,
    LogProcsModel,
    PerfModel,
)

__all__ = ["PAPER_MODELS", "paper_model"]

US = 1000.0

PAPER_MODELS: dict[str, PerfModel] = {
    # communication (3.1)
    "put": AffineBytesModel("P_put", 1.0 * US, 0.16),
    "get": AffineBytesModel("P_get", 1.9 * US, 0.17),
    "inject_inter": ConstantModel("P_inject,inter", 416.0),
    "inject_intra": ConstantModel("P_inject,intra", 80.0),
    # atomics (3.1.3); s counts 8-byte elements for acc models
    "acc_sum": AffineBytesModel("P_acc,sum", 2.4 * US, 28.0),
    "acc_min": AffineBytesModel("P_acc,min", 7.3 * US, 0.8),
    "cas": ConstantModel("P_CAS", 2.4 * US),
    # synchronization (3.2)
    "fence": LogProcsModel("P_fence", 0.0, 2.9 * US),
    "post": LinearNeighborsModel("P_post", 0.0, 350.0),
    "complete": LinearNeighborsModel("P_complete", 0.0, 350.0),
    "start": ConstantModel("P_start", 0.7 * US),
    "wait": ConstantModel("P_wait", 1.8 * US),
    "lock_excl": ConstantModel("P_lock,excl", 5.4 * US),
    "lock_shrd": ConstantModel("P_lock,shrd", 2.7 * US),
    "lock_all": ConstantModel("P_lock_all", 2.7 * US),
    "unlock": ConstantModel("P_unlock", 0.4 * US),
    "unlock_all": ConstantModel("P_unlock_all", 0.4 * US),
    "flush": ConstantModel("P_flush", 76.0),
    "sync": ConstantModel("P_sync", 17.0),
}


def paper_model(name: str) -> PerfModel:
    """Look up one of the paper's models by short name."""
    try:
        return PAPER_MODELS[name]
    except KeyError:
        raise KeyError(
            f"no paper model {name!r}; known: {sorted(PAPER_MODELS)}"
        ) from None
