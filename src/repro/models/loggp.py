"""LogGP-style network model.

The paper cites LogP-family models as the algorithm-design counterpart of
its exact performance functions (Section 2, citing Karp et al.).  This is
the standard LogGP extension: latency L, overhead o, gap g, Gap-per-byte G,
plus process count P -- handy for sanity-checking collective algorithm
costs against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LogGPModel"]


@dataclass(frozen=True)
class LogGPModel:
    """All times in ns; G in ns/byte."""

    L: float = 500.0     # wire latency
    o: float = 416.0     # per-message CPU/NIC overhead
    g: float = 416.0     # minimum gap between messages
    G: float = 0.16      # per-byte gap
    P: int = 2

    def point_to_point(self, nbytes: int) -> float:
        """One-way time for an nbytes message."""
        return self.o + self.L + self.G * nbytes + self.o

    def message_rate(self, nbytes: int) -> float:
        """Messages/second at steady state."""
        per = max(self.g, self.G * nbytes)
        return 1e9 / per

    def dissemination_barrier(self) -> float:
        """ceil(log2 P) rounds of point-to-point."""
        rounds = math.ceil(math.log2(self.P)) if self.P > 1 else 0
        return rounds * self.point_to_point(0)

    def binomial_bcast(self, nbytes: int) -> float:
        rounds = math.ceil(math.log2(self.P)) if self.P > 1 else 0
        return rounds * self.point_to_point(nbytes)

    def allreduce(self, nbytes: int) -> float:
        """Recursive doubling: log2 P exchange rounds."""
        rounds = math.ceil(math.log2(self.P)) if self.P > 1 else 0
        return rounds * (self.point_to_point(nbytes))

    @classmethod
    def from_gemini(cls, gemini, P: int = 2, hops: int = 1) -> "LogGPModel":
        """Derive LogGP parameters from the machine model's parameters."""
        return cls(L=gemini.wire_latency(hops), o=gemini.o_inject,
                   g=gemini.o_inject, G=gemini.gap_per_byte, P=P)
