"""Cost-function model classes.

Each model declares its input domain the way Figure 1 does (``P:{s} -> T``,
``P:{p} -> T``, ``P:{k} -> T``, ``P:{} -> T``) and evaluates to nanoseconds.
Models compose additively, which is how the paper suggests using them, e.g.
deciding between Fence and PSCW synchronization by comparing

    P_fence  >  P_post + P_complete + P_start + P_wait

(Section 6's worked example, implemented in :func:`prefer_pscw`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "PerfModel",
    "ConstantModel",
    "AffineBytesModel",
    "LogProcsModel",
    "LinearNeighborsModel",
    "SumModel",
    "prefer_pscw",
]


class PerfModel:
    """Base class: a named cost function with a declared input domain.

    Subclasses define ``name`` (display label) and ``domain`` (tuple of
    required input variables, Figure-1 style).
    """

    domain: tuple = ()  # overridden per subclass; no default for ``name``

    def __call__(self, **inputs) -> float:
        """Evaluate to nanoseconds; unknown inputs are ignored, missing
        required ones raise."""
        for var in self.domain:
            if var not in inputs:
                raise ValueError(
                    f"model {self.name!r} needs input {var!r} "
                    f"(domain P:{{{','.join(self.domain)}}} -> T)")
        return self._eval(**inputs)

    def _eval(self, **inputs) -> float:
        raise NotImplementedError

    def __add__(self, other: "PerfModel") -> "SumModel":
        return SumModel([self, other])

    def domain_str(self) -> str:
        """Render the Figure-1-style signature."""
        return f"P:{{{','.join(self.domain)}}} -> T"


@dataclass
class ConstantModel(PerfModel):
    """P:{} -> T; e.g. P_CAS = 2.4 us, P_unlock = 0.4 us."""

    name: str
    constant_ns: float
    domain = ()

    def _eval(self, **inputs) -> float:
        return self.constant_ns


@dataclass
class AffineBytesModel(PerfModel):
    """P:{s} -> T as a + b*s; e.g. P_put = 1 us + 0.16 ns/B * s."""

    name: str
    base_ns: float
    per_byte_ns: float
    domain = ("s",)

    def _eval(self, *, s: float, **_ignored) -> float:
        return self.base_ns + self.per_byte_ns * s


@dataclass
class LogProcsModel(PerfModel):
    """P:{p} -> T as a + b*log2(p); e.g. P_fence = 2.9 us * log2 p."""

    name: str
    base_ns: float
    per_log2p_ns: float
    domain = ("p",)

    def _eval(self, *, p: float, **_ignored) -> float:
        return self.base_ns + self.per_log2p_ns * math.log2(max(2, p))


@dataclass
class LinearNeighborsModel(PerfModel):
    """P:{k} -> T as a + b*k; e.g. P_post = 350 ns * k."""

    name: str
    base_ns: float
    per_neighbor_ns: float
    domain = ("k",)

    def _eval(self, *, k: float, **_ignored) -> float:
        return self.base_ns + self.per_neighbor_ns * k


class SumModel(PerfModel):
    """Additive composition; domain is the union of parts."""

    def __init__(self, parts: list[PerfModel]) -> None:
        self.parts = []
        for part in parts:
            if isinstance(part, SumModel):
                self.parts.extend(part.parts)
            else:
                self.parts.append(part)
        self.name = "+".join(p.name for p in self.parts)
        dom: list[str] = []
        for part in self.parts:
            for v in part.domain:
                if v not in dom:
                    dom.append(v)
        self.domain = tuple(dom)

    def _eval(self, **inputs) -> float:
        return sum(p._eval(**inputs) for p in self.parts)


def prefer_pscw(models: dict, p: int, k: int) -> bool:
    """The paper's Section 6 decision rule: use PSCW instead of fence when
    P_fence > P_post + P_complete + P_start + P_wait for the given p, k."""
    fence = models["fence"](p=p)
    pscw = (models["post"](k=k) + models["complete"](k=k)
            + models["start"]() + models["wait"]())
    return fence > pscw
