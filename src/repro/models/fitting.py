"""Fit measured/simulated series back onto the paper's model forms.

The reproduction loop: run the simulated microbenchmark, fit the series to
the same functional form the paper fitted its measurements to, and compare
constants.  Fits are plain least squares (numpy.linalg.lstsq on the design
matrix), which is exactly how such microbenchmark models are produced.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["fit_affine", "fit_log_linear", "relative_error"]


def fit_affine(xs, ys) -> tuple[float, float]:
    """Fit y = a + b*x; returns (a, b)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2:
        raise ValueError("need at least two points for an affine fit")
    design = np.column_stack([np.ones_like(x), x])
    (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(a), float(b)


def fit_log_linear(ps, ys) -> tuple[float, float]:
    """Fit y = a + b*log2(p); returns (a, b)."""
    p = np.asarray(ps, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.any(p < 1):
        raise ValueError("process counts must be >= 1")
    design = np.column_stack([np.ones_like(p), np.log2(np.maximum(p, 2))])
    (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(a), float(b)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf-safe)."""
    if reference == 0:
        return math.inf if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)
