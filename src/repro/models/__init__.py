"""The paper's performance models as first-class objects.

Figure 1 gives each MPI-3 RMA operation an abstract cost-function input
domain (data size s, process count p, neighbor count k, operation o);
Section 3 fills in the measured parametrized forms for foMPI on Blue
Waters.  This package encodes both:

* :mod:`repro.models.perfmodel` -- model classes with declared input
  domains and evaluation,
* :mod:`repro.models.params_fompi` -- the paper's measured constants,
* :mod:`repro.models.loggp` -- a LogGP-style network model for algorithm
  design,
* :mod:`repro.models.fitting` -- least-squares fitting of (simulated or
  measured) series back onto the model forms, used by the test suite to
  verify the simulator is calibrated and by EXPERIMENTS.md to report
  fitted-vs-paper constants.
"""

from repro.models.fitting import fit_affine, fit_log_linear, relative_error
from repro.models.loggp import LogGPModel
from repro.models.params_fompi import PAPER_MODELS, paper_model
from repro.models.perfmodel import (
    AffineBytesModel,
    ConstantModel,
    LinearNeighborsModel,
    LogProcsModel,
    PerfModel,
)

__all__ = [
    "PerfModel",
    "AffineBytesModel",
    "ConstantModel",
    "LogProcsModel",
    "LinearNeighborsModel",
    "PAPER_MODELS",
    "paper_model",
    "LogGPModel",
    "fit_affine",
    "fit_log_linear",
    "relative_error",
]
