"""Series containers and plain-text reporting for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Series", "format_table", "format_series_table", "geomean"]


@dataclass
class Series:
    """One labeled curve: (x, y) points plus free-form metadata."""

    label: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def as_dict(self) -> dict:
        return {"label": self.label, "xs": list(self.xs), "ys": list(self.ys),
                **self.meta}


def geomean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width table (the harness prints these for every figure)."""
    cols = [headers] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(str(r[i])) for r in cols) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).rjust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(title: str, x_label: str,
                        series: list[Series]) -> str:
    """Merge several series on a shared x axis into one table."""
    xs = sorted({x for s in series for x in s.xs})
    headers = [x_label] + [s.label for s in series]
    # One x -> y dict per series (first occurrence wins, matching the old
    # list.index semantics) instead of an O(len(xs)) scan per cell.
    maps = []
    for s in series:
        m: dict = {}
        for x, y in zip(s.xs, s.ys):
            m.setdefault(x, y)
        maps.append(m)
    rows = [[x] + [m.get(x, "") for m in maps] for x in xs]
    return format_table(title, headers, rows)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
