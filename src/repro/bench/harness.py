"""Series containers and plain-text reporting for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Series", "format_table", "format_series_table", "geomean",
           "slowest_point", "trace_point"]


@dataclass
class Series:
    """One labeled curve: (x, y) points plus free-form metadata."""

    label: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def as_dict(self) -> dict:
        return {"label": self.label, "xs": list(self.xs), "ys": list(self.ys),
                **self.meta}


def slowest_point(series: list[Series]) -> tuple[str, object, float] | None:
    """The (label, x, y) of the largest y across all series.

    Figure drivers use this to pick which point of a sweep deserves a
    trace: y is a latency/time in every sweep where tracing the maximum
    is meaningful.  Returns None when the series hold no points.
    """
    best: tuple[str, object, float] | None = None
    for s in series:
        for x, y in zip(s.xs, s.ys):
            if best is None or y > best[2]:
                best = (s.label, x, y)
    return best


def trace_point(run_fn, path: str, *, label: str = "") -> str | None:
    """Run benchmark code under observability; export its slowest trace.

    ``run_fn`` is a zero-argument callable that executes one or more
    benchmark points (any driver function closure).  Every simulation it
    launches is captured via :func:`repro.obs.capture` -- no driver needs
    an ``obs`` parameter -- and the Chrome trace of the run with the
    longest simulated timeline (the sweep's slowest point) is written to
    ``path``.  Returns the path, or None when nothing was simulated
    (e.g. every point came from the run cache).
    """
    from repro.obs import capture, write_chrome_trace

    with capture() as sink:
        run_fn()
    if not sink:
        return None

    def extent(obs) -> int:
        return max((s.end_ns() for s in obs.spans.spans), default=0)

    return write_chrome_trace(path, max(sink, key=extent), label=label)


def geomean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width table (the harness prints these for every figure)."""
    cols = [headers] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(str(r[i])) for r in cols) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).rjust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(title: str, x_label: str,
                        series: list[Series]) -> str:
    """Merge several series on a shared x axis into one table."""
    xs = sorted({x for s in series for x in s.xs})
    headers = [x_label] + [s.label for s in series]
    # One x -> y dict per series (first occurrence wins, matching the old
    # list.index semantics) instead of an O(len(xs)) scan per cell.
    maps = []
    for s in series:
        m: dict = {}
        for x, y in zip(s.xs, s.ys):
            m.setdefault(x, y)
        maps.append(m)
    rows = [[x] + [m.get(x, "") for m in maps] for x in xs]
    return format_table(title, headers, rows)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
