"""Benchmark harness.

Reusable drivers that reproduce every figure of the paper's evaluation:

* :mod:`repro.bench.microbench` -- Figures 4 (latency), 5 (overlap +
  message rate), 6a (atomics),
* :mod:`repro.bench.syncbench`  -- Figures 6b (global synchronization),
  6c (PSCW), and the passive-target constants of Section 3.2,
* :mod:`repro.bench.appbench`   -- Figures 7 (hashtable, DSDE, FFT) and
  8 (MILC),
* :mod:`repro.bench.harness`    -- series containers and table/ASCII
  reporting shared by the pytest-benchmark targets in ``benchmarks/``,
* :mod:`repro.bench.pool`       -- parallel fan-out of independent figure
  points across CPU cores (deterministic, bit-identical to serial),
* :mod:`repro.bench.cache`      -- content-addressed on-disk cache of
  point results keyed by (version, driver source, config snapshot, seed).

Each driver runs a deterministic SPMD simulation and reports *simulated*
nanoseconds (or derived rates); pytest-benchmark wraps the drivers so the
usual ``pytest benchmarks/ --benchmark-only`` flow works, with the
reproduced series attached as ``extra_info``.
"""

from repro.bench.cache import RunCache, cached_run_spmd
from repro.bench.harness import (
    Series,
    format_series_table,
    format_table,
    geomean,
)
from repro.bench.pool import BenchPoint, run_points

__all__ = [
    "Series", "format_table", "format_series_table", "geomean",
    "BenchPoint", "run_points", "RunCache", "cached_run_spmd",
]
