"""Parallel benchmark fan-out.

Every figure of the paper is regenerated from many independent
``run_spmd`` points; each point builds a fresh
:class:`~repro.runtime.world.World`, so points are embarrassingly
parallel.  :func:`run_points` fans a list of :class:`BenchPoint`\\ s across
CPU cores with :class:`concurrent.futures.ProcessPoolExecutor` and merges
results **in input order**, so the output is bit-identical to running the
same points serially (each worker computes exactly what the serial loop
would have; simulation results depend only on the point's arguments and
the deterministic kernel).

Content-addressed caching (:mod:`repro.bench.cache`) is consulted before
any work is scheduled: cache hits never reach the executor, and misses are
written back after the sweep.

Robustness: point functions must be picklable (module-level); if the host
cannot spawn workers (sandboxes, ``workers=1``, pickling failure) the
sweep transparently degrades to the serial loop -- same results, just
slower.  ``REPRO_BENCH_WORKERS`` overrides the worker count globally.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.bench.cache import RunCache, cache_enabled

__all__ = ["BenchPoint", "PoolStats", "run_points", "last_run_stats",
           "pool_totals", "default_workers"]


@dataclass
class BenchPoint:
    """One independent benchmark point: ``fn(*args, **kwargs)``.

    ``fn`` must be picklable (a module-level function) for the parallel
    path; anything else still works through the serial fallback.
    """

    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class PoolStats:
    """What the last :func:`run_points` sweep did (for perf reports)."""

    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    parallel: bool = False
    wall_s: float = 0.0


_LAST_STATS = PoolStats()
_TOTALS = PoolStats()


def last_run_stats() -> PoolStats:
    """Stats of the most recent :func:`run_points` call."""
    return _LAST_STATS


def pool_totals() -> PoolStats:
    """Cumulative stats across every :func:`run_points` call in this
    process (``workers``/``parallel`` reflect the last sweep)."""
    return _TOTALS


def default_workers() -> int:
    """``REPRO_BENCH_WORKERS`` or the CPU count (min 1)."""
    override = os.environ.get("REPRO_BENCH_WORKERS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _call_point(fn: Callable, args: tuple, kwargs: dict) -> Any:
    """Worker-side entry (module-level so it pickles)."""
    return fn(*args, **kwargs)


def _run_parallel(points: Sequence[BenchPoint], indices: list[int],
                  results: list, workers: int) -> bool:
    """Execute ``points[i] for i in indices`` on a process pool; fill
    ``results`` at the same indices.  Returns False when the pool cannot
    be used at all (caller falls back to serial)."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(max_workers=workers) as ex:
            futures = {}
            for i in indices:
                pt = points[i]
                futures[i] = ex.submit(_call_point, pt.fn, tuple(pt.args),
                                       dict(pt.kwargs))
            # Collect in input order -- deterministic merge regardless of
            # completion order.
            for i in indices:
                results[i] = futures[i].result()
        return True
    except (BrokenProcessPool, OSError, ImportError, AttributeError,
            TypeError, pickle.PicklingError):
        return False


def run_points(points: Iterable[BenchPoint], *, workers: int | None = None,
               cache: RunCache | None | bool = True) -> list:
    """Run every point; return results in input order.

    Parameters
    ----------
    workers:
        Process count; ``None`` uses :func:`default_workers`.  ``1`` (or a
        single point) runs serially in-process.
    cache:
        ``True`` (default) uses a :class:`RunCache` at the default
        location when caching is enabled in the environment; ``False`` /
        ``None`` disables; an explicit :class:`RunCache` instance is used
        as given.
    """
    global _LAST_STATS
    pts = list(points)
    t0 = time.perf_counter()
    if cache is True:
        cache_obj = RunCache() if cache_enabled() else None
    elif cache is False or cache is None:
        cache_obj = None
    else:
        cache_obj = cache

    nworkers = default_workers() if workers is None else max(1, int(workers))
    results: list = [None] * len(pts)
    pending: list[int] = []
    keys: dict[int, str] = {}

    if cache_obj is not None:
        for i, pt in enumerate(pts):
            key = keys[i] = cache_obj.key_for(pt.fn, tuple(pt.args), pt.kwargs)
            hit = cache_obj.get(key)
            if hit is RunCache.MISS:
                pending.append(i)
            else:
                results[i] = hit
    else:
        pending = list(range(len(pts)))

    parallel = False
    if pending and nworkers > 1 and len(pending) > 1:
        parallel = _run_parallel(pts, pending, results, nworkers)
    if not parallel:
        for i in pending:
            results[i] = pts[i].run()

    if cache_obj is not None:
        for i in pending:
            cache_obj.put(keys[i], results[i])

    _LAST_STATS = PoolStats(
        points=len(pts),
        cache_hits=len(pts) - len(pending),
        executed=len(pending),
        workers=nworkers,
        parallel=parallel,
        wall_s=time.perf_counter() - t0,
    )
    _TOTALS.points += _LAST_STATS.points
    _TOTALS.cache_hits += _LAST_STATS.cache_hits
    _TOTALS.executed += _LAST_STATS.executed
    _TOTALS.workers = nworkers
    _TOTALS.parallel = _TOTALS.parallel or parallel
    _TOTALS.wall_s += _LAST_STATS.wall_s
    return results
