"""Plain-text reporting extras: ASCII log-log charts for figure series.

The paper's figures are log-log latency/rate plots; these helpers render a
recognizable terminal approximation so `python -m repro figures` gives a
visual sanity check without any plotting dependency.
"""

from __future__ import annotations

import math

from repro.bench.harness import Series

__all__ = ["ascii_chart"]

_MARKS = "ox+*#@%&"


def _log(v: float) -> float:
    return math.log10(max(v, 1e-12))


def ascii_chart(title: str, series: list[Series], *, width: int = 64,
                height: int = 16, x_label: str = "x",
                y_label: str = "y") -> str:
    """Render series as a log-log ASCII scatter chart."""
    pts = [(x, y, i) for i, s in enumerate(series)
           for x, y in zip(s.xs, s.ys)
           if isinstance(y, (int, float)) and y > 0]
    if not pts:
        return f"{title}\n(no data)"
    xs = [_log(p[0]) for p in pts]
    ys = [_log(p[1]) for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (x, y, i) in pts:
        cx = int((_log(x) - x0) / xr * (width - 1))
        cy = int((_log(y) - y0) / yr * (height - 1))
        grid[height - 1 - cy][cx] = _MARKS[i % len(_MARKS)]
    lines = [title, "=" * len(title)]
    top = f"{10 ** y1:.3g}"
    bot = f"{10 ** y0:.3g}"
    pad = max(len(top), len(bot))
    for r, row in enumerate(grid):
        label = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}|")
    lines.append(" " * pad + " +" + "-" * width + "+")
    lines.append(" " * pad + f"  {10 ** x0:.3g}".ljust(width // 2)
                 + f"{10 ** x1:.3g}".rjust(width // 2)
                 + f"   ({x_label}, log-log, {y_label})")
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={s.label}"
                       for i, s in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)
