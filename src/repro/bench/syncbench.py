"""Synchronization benchmarks: Figures 6b (global sync), 6c (PSCW ring),
and the Section 3.2 passive-target constants.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.rma.cray22 import win_allocate_cray22
from repro.rma.enums import LockType
from repro.runtime.job import run_spmd

__all__ = ["global_sync_latency", "pscw_ring_latency", "lock_constants"]


def _machine(ranks_per_node: int = 1) -> MachineConfig:
    return MachineConfig(ranks_per_node=ranks_per_node)


# ---------------------------------------------------------------------------
# Figure 6b: global synchronization vs p
# ---------------------------------------------------------------------------
def global_sync_latency(transport: str, p: int, *, reps: int = 3,
                        ranks_per_node: int = 1) -> float:
    """Per-call global synchronization latency (ns) on p ranks.

    Transports: 'fompi' (Win_fence), 'upc' (upc_barrier), 'caf'
    (sync all), 'cray22' (Cray MPI-2.2 Win_fence).
    """
    if transport == "fompi":
        def program(ctx):
            win = yield from ctx.rma.win_allocate(64)
            yield from win.fence()
            t0 = ctx.now
            for _ in range(reps):
                yield from win.fence()
            return (ctx.now - t0) / reps
    elif transport == "upc":
        def program(ctx):
            yield from ctx.upc.barrier()
            t0 = ctx.now
            for _ in range(reps):
                yield from ctx.upc.barrier()
            return (ctx.now - t0) / reps
    elif transport == "caf":
        def program(ctx):
            yield from ctx.caf.sync_all()
            t0 = ctx.now
            for _ in range(reps):
                yield from ctx.caf.sync_all()
            return (ctx.now - t0) / reps
    elif transport == "cray22":
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, 64)
            yield from win.fence()
            t0 = ctx.now
            for _ in range(reps):
                yield from win.fence()
            return (ctx.now - t0) / reps
    else:
        raise ValueError(f"unknown transport {transport!r}")

    res = run_spmd(program, p, machine=_machine(ranks_per_node))
    return float(max(res.returns))


# ---------------------------------------------------------------------------
# Figure 6c: PSCW on a ring (k = 2)
# ---------------------------------------------------------------------------
def pscw_ring_latency(transport: str, p: int, *, reps: int = 3,
                      ranks_per_node: int = 32,
                      noise_ns: float = 0.0) -> float:
    """Per-epoch PSCW latency (ns) on a ring (each rank has 2 neighbors).

    An ideal implementation is constant in p (foMPI); Cray's grows.
    The default 32 ranks/node placement reproduces the intra-node ->
    inter-node knee of the paper's figure.
    """
    from repro.machine.params import GeminiParams

    gemini = GeminiParams().with_noise(noise_ns) if noise_ns else None

    if transport == "fompi":
        def program(ctx):
            win = yield from ctx.rma.win_allocate(64)
            yield from ctx.coll.barrier()
            left = (ctx.rank - 1) % ctx.nranks
            right = (ctx.rank + 1) % ctx.nranks
            group = [left, right] if ctx.nranks > 2 else [1 - ctx.rank]
            t0 = ctx.now
            for _ in range(reps):
                yield from win.post(group)
                yield from win.start(group)
                yield from win.complete()
                yield from win.wait()
            return (ctx.now - t0) / reps
    elif transport == "cray22":
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, 64)
            yield from ctx.coll.barrier()
            left = (ctx.rank - 1) % ctx.nranks
            right = (ctx.rank + 1) % ctx.nranks
            group = [left, right] if ctx.nranks > 2 else [1 - ctx.rank]
            t0 = ctx.now
            for _ in range(reps):
                yield from win.post(group)
                yield from win.start(group)
                yield from win.complete()
                yield from win.wait()
            return (ctx.now - t0) / reps
    else:
        raise ValueError(f"unknown transport {transport!r}")

    kwargs = {"machine": _machine(ranks_per_node)}
    if gemini is not None:
        kwargs["gemini"] = gemini
    res = run_spmd(program, p, **kwargs)
    return float(max(res.returns))


# ---------------------------------------------------------------------------
# Section 3.2: passive-target constants
# ---------------------------------------------------------------------------
def lock_constants() -> dict[str, float]:
    """Measure P_lock_excl/shrd/lock_all, P_unlock(+all), P_flush, P_sync.

    Uses three ranks so that the *origin* (rank 1) is neither the lock
    master (rank 0, which holds the global lock word) nor the target
    (rank 2) -- the configuration the paper's constants describe: every
    lock AMO is remote.  Fire-and-forget unlock AMOs are allowed to drain
    (a settle delay) before timing flush/sync so P_flush reflects the
    nothing-outstanding fast path, as in the paper.
    """
    out: dict[str, float] = {}
    settle = 20_000

    def program(ctx):
        win = yield from ctx.rma.win_allocate(64)
        yield from ctx.coll.barrier()
        if ctx.rank == 1:
            t0 = ctx.now
            yield from win.lock(2, LockType.EXCLUSIVE)
            out["lock_excl"] = ctx.now - t0
            t0 = ctx.now
            yield from win.unlock(2)
            # last exclusive unlock: local release + global release
            out["unlock_excl_last"] = ctx.now - t0
            yield from ctx.compute(settle)

            t0 = ctx.now
            yield from win.lock(2, LockType.SHARED)
            out["lock_shrd"] = ctx.now - t0
            t0 = ctx.now
            yield from win.unlock(2)
            out["unlock"] = ctx.now - t0  # one fire-and-forget AMO
            yield from ctx.compute(settle)

            t0 = ctx.now
            yield from win.lock_all()
            out["lock_all"] = ctx.now - t0
            yield from ctx.compute(settle)
            t0 = ctx.now
            yield from win.flush(2)
            out["flush"] = ctx.now - t0
            t0 = ctx.now
            yield from win.sync()
            out["sync"] = ctx.now - t0
            t0 = ctx.now
            yield from win.unlock_all()
            out["unlock_all"] = ctx.now - t0
        yield from ctx.coll.barrier()

    run_spmd(program, 3, machine=_machine(1))
    return out
