"""Application benchmark drivers: Figures 7a/7b/7c and 8.

Scale policy (see DESIGN.md): the drivers execute the real protocols in
simulation up to O(100) ranks; the figure harnesses in ``benchmarks/``
extend the curves with the calibrated analytic models where the paper's
axes go far beyond that, and label the mode.
"""

from __future__ import annotations

from repro.apps.dsde import dsde_program
from repro.apps.fft import FftSpec, fft_program
from repro.apps.hashtable import (
    HashTableLayout,
    mpi1_insert_program,
    rma_insert_program,
    upc_insert_program,
)
from repro.apps.milc import MilcSpec, milc_program
from repro.config import MachineConfig
from repro.runtime.job import run_spmd

__all__ = ["hashtable_rate", "dsde_time_us", "fft_gflops", "milc_time_s",
           "kv_serve_stats", "HT_PROGRAMS"]

HT_PROGRAMS = {
    "fompi": rma_insert_program,
    "upc": upc_insert_program,
    "mpi1": mpi1_insert_program,
}


def _machine(ranks_per_node: int) -> MachineConfig:
    return MachineConfig(ranks_per_node=ranks_per_node)


def hashtable_rate(variant: str, p: int, inserts_per_rank: int = 64, *,
                   ranks_per_node: int = 32,
                   table_slots: int | None = None) -> float:
    """Aggregate inserts/second (Figure 7a's y axis)."""
    from repro.apps.hashtable.common import DEFAULT_TABLE_SLOTS

    layout = HashTableLayout.default(
        inserts_per_rank,
        table_slots=DEFAULT_TABLE_SLOTS if table_slots is None
        else table_slots)
    res = run_spmd(HT_PROGRAMS[variant], p, layout, inserts_per_rank,
                   machine=_machine(ranks_per_node))
    worst = max(res.returns)
    return p * inserts_per_rank / (worst / 1e9)


def dsde_time_us(protocol: str, p: int, k: int = 6, *,
                 ranks_per_node: int = 32) -> float:
    """Time of one complete dynamic sparse data exchange (Figure 7b)."""
    res = run_spmd(dsde_program, p, protocol, k,
                   machine=_machine(ranks_per_node))
    return max(t for t, _ in res.returns) / 1e3


def fft_gflops(variant: str, p: int, spec: FftSpec | None = None, *,
               ranks_per_node: int = 32) -> float:
    """3-D FFT performance (Figure 7c's y axis)."""
    spec = spec or FftSpec(nx=32, ny=32, nz=32, flop_rate=1.2e10, chunks=4)
    res = run_spmd(fft_program, p, spec, variant,
                   machine=_machine(ranks_per_node))
    return min(g for _t, g in res.returns)


def kv_serve_stats(variant: str, p: int, total_requests: int = 4000, *,
                   nkeys: int = 512, theta: float = 0.99,
                   rate_hz: float = 2e5, seed: int | None = None,
                   ranks_per_node: int = 8) -> dict:
    """One open-loop KV serving run (``repro.serve``): throughput and
    exact tail latencies for the RMA store or the MPI-1 comparator.

    Returns a plain dict (picklable, cacheable by the bench run cache):
    ``{"throughput_rps", "p50_ns", "p99_ns", "p99_9_ns", "sim_time_ns"}``.
    """
    from repro.config import ObsConfig, SimConfig
    from repro.serve.driver import run_kv_serve
    from repro.serve.slo import build_report
    from repro.serve.zipf import ServeSpec

    spec = ServeSpec(nkeys=nkeys, theta=theta, total_requests=total_requests,
                     rate_hz=rate_hz,
                     seed=SimConfig.seed if seed is None else seed)
    if variant == "rma":
        res = run_kv_serve(p, spec, ranks_per_node=ranks_per_node)
    elif variant == "mpi1":
        from repro.apps.kvstore.mpi1_kv import mpi1_kv_program

        res = run_spmd(mpi1_kv_program, p, spec,
                       machine=_machine(ranks_per_node),
                       sim=SimConfig(seed=spec.seed),
                       obs=ObsConfig(enabled=True))
    else:
        raise ValueError(f"unknown kv serve variant {variant!r}")
    report = build_report(res, spec, p, variant=variant)
    lat = report["latency_ns"]
    return {"throughput_rps": report["throughput_rps"],
            "p50_ns": lat["p50"], "p99_ns": lat["p99"],
            "p99_9_ns": lat["p99_9"], "sim_time_ns": report["sim_time_ns"]}


def milc_time_s(variant: str, p: int, spec: MilcSpec | None = None, *,
                ranks_per_node: int = 32) -> float:
    """MILC proxy completion time in simulated seconds (Figure 8's y axis,
    scaled: the paper runs many trajectories; we run one fixed-iteration
    CG solve and weak-scale it)."""
    spec = spec or MilcSpec(maxiter=25, tol=0.0)
    res = run_spmd(milc_program, p, spec, variant,
                   machine=_machine(ranks_per_node))
    return max(e for e, *_ in res.returns) / 1e9
