"""Application benchmark drivers: Figures 7a/7b/7c and 8.

Scale policy (see DESIGN.md): the drivers execute the real protocols in
simulation up to O(100) ranks; the figure harnesses in ``benchmarks/``
extend the curves with the calibrated analytic models where the paper's
axes go far beyond that, and label the mode.
"""

from __future__ import annotations

from repro.apps.dsde import dsde_program
from repro.apps.fft import FftSpec, fft_program
from repro.apps.hashtable import (
    HashTableLayout,
    mpi1_insert_program,
    rma_insert_program,
    upc_insert_program,
)
from repro.apps.milc import MilcSpec, milc_program
from repro.config import MachineConfig
from repro.runtime.job import run_spmd

__all__ = ["hashtable_rate", "dsde_time_us", "fft_gflops", "milc_time_s",
           "HT_PROGRAMS"]

HT_PROGRAMS = {
    "fompi": rma_insert_program,
    "upc": upc_insert_program,
    "mpi1": mpi1_insert_program,
}


def _machine(ranks_per_node: int) -> MachineConfig:
    return MachineConfig(ranks_per_node=ranks_per_node)


def hashtable_rate(variant: str, p: int, inserts_per_rank: int = 64, *,
                   ranks_per_node: int = 32,
                   table_slots: int = 64) -> float:
    """Aggregate inserts/second (Figure 7a's y axis)."""
    layout = HashTableLayout(table_slots=table_slots,
                             heap_cells=max(64, 4 * inserts_per_rank))
    res = run_spmd(HT_PROGRAMS[variant], p, layout, inserts_per_rank,
                   machine=_machine(ranks_per_node))
    worst = max(res.returns)
    return p * inserts_per_rank / (worst / 1e9)


def dsde_time_us(protocol: str, p: int, k: int = 6, *,
                 ranks_per_node: int = 32) -> float:
    """Time of one complete dynamic sparse data exchange (Figure 7b)."""
    res = run_spmd(dsde_program, p, protocol, k,
                   machine=_machine(ranks_per_node))
    return max(t for t, _ in res.returns) / 1e3


def fft_gflops(variant: str, p: int, spec: FftSpec | None = None, *,
               ranks_per_node: int = 32) -> float:
    """3-D FFT performance (Figure 7c's y axis)."""
    spec = spec or FftSpec(nx=32, ny=32, nz=32, flop_rate=1.2e10, chunks=4)
    res = run_spmd(fft_program, p, spec, variant,
                   machine=_machine(ranks_per_node))
    return min(g for _t, g in res.returns)


def milc_time_s(variant: str, p: int, spec: MilcSpec | None = None, *,
                ranks_per_node: int = 32) -> float:
    """MILC proxy completion time in simulated seconds (Figure 8's y axis,
    scaled: the paper runs many trajectories; we run one fixed-iteration
    CG solve and weak-scale it)."""
    spec = spec or MilcSpec(maxiter=25, tol=0.0)
    res = run_spmd(milc_program, p, spec, variant,
                   machine=_machine(ranks_per_node))
    return max(e for e, *_ in res.returns) / 1e9
