"""Microbenchmark drivers: Figures 4 (latency), 5 (overlap, message rate)
and 6a (atomics).

Methodology mirrors the paper's (Section 3): each driver times the
operation across repetitions on a 2-rank job and reports the per-operation
time in nanoseconds of *simulated* time.  All RMA latencies include remote
completion (put+flush) but no synchronization, exactly as the paper
defines them; MPI-1 latency is the classic ping-pong half round trip.
"""

from __future__ import annotations

import numpy as np

from repro.config import MachineConfig
from repro.runtime.job import run_spmd
from repro.rma.cray22 import win_allocate_cray22
from repro.rma.enums import Op

__all__ = [
    "INTER_2", "INTRA_2",
    "put_latency", "get_latency",
    "message_rate", "overlap_fraction",
    "atomic_latency",
    "LATENCY_TRANSPORTS",
]

INTER_2 = MachineConfig(ranks_per_node=1)    # 2 ranks on 2 nodes
INTRA_2 = MachineConfig(ranks_per_node=32)   # 2 ranks on 1 node

LATENCY_TRANSPORTS = ("fompi", "upc", "caf", "mpi1", "cray22")


def _machine(intra: bool) -> MachineConfig:
    return INTRA_2 if intra else INTER_2


# ---------------------------------------------------------------------------
# latency (Figure 4)
# ---------------------------------------------------------------------------
def put_latency(transport: str, nbytes: int, *, intra: bool = False,
                reps: int = 8) -> float:
    """Per-put latency (ns) including remote completion."""
    return _latency(transport, nbytes, "put", intra, reps)


def get_latency(transport: str, nbytes: int, *, intra: bool = False,
                reps: int = 8) -> float:
    """Per-get latency (ns)."""
    return _latency(transport, nbytes, "get", intra, reps)


def _latency(transport: str, nbytes: int, direction: str, intra: bool,
             reps: int) -> float:
    size = max(nbytes, 8)
    data = np.ones(nbytes, dtype=np.uint8)

    if transport == "fompi":
        def program(ctx):
            win = yield from ctx.rma.win_allocate(size)
            yield from win.lock_all()
            yield from ctx.coll.barrier()
            dt = None
            if ctx.rank == 0:
                out = np.zeros(nbytes, np.uint8)
                t0 = ctx.now
                for _ in range(reps):
                    if direction == "put":
                        yield from win.put(data, 1, 0)
                    else:
                        yield from win.get(out, 1, 0)
                    yield from win.flush(1)
                dt = (ctx.now - t0) / reps
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return dt
    elif transport == "upc":
        def program(ctx):
            arr = yield from ctx.upc.all_alloc(size)
            yield from ctx.upc.barrier()
            dt = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(reps):
                    if direction == "put":
                        yield from ctx.upc.memput(arr, 1, 0, data)
                        yield from ctx.upc.fence()
                    else:
                        yield from ctx.upc.memget(arr, 1, 0, nbytes)
                dt = (ctx.now - t0) / reps
            yield from ctx.upc.barrier()
            return dt
    elif transport == "caf":
        def program(ctx):
            co = yield from ctx.caf.coarray_alloc(size)
            yield from ctx.caf.sync_all()
            dt = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(reps):
                    if direction == "put":
                        yield from ctx.caf.assign(co, 1, 0, data)
                        yield from ctx.caf.sync_memory()
                    else:
                        yield from ctx.caf.read(co, 1, 0, nbytes)
                dt = (ctx.now - t0) / reps
            yield from ctx.caf.sync_all()
            return dt
    elif transport == "cray22":
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, size)
            yield from ctx.coll.barrier()
            dt = None
            if ctx.rank == 0:
                out = np.zeros(nbytes, np.uint8)
                t0 = ctx.now
                for _ in range(reps):
                    if direction == "put":
                        yield from win.put(data, 1, 0)
                        yield from win.flush(1)
                    else:
                        yield from win.get(out, 1, 0)
                dt = (ctx.now - t0) / reps
            yield from ctx.coll.barrier()
            return dt
    elif transport == "mpi1":
        # Ping-pong half round trip: send/recv implies remote synchronization.
        def program(ctx):
            yield from ctx.coll.barrier()
            dt = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(reps):
                    yield from ctx.mpi.send(1, data)
                    yield from ctx.mpi.recv(1)
                dt = (ctx.now - t0) / (2 * reps)
            else:
                for _ in range(reps):
                    got = yield from ctx.mpi.recv(0)
                    yield from ctx.mpi.send(0, got)
            yield from ctx.coll.barrier()
            return dt
    else:
        raise ValueError(f"unknown transport {transport!r}")

    res = run_spmd(program, 2, machine=_machine(intra))
    return float(res.returns[0])


# ---------------------------------------------------------------------------
# message rate (Figures 5b/5c)
# ---------------------------------------------------------------------------
def message_rate(transport: str, nbytes: int, *, intra: bool = False,
                 nmsgs: int = 1000) -> float:
    """Sustained message injection rate in messages/second (simulated):
    nmsgs operations started without synchronization, one completion."""
    data = np.ones(nbytes, dtype=np.uint8)
    size = max(nbytes, 8) * 2

    if transport == "fompi":
        def program(ctx):
            win = yield from ctx.rma.win_allocate(size)
            yield from win.lock_all()
            yield from ctx.coll.barrier()
            rate = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(nmsgs):
                    yield from win.put(data, 1, 0)
                rate = nmsgs / max(1e-9, (ctx.now - t0) / 1e9)
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return rate
    elif transport == "upc":
        def program(ctx):
            arr = yield from ctx.upc.all_alloc(size)
            yield from ctx.upc.barrier()
            rate = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(nmsgs):
                    yield from ctx.upc.memput_nb(arr, 1, 0, data)
                rate = nmsgs / max(1e-9, (ctx.now - t0) / 1e9)
            yield from ctx.upc.barrier()
            return rate
    elif transport == "caf":
        def program(ctx):
            co = yield from ctx.caf.coarray_alloc(size)
            yield from ctx.caf.sync_all()
            rate = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(nmsgs):
                    yield from ctx.caf.assign_nb(co, 1, 0, data)
                rate = nmsgs / max(1e-9, (ctx.now - t0) / 1e9)
            yield from ctx.caf.sync_all()
            return rate
    elif transport == "cray22":
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, size)
            yield from ctx.coll.barrier()
            rate = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(nmsgs):
                    yield from win.put(data, 1, 0)
                rate = nmsgs / max(1e-9, (ctx.now - t0) / 1e9)
            yield from ctx.coll.barrier()
            return rate
    elif transport == "mpi1":
        def program(ctx):
            yield from ctx.coll.barrier()
            rate = None
            if ctx.rank == 0:
                reqs = []
                t0 = ctx.now
                for i in range(nmsgs):
                    r = yield from ctx.mpi.isend(1, data, tag=i)
                    reqs.append(r)
                rate = nmsgs / max(1e-9, (ctx.now - t0) / 1e9)
                for r in reqs:
                    yield from r.wait()
            else:
                for i in range(nmsgs):
                    yield from ctx.mpi.recv(0, tag=i)
            yield from ctx.coll.barrier()
            return rate
    else:
        raise ValueError(f"unknown transport {transport!r}")

    res = run_spmd(program, 2, machine=_machine(intra))
    return float(res.returns[0])


# ---------------------------------------------------------------------------
# overlap (Figure 5a)
# ---------------------------------------------------------------------------
def overlap_fraction(transport: str, nbytes: int, *, intra: bool = False) -> float:
    """Fraction of communication time hideable behind computation.

    The paper's method: calibrate a compute loop slightly longer than the
    communication latency, interleave it between start and completion, and
    compute overlap from the three times.
    """
    comm = put_latency(transport, nbytes, intra=intra, reps=4)
    comp = comm * 1.15
    data = np.ones(nbytes, dtype=np.uint8)
    size = max(nbytes, 8)

    if transport == "fompi":
        def program(ctx):
            win = yield from ctx.rma.win_allocate(size)
            yield from win.lock_all()
            yield from ctx.coll.barrier()
            total = None
            if ctx.rank == 0:
                t0 = ctx.now
                yield from win.put(data, 1, 0)
                yield from ctx.compute(comp)
                yield from win.flush(1)
                total = ctx.now - t0
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return total
    elif transport == "upc":
        def program(ctx):
            arr = yield from ctx.upc.all_alloc(size)
            yield from ctx.upc.barrier()
            total = None
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.upc.memput_nb(arr, 1, 0, data)
                yield from ctx.compute(comp)
                yield from ctx.upc.fence()
                total = ctx.now - t0
            yield from ctx.upc.barrier()
            return total
    elif transport == "cray22":
        def program(ctx):
            win = yield from win_allocate_cray22(ctx, size)
            yield from ctx.coll.barrier()
            total = None
            if ctx.rank == 0:
                t0 = ctx.now
                yield from win.put(data, 1, 0)
                yield from ctx.compute(comp)
                yield from win.flush(1)
                total = ctx.now - t0
            yield from ctx.coll.barrier()
            return total
    else:
        raise ValueError(f"overlap benchmark defined for fompi/upc/cray22")

    res = run_spmd(program, 2, machine=_machine(intra))
    total = float(res.returns[0])
    overlapped = comm + comp - total
    return max(0.0, min(1.0, overlapped / comm))


# ---------------------------------------------------------------------------
# atomics (Figure 6a)
# ---------------------------------------------------------------------------
def atomic_latency(kind: str, nelems: int, *, reps: int = 4) -> float:
    """Latency (ns) of an atomic accumulate of ``nelems`` 8-byte elements.

    Kinds: 'fompi_sum' (NIC stream), 'fompi_min' (software fallback),
    'fompi_cas', 'upc_aadd', 'upc_cas'.
    """
    if kind.startswith("fompi"):
        op = {"fompi_sum": Op.SUM, "fompi_min": Op.MIN}.get(kind)

        def program(ctx):
            win = yield from ctx.rma.win_allocate(max(64, nelems * 8),
                                                  disp_unit=8)
            yield from win.lock_all()
            yield from ctx.coll.barrier()
            dt = None
            if ctx.rank == 0:
                vals = np.ones(nelems, dtype=np.int64)
                t0 = ctx.now
                for _ in range(reps):
                    if kind == "fompi_cas":
                        yield from win.compare_and_swap(
                            np.int64(0), np.int64(1), 1, 0)
                    else:
                        yield from win.accumulate(vals, 1, 0, op)
                        yield from win.flush(1)
                dt = (ctx.now - t0) / reps
            yield from win.unlock_all()
            yield from ctx.coll.barrier()
            return dt
    elif kind.startswith("upc"):
        def program(ctx):
            arr = yield from ctx.upc.all_alloc(max(64, nelems * 8))
            yield from ctx.upc.barrier()
            dt = None
            if ctx.rank == 0:
                t0 = ctx.now
                for _ in range(reps):
                    for e in range(nelems):
                        if kind == "upc_aadd":
                            yield from ctx.upc.aadd(arr, 1, e, 1)
                        else:
                            yield from ctx.upc.cas(arr, 1, e, 0, 1)
                dt = (ctx.now - t0) / reps
            yield from ctx.upc.barrier()
            return dt
    else:
        raise ValueError(f"unknown atomic kind {kind!r}")

    res = run_spmd(program, 2, machine=INTER_2)
    return float(res.returns[0])
