"""Perf-regression gate over ``BENCH_simperf.json``.

CI runs the kernel microbenchmarks (producing a fresh report) and then
diffs it against the committed ``benchmarks/baseline_simperf.json``:
kernel events/sec and per-figure wall times must stay within
``max_drop`` (default 25%) of the baseline.

Raw throughput numbers do not transfer between machines, so the baseline
embeds a *calibration rate*: the speed of a fixed pure-Python loop on
the machine that recorded it.  The gate measures the same loop on the
current machine and scales every baseline expectation by the ratio --
a runner that is uniformly 2x slower passes, while a change that makes
the simulator 2x slower relative to plain Python fails.  The comparison
logic is pure (report dicts in, failure strings out) so the gate itself
is unit-tested, including the injected-slowdown case.
"""

from __future__ import annotations

import argparse
import json
import time

__all__ = ["calibration_rate", "compare_reports", "main"]

# Fixed-work interpreter loop: integer arithmetic + attribute-free
# bytecode, the same regime the DES kernel hot loop lives in.
_CALIBRATION_ITERS = 2_000_000
_CALIBRATION_BEST_OF = 3

# Figures whose baseline wall time is below this are skipped: their
# runtime is dominated by fixed overhead and noise, not simulation.
MIN_FIGURE_WALL_S = 1.0


def _calibration_work(iters: int) -> float:
    t0 = time.perf_counter()
    acc = 0
    for i in range(iters):
        acc += (i * i) % 97
    elapsed = time.perf_counter() - t0
    assert acc != 0
    return iters / elapsed


def calibration_rate(iters: int = _CALIBRATION_ITERS,
                     best_of: int = _CALIBRATION_BEST_OF) -> float:
    """Iterations/second of the fixed calibration loop (best of N)."""
    return max(_calibration_work(iters) for _ in range(best_of))


def _kernel_rates(report: dict) -> dict[str, float]:
    """Flatten a report's kernel section to {metric: events/sec}."""
    rates: dict[str, float] = {}
    kernel = report.get("kernel") or {}
    for w in kernel.get("workloads") or []:
        name, rate = w.get("workload"), w.get("fast_events_per_sec")
        if name is not None and rate is not None:
            rates[f"kernel.{name}"] = float(rate)
    full = kernel.get("full_stack") or {}
    if full.get("events_per_sec") is not None:
        rates["kernel.full_stack"] = float(full["events_per_sec"])
    return rates


def _scale_rates(report: dict) -> dict[str, float]:
    """Flatten a report's scale section to {metric: ranks/sec}."""
    section = report.get("scale") or {}
    rps = section.get("ranks_per_sec") or {}
    return {f"scale.{label}": float(rate) for label, rate in rps.items()
            if rate is not None}


def _serve_rates(report: dict) -> dict[str, float]:
    """Flatten a report's serve section to {metric: requests/sec}.

    Simulated throughput, so a regression here means the *modeled*
    serving pipeline got slower (protocol change), not the host.
    """
    section = report.get("serve") or {}
    rps = section.get("throughput_rps") or {}
    return {f"serve.{label}": float(rate) for label, rate in rps.items()
            if rate is not None}


def compare_reports(baseline: dict, current: dict, *,
                    current_calibration: float | None = None,
                    max_drop: float = 0.25,
                    min_figure_wall_s: float = MIN_FIGURE_WALL_S,
                    ) -> tuple[list[str], list[str]]:
    """Diff ``current`` against ``baseline``; returns (failures, lines).

    ``failures`` is empty when the gate passes; ``lines`` is the full
    human-readable comparison (every checked metric, pass or fail).
    ``current_calibration`` is the calibration-loop rate measured on the
    machine that produced ``current``; None disables machine scaling
    (ratio 1.0).
    """
    base_cal = baseline.get("calibration_rate")
    if current_calibration is not None and base_cal:
        scale = current_calibration / float(base_cal)
    else:
        scale = 1.0

    failures: list[str] = []
    lines = [f"machine scale: {scale:.3f} "
             f"(calibration {current_calibration or 'n/a'} vs "
             f"baseline {base_cal or 'n/a'})"]

    # Rate sections: kernel events/sec and hybrid-scale ranks/sec share
    # the higher-is-better machine-scaled floor logic; simulated rates
    # (KV serving req/s) are machine-independent, so their floor is NOT
    # scaled.  A section absent from the *baseline* warns and passes
    # (older baselines predate the section); a metric absent from the
    # *current* report fails only for the kernel section, which every
    # perf run produces -- scale/serve sweeps are optional in a
    # kernel-only session.
    for section, extract, unit, required, scaled in (
            ("kernel", _kernel_rates, "ev/s", True, True),
            ("scale", _scale_rates, "ranks/s", False, True),
            ("serve", _serve_rates, "req/s", False, False)):
        if section not in baseline:
            lines.append(f"skip {section}: not in baseline")
            continue
        base_rates = extract(baseline)
        cur_rates = extract(current)
        for name in sorted(base_rates):
            cur = cur_rates.get(name)
            if cur is None:
                if required:
                    failures.append(f"{name}: missing from current report")
                    lines.append(f"FAIL {name}: missing from current report")
                else:
                    lines.append(f"skip {name}: not in current report")
                continue
            floor = base_rates[name] * (scale if scaled else 1.0) \
                * (1.0 - max_drop)
            ok = cur >= floor
            verdict = "ok  " if ok else "FAIL"
            lines.append(
                f"{verdict} {name}: {cur:,.0f} {unit} "
                f"(floor {floor:,.0f}, baseline {base_rates[name]:,.0f})")
            if not ok:
                failures.append(
                    f"{name}: {cur:,.0f} {unit} below floor {floor:,.0f} "
                    f"(>{max_drop:.0%} drop vs scaled baseline)")

    base_walls = baseline.get("figures", {}).get("wall_s", {})
    cur_walls = current.get("figures", {}).get("wall_s", {})
    for name in sorted(base_walls):
        base_wall = float(base_walls[name])
        if base_wall < min_figure_wall_s:
            continue
        cur = cur_walls.get(name)
        if cur is None:
            # Figure sweeps are optional in a kernel-only CI run.
            lines.append(f"skip figures.{name}: not in current report")
            continue
        # A max_drop throughput loss inflates wall time by 1/(1-max_drop).
        ceiling = (base_wall / scale) / (1.0 - max_drop)
        ok = float(cur) <= ceiling
        verdict = "ok  " if ok else "FAIL"
        lines.append(f"{verdict} figures.{name}: {cur:.2f}s "
                     f"(ceiling {ceiling:.2f}s, baseline {base_wall:.2f}s)")
        if not ok:
            failures.append(
                f"figures.{name}: {cur:.2f}s above ceiling {ceiling:.2f}s "
                f"(>{max_drop:.0%} throughput drop vs scaled baseline)")

    return failures, lines


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="perf-gate",
        description="Diff a fresh BENCH_simperf.json against the "
                    "committed baseline; non-zero exit on regression.")
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-drop", type=float, default=0.25,
                    help="allowed fractional throughput drop (default .25)")
    ap.add_argument("--no-calibration", action="store_true",
                    help="compare raw numbers without machine scaling")
    args = ap.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    cal = None if args.no_calibration else calibration_rate()
    failures, lines = compare_reports(baseline, current,
                                      current_calibration=cal,
                                      max_drop=args.max_drop)
    for line in lines:
        print(line)
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI wrapper
    raise SystemExit(main())
