"""Content-addressed run cache for benchmark points.

Regenerating a figure means re-running many independent simulation points;
most of them are unchanged between invocations.  This module caches point
results on disk, keyed by a digest of everything that determines the
result:

* the package version (``repro.__version__``) -- bumping it invalidates
  every entry, the coarse "timing model changed" hammer,
* the fully qualified name **and source hash** of the driver / SPMD
  program, so editing the driver itself always misses,
* the full argument/config snapshot (dataclass configs are canonicalized
  field by field, numpy arrays by digest), which covers machine/sim/
  transport parameters and the master seed.

The key deliberately does **not** chase transitive dependencies (a change
inside, say, the DMAPP timing model without a version bump keeps old
entries warm); ``--no-cache`` on the benchmark suite, the
``REPRO_BENCH_CACHE=0`` environment switch, or a version bump are the
invalidation tools, exactly as documented in DESIGN.md.

Entries are pickled under ``benchmarks/results/cache/<digest>.pkl``
(override the root with ``REPRO_CACHE_DIR``).  Unreadable or corrupt
entries count as misses and are overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable

from repro._version import __version__

__all__ = ["RunCache", "cache_enabled", "default_cache_dir",
           "fingerprint", "cached_run_spmd"]

_MISS = object()


def cache_enabled() -> bool:
    """False when ``REPRO_BENCH_CACHE`` is 0/off/false (default: on)."""
    return os.environ.get("REPRO_BENCH_CACHE", "1").lower() \
        not in ("0", "off", "false", "no")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``<cwd>/benchmarks/results/cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.cwd() / "benchmarks" / "results" / "cache"


def fingerprint(fn: Callable) -> dict:
    """Identity of a driver function: qualified name + source digest."""
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    try:
        src = inspect.getsource(fn)
    except (OSError, TypeError):
        code = getattr(fn, "__code__", None)
        src = code.co_code.hex() if code is not None else repr(fn)
    return {"fn": name,
            "src": hashlib.sha256(src.encode()).hexdigest()[:16]}


def _canon(obj: Any) -> Any:
    """Reduce an argument to a canonical JSON-encodable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__qualname__,
                "fields": {f.name: _canon(getattr(obj, f.name))
                           for f in dataclasses.fields(obj)}}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(_canon(v)) for v in obj)
    tobytes = getattr(obj, "tobytes", None)
    if callable(tobytes):  # numpy arrays / scalars
        return {"__ndarray__": hashlib.sha256(tobytes()).hexdigest()[:16],
                "dtype": str(getattr(obj, "dtype", "?")),
                "shape": list(getattr(obj, "shape", []))}
    if callable(obj):
        return fingerprint(obj)
    return repr(obj)


class RunCache:
    """Disk cache mapping content digests to pickled point results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------
    def key_for(self, fn: Callable, args: tuple = (),
                kwargs: dict | None = None) -> str:
        """Digest of (package version, driver identity, full arguments)."""
        blob = json.dumps({
            "version": __version__,
            "driver": fingerprint(fn),
            "args": _canon(list(args)),
            "kwargs": _canon(kwargs or {}),
        }, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- access --------------------------------------------------------
    def get(self, key: str) -> Any:
        """Cached value for ``key`` or ``RunCache.MISS``."""
        try:
            with open(self._path(key), "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("version") != __version__:
                self.misses += 1
                return _MISS
            self.hits += 1
            return payload["value"]
        except (OSError, pickle.PickleError, EOFError, KeyError,
                AttributeError, ImportError):
            self.misses += 1
            return _MISS

    def put(self, key: str, value: Any) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(".tmp")
            with open(tmp, "wb") as fh:
                pickle.dump({"version": __version__, "value": value}, fh)
            os.replace(tmp, self._path(key))
        except (OSError, pickle.PickleError):
            pass  # caching is best-effort; never fail the benchmark

    def prune_stale(self) -> int:
        """Delete entries written by other package versions; returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.pkl"):
            try:
                with open(path, "rb") as fh:
                    payload = pickle.load(fh)
                stale = payload.get("version") != __version__
            except Exception:
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> None:
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- stats ---------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


RunCache.MISS = _MISS


def cached_run_spmd(program: Callable, nranks: int, *args,
                    cache: RunCache | None = None, **kwargs):
    """:func:`repro.runtime.job.run_spmd` with content-addressed caching.

    The key covers the package version, the SPMD program's qualified name
    and source, ``nranks``, and every config/argument (including the
    master seed inside ``SimConfig``).  Returns the cached
    :class:`~repro.config.RunResult` on a hit.
    """
    from repro.runtime.job import run_spmd

    if cache is None:
        cache = RunCache()
    key = cache.key_for(program, (nranks,) + tuple(args), kwargs)
    hit = cache.get(key)
    if hit is not _MISS:
        return hit
    result = run_spmd(program, nranks, *args, **kwargs)
    cache.put(key, result)
    return result
