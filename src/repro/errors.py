"""Exception hierarchy for the repro package.

The RMA errors mirror the MPI error classes that the paper's protocols can
raise (epoch misuse, lock misuse, out-of-range accesses); the simulation
errors flag misuse of the DES kernel itself.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while coroutines were still blocked.

    ``blocked_ranks`` names the stuck processes and ``sites`` maps each to
    its last recorded API call site (when the runtime tracked one), so the
    error message says *who* is stuck and *where* -- not just how many.
    """

    def __init__(self, blocked: int, now: int,
                 blocked_ranks: tuple[str, ...] = (),
                 sites: dict[str, str] | None = None) -> None:
        self.blocked = blocked
        self.now = now
        self.blocked_ranks = tuple(blocked_ranks)
        self.sites = dict(sites or {})
        msg = (f"simulation deadlock: {blocked} process(es) still blocked "
               f"at t={now}ns with an empty event queue")
        if self.blocked_ranks:
            msg += "; blocked: " + ", ".join(
                f"{name} [{self.sites[name]}]" if name in self.sites else name
                for name in self.blocked_ranks)
        super().__init__(msg)


class LivelockError(SimulationError):
    """The progress watchdog saw a long event window with no protocol
    progress: processes keep waking (retry/backoff loops) but nothing ever
    completes.  Caught far earlier than the ``max_events`` backstop."""

    def __init__(self, now: int, events: int, window_events: int,
                 blocked_ranks: tuple[str, ...] = (),
                 sites: dict[str, str] | None = None) -> None:
        self.now = now
        self.events = events
        self.window_events = window_events
        self.blocked_ranks = tuple(blocked_ranks)
        self.sites = dict(sites or {})
        detail = ", ".join(
            f"{name} [{self.sites[name]}]" if name in self.sites else name
            for name in self.blocked_ranks) or "unknown"
        super().__init__(
            f"livelock detected at t={now}ns: no protocol progress over the "
            f"last {window_events} events ({events} processed in total); "
            f"stuck: {detail}")


class MemoryError_(ReproError):
    """Bad simulated-memory access (out of range, bad segment, bad rkey)."""


class RegistrationError(MemoryError_):
    """Access through an invalid or stale memory registration."""


class RmaError(ReproError):
    """Base class for MPI-3 RMA semantic errors."""


class EpochError(RmaError):
    """RMA call outside a valid access/exposure epoch, or epoch misuse.

    When an epoch is aborted because a participating rank's node crashed,
    ``failed_ranks`` names the dead participants (ULFM-style fault
    containment: the epoch completes on survivors with this error instead
    of hanging in the matching list or barrier).
    """

    def __init__(self, msg: str = "", failed_ranks=()) -> None:
        self.failed_ranks = tuple(sorted(failed_ranks))
        if self.failed_ranks:
            msg = (msg + (": " if msg else "")
                   + f"failed ranks {list(self.failed_ranks)}")
        super().__init__(msg)


class LockError(RmaError):
    """Lock/unlock protocol misuse (double lock, unlock without lock...)."""


class WindowError(RmaError):
    """Window creation/attach/detach misuse."""


class DatatypeError(RmaError):
    """Malformed derived datatype or type mismatch in communication."""


class Mpi1Error(ReproError):
    """Message-passing (MPI-1 baseline) semantic errors."""


class FaultError(ReproError):
    """Base class for failures caused by injected faults (repro.faults).

    ``collective``/``collective_ranks`` are filled in when the error
    escaped from inside a collective operation, so diagnostics name the
    collective and its participants rather than just the underlying
    point-to-point op.
    """

    collective: str | None = None
    collective_ranks: tuple = ()

    def annotate_collective(self, name: str, ranks) -> None:
        """Attach collective context (first/innermost annotation wins)."""
        if self.collective is not None:
            return
        self.collective = name
        self.collective_ranks = tuple(ranks)
        if self.args and isinstance(self.args[0], str):
            self.args = (
                f"{self.args[0]} [in collective {name!r} over ranks "
                f"{list(self.collective_ranks)}]",) + self.args[1:]


class DeadlineError(FaultError):
    """An operation's retry budget was exhausted: every (re)transmission
    within the per-op deadline was lost or corrupted."""

    def __init__(self, op: str, target: int, attempts: int,
                 deadline_ns: int) -> None:
        self.op = op
        self.target = target
        self.attempts = attempts
        self.deadline_ns = deadline_ns
        super().__init__(
            f"{op} to rank {target} failed: {attempts} transmission(s) lost "
            f"with a {deadline_ns}ns per-attempt deadline (retry budget "
            f"exhausted)")


class NodeCrashedError(FaultError):
    """An operation targeted (or ran on) a node that crashed at time T."""

    def __init__(self, node: int, crash_time_ns: int, detail: str = "") -> None:
        self.node = node
        self.crash_time_ns = crash_time_ns
        msg = f"node {node} crashed at t={crash_time_ns}ns"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class FTError(FaultError):
    """Rollback-recovery (repro.ft) configuration or protocol violation.

    Raised for operations the FT layer cannot make recoverable -- e.g. a
    software-fallback accumulate on a protected window whose lock-based
    read-modify-write cannot be logged as a deterministic delta."""


class RankFailedError(FaultError):
    """A protocol operation could not complete because peer rank(s) died.

    This is the ULFM-style user-visible notification: the failure service
    delivers rank-failure knowledge to survivors, and protocol layers
    (locks, epochs, teardown) raise this structured error for operations
    that semantically depend on a dead rank -- instead of spinning into a
    watchdog livelock or decaying into a deadlock report.
    """

    def __init__(self, failed_ranks, op: str = "", detail: str = "") -> None:
        self.failed_ranks = tuple(sorted(failed_ranks))
        self.op = op
        msg = f"rank(s) {list(self.failed_ranks)} failed"
        if op:
            msg += f" during {op}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
