"""Exception hierarchy for the repro package.

The RMA errors mirror the MPI error classes that the paper's protocols can
raise (epoch misuse, lock misuse, out-of-range accesses); the simulation
errors flag misuse of the DES kernel itself.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while coroutines were still blocked."""

    def __init__(self, blocked: int, now: int) -> None:
        super().__init__(
            f"simulation deadlock: {blocked} process(es) still blocked "
            f"at t={now}ns with an empty event queue"
        )
        self.blocked = blocked
        self.now = now


class MemoryError_(ReproError):
    """Bad simulated-memory access (out of range, bad segment, bad rkey)."""


class RegistrationError(MemoryError_):
    """Access through an invalid or stale memory registration."""


class RmaError(ReproError):
    """Base class for MPI-3 RMA semantic errors."""


class EpochError(RmaError):
    """RMA call outside a valid access/exposure epoch, or epoch misuse."""


class LockError(RmaError):
    """Lock/unlock protocol misuse (double lock, unlock without lock...)."""


class WindowError(RmaError):
    """Window creation/attach/detach misuse."""


class DatatypeError(RmaError):
    """Malformed derived datatype or type mismatch in communication."""


class Mpi1Error(ReproError):
    """Message-passing (MPI-1 baseline) semantic errors."""
