"""Drivers that run programs/workloads under the memory-model checker."""

from __future__ import annotations

from typing import Any, Callable

from repro.check.core import RaceChecker
from repro.config import (
    CheckConfig,
    FaultConfig,
    FaultPlan,
    MachineConfig,
    RunResult,
    SimConfig,
)

__all__ = ["run_checked", "check_workload", "JITTER_PROB", "JITTER_DELAY_NS"]

#: Schedule-perturbation knobs (the ``--perturb`` / ``--jitter`` modes):
#: per-packet latency spikes reusing the repro.faults delay machinery.
#: Deterministic per seed -- a finding's reproducer seed replays exactly.
JITTER_PROB = 0.25
JITTER_DELAY_NS = 5_000


def run_checked(program: Callable[..., Any], nranks: int = 4, *,
                seed: int | None = None, ranks_per_node: int = 1,
                jitter: bool = False,
                **kwargs: Any) -> tuple[RunResult, RaceChecker]:
    """Run ``program`` with the checker attached.

    ``jitter=True`` additionally perturbs the schedule with seeded
    per-packet latency spikes so latent (schedule-dependent) races get a
    chance to manifest; the seed fully determines the perturbation.
    """
    from repro.runtime.job import run_spmd

    sim = SimConfig() if seed is None else SimConfig(seed=seed)
    faults = None
    if jitter:
        faults = FaultConfig(plan=FaultPlan(delay_prob=JITTER_PROB,
                                            delay_ns=JITTER_DELAY_NS))
    res = run_spmd(program, nranks,
                   machine=MachineConfig(ranks_per_node=ranks_per_node),
                   sim=sim, faults=faults,
                   check=CheckConfig(enabled=True), **kwargs)
    assert isinstance(res.check, RaceChecker)
    return res, res.check


def check_workload(name: str, nranks: int = 4, *, seed: int | None = None,
                   ranks_per_node: int = 1, jitter: bool = False,
                   **kwargs: Any) -> tuple[RunResult, RaceChecker]:
    """Run one named demo workload (see :data:`repro.check.workloads.
    CHECK_WORKLOADS`) under the checker."""
    from repro.check.workloads import CHECK_WORKLOADS

    try:
        program = CHECK_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(CHECK_WORKLOADS)}") from None
    return run_checked(program, nranks, seed=seed,
                       ranks_per_node=ranks_per_node, jitter=jitter,
                       **kwargs)
