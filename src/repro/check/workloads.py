"""Demo workloads for ``repro check``: seeded races + clean controls.

Each ``racy_*`` program contains exactly one deliberate violation of the
paper's Section 4 access rules, and :data:`RACY_EXPECT` records the
violation class the checker must report for it -- the test suite runs
every entry and asserts both the class and the conflicting-access pair.
The ``clean_*`` programs are near-identical twins with the bug fixed
(disjoint ranges, same-op atomics, proper synchronization), and the four
obs demo workloads (putget/locks/fence/pscw) are re-exported so the CI
check job sweeps them too.

``racy_latent`` is the schedule-sensitive one: on the unperturbed
schedule every rank's measured flush latency stays under the threshold
and all writes land in private slots (zero violations); under
``--perturb`` the seeded latency spikes push some rank over the
threshold, its put aliases the shared slot everyone reads, and the race
manifests -- with the reproducer seed printed per finding.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.obs.workloads import WORKLOADS as _OBS_WORKLOADS
from repro.rma.datatypes import BYTE, Vector
from repro.rma.enums import LockType, Op

__all__ = ["CHECK_WORKLOADS", "RACY_EXPECT", "LATENT_THRESHOLD_NS"]

#: ``racy_latent``'s slow-path threshold: safely above the unperturbed
#: get+flush latency at small rank counts (~1.9 us measured), safely
#: below it plus one injected delay spike (+5 us per delayed packet).
LATENT_THRESHOLD_NS = 3_500


def racy_put_put(ctx):
    """Every rank puts to the SAME 8 bytes of rank 0 under lock_all
    (shared -- no mutual exclusion): concurrent conflicting writes."""
    win = yield from ctx.rma.win_allocate(64)
    yield from win.lock_all()
    data = np.full(8, ctx.rank + 1, np.uint8)
    yield from win.put(data, 0, 0)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def clean_put_put(ctx):
    """The fixed twin: each rank writes its OWN 8-byte slot."""
    win = yield from ctx.rma.win_allocate(8 * ctx.nranks)
    yield from win.lock_all()
    data = np.full(8, ctx.rank + 1, np.uint8)
    yield from win.put(data, 0, 8 * ctx.rank)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def racy_acc_mix(ctx):
    """Concurrent accumulates with DIFFERENT ops on one location: MPI
    only guarantees atomicity for same-op (or NO_OP) accumulates."""
    win = yield from ctx.rma.win_allocate(8, disp_unit=8)
    yield from win.fence()
    op = Op.SUM if ctx.rank % 2 == 0 else Op.REPLACE
    yield from win.accumulate(np.int64(1), 0, 0, op)
    yield from win.fence(no_succeed=True)
    yield from win.free()
    return ctx.now


def clean_acc_sum(ctx):
    """The fixed twin: everyone uses SUM -- permitted-concurrent."""
    win = yield from ctx.rma.win_allocate(8, disp_unit=8)
    yield from win.fence()
    yield from win.accumulate(np.int64(1), 0, 0, Op.SUM)
    yield from win.fence(no_succeed=True)
    yield from win.free()
    return ctx.now


def racy_atomic_nonatomic(ctx):
    """A plain put overlapping a fetch-and-op on the same 8 bytes:
    atomics do not compose with non-atomic accesses."""
    win = yield from ctx.rma.win_allocate(8, disp_unit=8)
    yield from win.lock_all()
    if ctx.rank == 0:
        yield from win.put(np.full(8, 1, np.uint8), 0, 0)
    else:
        yield from win.fetch_and_op(np.int64(1), 0, 0, Op.SUM)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def racy_local(ctx):
    """Separate memory model: rank 0 polls its window with local loads
    while rank 1 puts into it -- no synchronization between them."""
    win = yield from ctx.rma.win_allocate(8)
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        for _ in range(4):
            win.local_load(8)
            yield from ctx.compute(2_000)
    elif ctx.rank == 1:
        yield from win.lock(0)
        yield from win.put(np.full(8, 7, np.uint8), 0, 0)
        yield from win.unlock(0)
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def clean_local(ctx):
    """The fixed twin: rank 0 only reads its window AFTER the exclusive
    lock/unlock pair of the writer (release via the lock word)."""
    win = yield from ctx.rma.win_allocate(8)
    yield from ctx.coll.barrier()
    if ctx.rank == 1:
        yield from win.lock(0, LockType.EXCLUSIVE)
        yield from win.put(np.full(8, 7, np.uint8), 0, 0)
        yield from win.unlock(0)
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        win.local_load(8)
    yield from win.free()
    return ctx.now


def clean_msg_sync(ctx):
    """Mixed two-sided/one-sided: rank 1 puts into rank 0's window, then
    tells rank 0 with a plain MPI-1 message; rank 0 reads its window only
    after the recv.  The send/recv match point is a true happens-before
    edge (put -> send -> recv -> load), so this must be spotless --
    before the msg hooks it was the canonical false local-remote race."""
    win = yield from ctx.rma.win_allocate(8)
    yield from ctx.coll.barrier()
    if ctx.rank == 1:
        yield from win.lock(0, LockType.EXCLUSIVE)
        yield from win.put(np.full(8, 7, np.uint8), 0, 0)
        yield from win.unlock(0)
        yield from ctx.mpi.send(0, b"done", tag=7)
    elif ctx.rank == 0:
        yield from ctx.mpi.recv(src=1, tag=7)
        win.local_load(8)
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def racy_msg_nosync(ctx):
    """Control twin: the message leaves BEFORE the put, so the recv
    orders nothing -- the local-remote race must still be reported
    (msg edges must not blanket-suppress findings)."""
    win = yield from ctx.rma.win_allocate(8)
    yield from ctx.coll.barrier()
    if ctx.rank == 1:
        yield from ctx.mpi.send(0, b"go", tag=7)
        yield from win.lock(0, LockType.EXCLUSIVE)
        yield from win.put(np.full(8, 7, np.uint8), 0, 0)
        yield from win.unlock(0)
    elif ctx.rank == 0:
        yield from ctx.mpi.recv(src=1, tag=7)
        win.local_load(8)
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def racy_same_origin(ctx):
    """One origin overwrites its own un-completed put (no flush between
    two puts to the same target bytes): unordered same-origin conflict."""
    win = yield from ctx.rma.win_allocate(8)
    yield from win.lock_all()
    if ctx.rank == 1 % ctx.nranks:
        yield from win.put(np.full(8, 1, np.uint8), 0, 0)
        yield from win.put(np.full(8, 2, np.uint8), 0, 0)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def clean_same_origin(ctx):
    """The fixed twin: a flush between the two puts orders them."""
    win = yield from ctx.rma.win_allocate(8)
    yield from win.lock_all()
    if ctx.rank == 1 % ctx.nranks:
        yield from win.put(np.full(8, 1, np.uint8), 0, 0)
        yield from win.flush(0)
        yield from win.put(np.full(8, 2, np.uint8), 0, 0)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def clean_strided(ctx):
    """Interleaving-but-disjoint vector datatypes are NOT races: rank 1
    writes the even 8-byte lanes, rank 2 the odd lanes, concurrently."""
    lanes = 8
    win = yield from ctx.rma.win_allocate(16 * lanes)
    yield from win.lock_all()
    # Every-other-lane vector: `lanes` blocks of 8 bytes, stride 16.
    vec = Vector(lanes, 8, 16, BYTE)
    data = np.full(8 * lanes, ctx.rank, np.uint8)
    if ctx.rank == 1 % ctx.nranks:
        yield from win.put(data, 0, 0, target_datatype=vec, count=1)
    elif ctx.rank == 2 % ctx.nranks:
        yield from win.put(data, 0, 8, target_datatype=vec, count=1)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return ctx.now


def racy_latent(ctx, threshold_ns: int = LATENT_THRESHOLD_NS):
    """Latency-dependent aliasing: a rank whose measured get+flush time
    exceeds ``threshold_ns`` reports into the shared slot 0 that every
    rank reads -- racy only when the schedule actually produces a slow
    flush (i.e. under ``--perturb``)."""
    win = yield from ctx.rma.win_allocate(8 * (ctx.nranks + 1))
    yield from win.lock_all()
    out = np.empty(8, np.uint8)
    t0 = ctx.now
    yield from win.get(out, 0, 0)
    yield from win.flush(0)
    slow = (ctx.now - t0) > threshold_ns
    slot = 0 if slow else 8 * (1 + ctx.rank)
    yield from win.put(np.full(8, ctx.rank, np.uint8), 0, slot)
    yield from win.flush(0)
    yield from win.unlock_all()
    yield from ctx.coll.barrier()
    yield from win.free()
    return int(slow)


#: Every workload ``repro check`` accepts by name: the racy demos, their
#: clean twins, and the four obs demo workloads.
CHECK_WORKLOADS: dict[str, Callable[..., Any]] = {
    "racy_put_put": racy_put_put,
    "racy_acc_mix": racy_acc_mix,
    "racy_atomic_nonatomic": racy_atomic_nonatomic,
    "racy_local": racy_local,
    "racy_same_origin": racy_same_origin,
    "racy_latent": racy_latent,
    "racy_msg_nosync": racy_msg_nosync,
    "clean_put_put": clean_put_put,
    "clean_msg_sync": clean_msg_sync,
    "clean_acc_sum": clean_acc_sum,
    "clean_local": clean_local,
    "clean_same_origin": clean_same_origin,
    "clean_strided": clean_strided,
    **_OBS_WORKLOADS,
}

#: Violation class the checker must report for each racy demo on its
#: default schedule.  ``racy_latent`` is absent on purpose: it is clean
#: unperturbed and manifests as ``put-get`` only under --perturb.
RACY_EXPECT: dict[str, str] = {
    "racy_put_put": "put-put",
    "racy_acc_mix": "accumulate-op-mix",
    "racy_atomic_nonatomic": "atomic-nonatomic",
    "racy_local": "local-remote",
    "racy_same_origin": "same-origin",
    "racy_msg_nosync": "local-remote",
}
