"""Epoch-state rules for MPI-3 RMA windows (paper Section 4).

This module is the single home of the "which calls are legal in which
epoch" rules that used to live as ad-hoc asserts inside
:mod:`repro.rma.window`.  Two consumers share it:

* the **always-on subset**: :func:`require_access` and
  :func:`require_flush` are called from every communication call and
  raise :class:`~repro.errors.EpochError` on misuse -- cheap comparisons
  only, enabled whether or not the checker is attached (the pre-checker
  behaviour, consolidated);
* the **checker**: :class:`repro.check.core.RaceChecker` tags every
  shadow access record with :func:`epoch_context` so violation reports
  name the epoch each conflicting access executed under.

The rules (MPI-3.0 Section 11.5, reproduced as the paper's Section 4
semantics):

* RMA communication calls require an open *access* epoch: after a
  fence, between start/complete (restricted to the PSCW access group),
  or between lock/unlock (restricted to locked targets) /
  lock_all/unlock_all.
* ``flush`` and friends require a *passive or active* epoch to flush.
"""

from __future__ import annotations

from repro.errors import EpochError

__all__ = ["require_access", "require_flush", "epoch_context",
           "FLUSH_MODES"]

#: Epoch modes in which the flush family is defined.  foMPI implements
#: flush as bulk completion (gsync), which is meaningful inside any
#: epoch; MPI only *requires* it in passive-target epochs.
FLUSH_MODES = ("lock", "lock_all", "fence", "pscw")


def require_access(win, target: int) -> None:
    """Raise :class:`EpochError` unless ``win`` may communicate with
    ``target`` right now (open access epoch covering the target)."""
    mode = win.epoch_access
    if mode is None:
        raise EpochError(
            f"rank {win.rank}: RMA communication to {target} outside "
            "any access epoch")
    if mode == "pscw" and target not in win.pscw_state.access_group:
        raise EpochError(
            f"rank {win.rank}: target {target} not in the PSCW access "
            f"group {sorted(win.pscw_state.access_group)}")
    if mode == "lock" and target not in win.lock_state.held:
        raise EpochError(
            f"rank {win.rank}: target {target} not locked "
            f"(locked: {sorted(win.lock_state.held)})")


def require_flush(win) -> None:
    """Raise :class:`EpochError` unless a flush is legal right now."""
    if win.epoch_access not in FLUSH_MODES:
        raise EpochError("flush outside a passive/active epoch")


def epoch_context(win) -> str:
    """Human-readable epoch label for violation reports."""
    mode = win.epoch_access
    if mode is None:
        return "exposure:pscw" if win.epoch_exposure == "pscw" else "none"
    if mode == "lock":
        held = ",".join(f"{t}:{lt.name.lower()}"
                        for t, lt in sorted(win.lock_state.held.items()))
        return f"lock({held})"
    return mode
