"""repro.check -- happens-before race and memory-model checking for RMA.

The subsystem has three layers:

* :mod:`repro.check.epochs` -- the always-on epoch-legality rules
  (consolidated from the old inline asserts in ``rma/window.py``);
* :mod:`repro.check.vclock` / :mod:`repro.check.core` -- the vector-clock
  engine and shadow access store (attached per run via
  ``CheckConfig(enabled=True)`` or :func:`~repro.check.core.check_capture`);
* :mod:`repro.check.runner` / :mod:`repro.check.perturb` -- workload
  drivers and the seeded schedule-perturbation sweep behind
  ``repro check <workload> [--perturb N]``.

This ``__init__`` stays import-light because ``rma/window.py`` imports
``repro.check.epochs`` on the hot path: the heavy modules (runner,
workloads, perturbation -- which pull in the whole runtime) are loaded
lazily on attribute access.
"""

from __future__ import annotations

from typing import Any

__all__ = ["RaceChecker", "Violation", "Access", "VectorClock",
           "check_capture", "active_check_capture", "run_checked",
           "check_workload", "perturb_sweep", "render_check_report",
           "CHECK_WORKLOADS", "RACY_EXPECT"]

_LAZY = {
    "RaceChecker": ("repro.check.core", "RaceChecker"),
    "Violation": ("repro.check.core", "Violation"),
    "Access": ("repro.check.core", "Access"),
    "VectorClock": ("repro.check.vclock", "VectorClock"),
    "check_capture": ("repro.check.core", "check_capture"),
    "active_check_capture": ("repro.check.core", "active_check_capture"),
    "run_checked": ("repro.check.runner", "run_checked"),
    "check_workload": ("repro.check.runner", "check_workload"),
    "perturb_sweep": ("repro.check.perturb", "perturb_sweep"),
    "render_check_report": ("repro.check.report", "render_check_report"),
    "CHECK_WORKLOADS": ("repro.check.workloads", "CHECK_WORKLOADS"),
    "RACY_EXPECT": ("repro.check.workloads", "RACY_EXPECT"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.check' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), attr)
