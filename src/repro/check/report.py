"""Plain-text rendering of checker results for the CLI."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.core import RaceChecker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.perturb import PerturbResult

__all__ = ["render_check_report", "render_perturb_report"]


def render_check_report(ck: RaceChecker, title: str = "") -> str:
    """Human-readable summary: verdict, counters, every violation with
    its conflicting-access pair, epochs and simulated timestamps."""
    stats = ck.stats_snapshot()
    lines = []
    head = f"repro check: {title}" if title else "repro check"
    lines.append(head)
    lines.append("=" * len(head))
    lines.append(
        f"accesses tracked : {stats['accesses']}"
        + (" (record cap hit -- results incomplete)"
           if stats["truncated"] else ""))
    lines.append(f"live records     : {stats['live_records']} "
                 f"(pruned {stats['pruned_records']})")
    if ck.clean:
        lines.append("violations       : 0  -- no races detected")
        return "\n".join(lines)
    lines.append(f"violations       : {stats['violations']} "
                 f"({stats['unique']} unique)")
    for kind, n in stats["by_kind"].items():
        lines.append(f"    {kind:<20} {n}")
    lines.append("")
    for i, v in enumerate(sorted(ck.violations,
                                 key=lambda v: (v.win_id, v.lo, v.kind)),
                          1):
        lines.append(f"#{i} {v.describe()}")
    return "\n".join(lines)


def render_perturb_report(result: PerturbResult) -> str:
    """Summary of a perturbation sweep (one line per iteration plus the
    reproducer command for every finding)."""
    from repro.check.perturb import reproducer_command

    lines = [f"perturbation sweep: {result.workload} "
             f"({result.iterations} iterations, {result.nranks} ranks)"]
    hits = 0
    for i, (seed, ck) in enumerate(zip(result.seeds, result.checkers)):
        n = sum(v.count for v in ck.violations)
        tag = "clean" if not ck.violations else f"{n} violation(s)"
        lines.append(f"  iter {i:<3} seed {seed:<22} {tag}")
        hits += bool(ck.violations)
    lines.append(f"{hits}/{result.iterations} schedules manifested races")
    for i, (seed, ck) in enumerate(zip(result.seeds, result.checkers)):
        if not ck.violations:
            continue
        lines.append("")
        lines.append(f"-- iteration {i} (seed {seed}) --")
        for v in ck.violations:
            lines.append(v.describe())
        lines.append("reproduce: "
                     + reproducer_command(result.workload, result.nranks,
                                          seed))
    return "\n".join(lines)
