"""Schedule-perturbation sweeps: manifest latent races, print reproducers.

A latent race is one the default schedule happens to order -- e.g. a
target that only reads a slot after the writer's operation had time to
land.  The sweep reruns a workload N times, each with

* a distinct derived seed (``derive_seed(base_seed, "perturb-<i>")``),
* seeded per-packet latency spikes (the ``repro.faults`` delay
  machinery, :data:`~repro.check.runner.JITTER_PROB` /
  :data:`~repro.check.runner.JITTER_DELAY_NS`),

so completion orders genuinely differ between iterations while every
iteration stays bit-reproducible.  Each violation is stamped with its
iteration's seed; replaying is one command::

    repro check <workload> --ranks <n> --seed <seed> --jitter
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.core import RaceChecker, Violation
from repro.sim.random import derive_seed

__all__ = ["PerturbResult", "perturb_sweep", "reproducer_command"]


def reproducer_command(workload: str, nranks: int, seed: int) -> str:
    """The CLI invocation that replays one perturbed finding exactly."""
    return f"repro check {workload} --ranks {nranks} --seed {seed} --jitter"


@dataclass
class PerturbResult:
    """Outcome of one perturbation sweep."""

    workload: str
    nranks: int
    iterations: int
    checkers: list[RaceChecker] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)

    @property
    def findings(self) -> list[Violation]:
        return [v for ck in self.checkers for v in ck.violations]

    @property
    def clean(self) -> bool:
        return not self.findings


def perturb_sweep(name: str, iterations: int, *, nranks: int = 4,
                  base_seed: int | None = None,
                  ranks_per_node: int = 1) -> PerturbResult:
    """Rerun workload ``name`` under ``iterations`` perturbed schedules."""
    from repro.check.runner import check_workload
    from repro.config import SimConfig

    if iterations < 1:
        raise ValueError(f"iterations={iterations} must be positive")
    if base_seed is None:
        base_seed = SimConfig().seed
    out = PerturbResult(workload=name, nranks=nranks, iterations=iterations)
    for i in range(iterations):
        seed = derive_seed(base_seed, f"perturb-{i}")
        _res, ck = check_workload(name, nranks, seed=seed,
                                  ranks_per_node=ranks_per_node,
                                  jitter=True)
        for v in ck.violations:
            v.seed = seed
        out.checkers.append(ck)
        out.seeds.append(seed)
    return out
