"""Vector clocks for happens-before reasoning over RMA synchronization.

One :class:`VectorClock` per rank tracks that rank's knowledge of every
rank's synchronization history.  The protocol follows the classic
release/acquire discipline:

* **deposit** (release): the releasing rank ticks its own component,
  then publishes a copy of its clock at the synchronization object
  (lock word, PSCW matching slot, collective instance).
* **merge** (acquire): the acquiring rank takes the pointwise maximum
  with the published clock, then ticks its own component.

An access ``a`` happens-before an access ``b`` recorded later (the DES
kernel delivers hook calls in deterministic event order, so "later"
is well defined) iff ``a.clock[a.rank] <= b.clock[a.rank]`` -- rank
``b`` has acquired a release that followed ``a``.  Own components start
at 1 so an access always carries a nonzero epoch label.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector of per-rank synchronization counters."""

    __slots__ = ("c",)

    def __init__(self, nranks: int, rank: int | None = None) -> None:
        self.c = [0] * nranks
        if rank is not None:
            self.c[rank] = 1

    # -- core operations -------------------------------------------------
    def copy(self) -> "VectorClock":
        vc = VectorClock.__new__(VectorClock)
        vc.c = list(self.c)
        return vc

    def tick(self, rank: int) -> None:
        """Advance ``rank``'s own component (a new release epoch)."""
        self.c[rank] += 1

    def merge(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (the acquire half)."""
        mine, theirs = self.c, other.c
        for i, v in enumerate(theirs):
            if v > mine[i]:
                mine[i] = v

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``<=`` -- every event known here is known there."""
        return all(a <= b for a, b in zip(self.c, other.c))

    def __getitem__(self, rank: int) -> int:
        return self.c[rank]

    def __len__(self) -> int:
        return len(self.c)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.c == other.c

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(self.c))

    def __repr__(self) -> str:
        return f"VC{self.c!r}"
