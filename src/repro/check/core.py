"""The RMA memory-model checker: shadow accesses + vector-clock races.

One :class:`RaceChecker` is attached to a
:class:`~repro.runtime.world.World` when checking is enabled
(``CheckConfig(enabled=True)`` or a live :func:`check_capture` block).
Every protocol-layer hook is behind a single ``checker is None`` test,
so disabled runs execute the exact pre-checker code path; recording
itself is pure host-side bookkeeping (list appends, dict updates,
vector-clock arithmetic) that never schedules events or draws random
numbers, so enabled runs are bit-identical too -- the test suite asserts
both.

How it works
------------

**Synchronization** feeds the vector-clock engine
(:mod:`repro.check.vclock`):

* collectives (and the barrier inside every fence) deposit at entry and
  merge the deposits present at exit -- exact for dissemination/
  recursive-doubling patterns, a sound under-approximation of a full
  barrier for rooted trees (never creates a false happens-before edge);
* lock/unlock and lock_all/unlock_all implement reader-writer release
  clocks: an exclusive acquire is ordered after all prior releases, a
  shared acquire after prior *exclusive* releases only;
* PSCW post/complete deposit per exposure/access peer, start/wait merge
  (matching the matching-list protocol's message flow);
* flush / unlock / complete / fence advance the per-``(rank, window)``
  *operation sequence* that orders same-origin nonblocking operations.

**Accesses** are shadow-recorded per ``(window, target rank)`` as byte
ranges (one range per contiguous datatype block, so interleaving-but-
disjoint strided types never alias).  On insertion each record is
compared against the live records for the same location; pairs that are
neither happens-before-ordered nor permitted-concurrent become
:class:`Violation` findings.  Full barriers prune records that can no
longer race with anything in the future, bounding memory.

**Classification** follows the paper's Section 4 / MPI-3 Section 11.7:

=====================  ==================================================
``put-put``            two concurrent remote writes overlap
``put-get``            a concurrent remote write overlaps a remote read
``accumulate-op-mix``  concurrent accumulates with different operations
                       (atomicity is only guaranteed for same-op)
``atomic-nonatomic``   an accumulate-family op concurrent with a plain
                       put/get on the same bytes
``local-remote``       a target-side local load/store concurrent with a
                       remote access (separate memory model)
``same-origin``        one origin's own operations overlap without an
                       ordering call (flush/unlock/complete/fence)
=====================  ==================================================

Permitted concurrency: read-read, same-op accumulates (or ``NO_OP``),
and same-origin accumulates (MPI's default accumulate ordering).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.check.vclock import VectorClock

__all__ = ["Access", "Violation", "RaceChecker", "check_capture",
           "active_check_capture"]

#: Access kinds that only read target memory.
_READ_KINDS = frozenset({"get", "local_load"})
#: Access kinds in the accumulate family (element-wise atomic).
_ACC_KINDS = frozenset({"acc", "get_acc", "fao", "cas"})
#: Access kinds executed by the target itself (local CPU accesses).
_LOCAL_KINDS = frozenset({"local_load", "local_store"})


@dataclass
class Access:
    """One shadow-recorded window access."""

    rank: int                      # issuing rank (origin, or target-local)
    kind: str                      # put|get|acc|get_acc|fao|cas|local_*
    op: str | None                 # accumulate operation name, or None
    win_id: int
    target: int                    # rank whose window memory is touched
    ranges: tuple[tuple[int, int], ...]   # [lo, hi) byte ranges
    oseq: int                      # same-origin operation-sequence number
    clock: VectorClock             # issuing rank's clock at issue time
    t_ns: int                      # simulated issue time
    epoch: str                     # epoch context label
    path: str = ""                 # accumulate path tag ("hw"/"sw")

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_KINDS or (
            self.kind in _ACC_KINDS and self.op == "no_op")

    @property
    def is_acc(self) -> bool:
        return self.kind in _ACC_KINDS

    @property
    def is_local(self) -> bool:
        return self.kind in _LOCAL_KINDS

    def describe(self) -> str:
        op = f" {self.op}" if self.op else ""
        path = f"/{self.path}" if self.path else ""
        spans = ",".join(f"[{lo},{hi})" for lo, hi in self.ranges[:3])
        more = "..." if len(self.ranges) > 3 else ""
        return (f"{self.kind}{op}{path} by rank {self.rank} at "
                f"{self.t_ns} ns (epoch {self.epoch}, seq {self.oseq}) "
                f"bytes {spans}{more}")


@dataclass
class Violation:
    """One conflicting-access pair (deduplicated; ``count`` repeats)."""

    kind: str
    win_id: int
    target: int
    lo: int                        # first overlapping byte range seen
    hi: int
    first: Access
    second: Access
    count: int = 1
    seed: int | None = None        # reproducer seed (perturbation sweeps)

    def describe(self) -> str:
        rep = f"  [reproduce with --seed {self.seed}]" if (
            self.seed is not None) else ""
        times = f" (x{self.count})" if self.count > 1 else ""
        return (f"race[{self.kind}] win {self.win_id} @ rank {self.target}"
                f" bytes [{self.lo},{self.hi}){times}:\n"
                f"    {self.first.describe()}\n"
                f"    {self.second.describe()}{rep}")


@dataclass
class _CollSlot:
    """One collective instance: merged deposits + participation counts."""

    acc: VectorClock
    entered: int = 0
    exited: int = 0


@dataclass
class _LockSync:
    """Release clocks of one (window, target) lock word."""

    write_release: VectorClock
    read_release: VectorClock


@dataclass
class _Shadow:
    """Live access records for one (window, target) location."""

    records: list = field(default_factory=list)


class RaceChecker:
    """Vector-clock race detection for one simulated run."""

    def __init__(self, nranks: int, config: Any = None,
                 obs: Any = None) -> None:
        from repro.config import CheckConfig

        self.nranks = nranks
        self.config = config or CheckConfig(enabled=True)
        self.obs = obs
        self.clocks = [VectorClock(nranks, r) for r in range(nranks)]
        self.violations: list[Violation] = []
        self._sigs: dict[tuple, Violation] = {}
        # Synchronization-object state:
        self._coll_seq = [0] * nranks
        self._coll: dict[int, _CollSlot] = {}
        self._locks: dict[tuple[int, int], _LockSync] = {}
        self._pscw_post: dict[tuple, deque] = {}
        self._pscw_done: dict[tuple, deque] = {}
        self._mcs: dict[tuple, VectorClock] = {}
        self._oseq: dict[tuple[int, int], int] = {}
        # Shadow store:
        self._shadow: dict[tuple[int, int], _Shadow] = {}
        self.nrecords = 0
        self.pruned = 0
        self.truncated = False
        self.accesses_seen = 0
        # Target-side attribution context (set by Window.local_load/store
        # around the Segment access so the watch hook can attribute it).
        self._local: tuple | None = None
        self.transport_counts: dict[str, int] = {}
        # Two-sided happens-before edges observed (msg_send match points).
        self.msg_edges = 0

    # ------------------------------------------------------------------
    # vector-clock primitives
    # ------------------------------------------------------------------
    def _deposit(self, rank: int) -> VectorClock:
        """Release: tick own component, publish a copy."""
        clock = self.clocks[rank]
        clock.tick(rank)
        return clock.copy()

    def _acquire(self, rank: int, vc: VectorClock | None) -> None:
        """Acquire: merge a published clock, tick own component."""
        clock = self.clocks[rank]
        if vc is not None:
            clock.merge(vc)
        clock.tick(rank)

    def _bump_oseq(self, rank: int, win_id: int) -> None:
        key = (rank, win_id)
        self._oseq[key] = self._oseq.get(key, 0) + 1

    # ------------------------------------------------------------------
    # synchronization hooks (called by the protocol layers)
    # ------------------------------------------------------------------
    def coll_enter(self, rank: int) -> int:
        """A collective call starts on ``rank``; returns its instance id.

        MPI requires every rank to issue collectives in the same order,
        so per-rank sequence counters identify the instance."""
        seq = self._coll_seq[rank]
        self._coll_seq[rank] = seq + 1
        slot = self._coll.get(seq)
        if slot is None:
            slot = self._coll[seq] = _CollSlot(VectorClock(self.nranks))
        slot.acc.merge(self._deposit(rank))
        slot.entered += 1
        return seq

    def coll_exit(self, rank: int, seq: int) -> None:
        """The collective returns on ``rank``: merge deposits present.

        Every true message edge inside the collective implies its sender
        deposited before this hook runs (event order), so merging the
        accumulated clock never invents a happens-before edge."""
        slot = self._coll[seq]
        self._acquire(rank, slot.acc)
        slot.exited += 1
        if slot.exited == self.nranks:
            # A completed full collective is a global ordering point:
            # records everyone already knows about can never race again.
            self._prune(slot.acc)
            del self._coll[seq]

    def msg_send(self, rank: int) -> VectorClock:
        """An MPI-1 send is issued by ``rank``: deposit its clock.

        The returned clock rides on the :class:`~repro.mpi1.matching.Message`
        to the receiver's match point.  Mirrors how collectives deposit at
        ``coll_enter`` -- a two-sided message is a true happens-before edge
        from the sender's program point to the receiving program point, so
        mixed two-sided/one-sided programs that order their RMA accesses
        with send/recv pairs must not report false races."""
        self.msg_edges += 1
        return self._deposit(rank)

    def msg_recv(self, rank: int, vc: VectorClock | None) -> None:
        """An MPI-1 receive matches on ``rank``: acquire the sender's
        deposited clock (``None`` for messages sent before the checker
        attached -- merge-nothing, tick-only, never a false edge)."""
        self._acquire(rank, vc)

    def on_fence(self, win) -> None:
        """Fence completes all of this origin's operations (the ordering
        itself comes from the barrier inside the fence)."""
        self._bump_oseq(win.rank, win.win_id)

    def on_flush(self, win) -> None:
        """Remote completion: later same-origin ops are ordered after
        earlier ones.  (``flush_local`` completes only locally and does
        NOT order target-side effects, so it has no hook.)"""
        self._bump_oseq(win.rank, win.win_id)

    def lock_acquired(self, win, target: int, exclusive: bool) -> None:
        sync = self._locks.get((win.win_id, target))
        vc: VectorClock | None = None
        if sync is not None:
            vc = sync.write_release.copy()
            if exclusive:
                vc.merge(sync.read_release)
        self._acquire(win.rank, vc)

    def lock_released(self, win, target: int, exclusive: bool) -> None:
        vc = self._deposit(win.rank)
        sync = self._locks.get((win.win_id, target))
        if sync is None:
            sync = self._locks[(win.win_id, target)] = _LockSync(
                VectorClock(self.nranks), VectorClock(self.nranks))
        (sync.write_release if exclusive else sync.read_release).merge(vc)
        self._bump_oseq(win.rank, win.win_id)  # unlock completes ops

    def lock_all_acquired(self, win) -> None:
        merged: VectorClock | None = None
        for t in range(self.nranks):
            sync = self._locks.get((win.win_id, t))
            if sync is not None:
                if merged is None:
                    merged = sync.write_release.copy()
                else:
                    merged.merge(sync.write_release)
        self._acquire(win.rank, merged)

    def lock_all_released(self, win) -> None:
        vc = self._deposit(win.rank)
        for t in range(self.nranks):
            sync = self._locks.get((win.win_id, t))
            if sync is None:
                sync = self._locks[(win.win_id, t)] = _LockSync(
                    VectorClock(self.nranks), VectorClock(self.nranks))
            sync.read_release.merge(vc)
        self._bump_oseq(win.rank, win.win_id)

    def pscw_post(self, win, group) -> None:
        """Deposited at post() entry -- before the matching-list appends
        the peers' start() will observe."""
        vc = self._deposit(win.rank)
        for j in group:
            self._pscw_post.setdefault(
                (win.win_id, j, win.rank), deque()).append(vc)

    def pscw_start(self, win, group) -> None:
        """Merged at start() exit, one deposit per matched poster."""
        merged: VectorClock | None = None
        for r in group:
            dq = self._pscw_post.get((win.win_id, win.rank, r))
            if dq:
                vc = dq.popleft()
                if merged is None:
                    merged = vc.copy()
                else:
                    merged.merge(vc)
        self._acquire(win.rank, merged)

    def pscw_complete(self, win, group) -> None:
        """Deposited at complete() entry -- before the completion-counter
        AMOs the peers' wait() will observe."""
        vc = self._deposit(win.rank)
        for j in group:
            self._pscw_done.setdefault(
                (win.win_id, j, win.rank), deque()).append(vc)
        self._bump_oseq(win.rank, win.win_id)

    def mcs_acquired(self, rank: int, key: tuple) -> None:
        """An MCS queue lock (:class:`repro.rma.mcs.McsLock`) was acquired
        by ``rank``.  ``key`` identifies the lock instance
        (``(win_id, cell_base)``).  MCS locks are exclusive, so the
        acquire is ordered after *every* prior release: merge the
        accumulated release clock.  Without this edge, lock-ordered
        read-modify-write sequences (the kvstore's CAS-update path) would
        be reported as races."""
        self._acquire(rank, self._mcs.get(key))

    def mcs_released(self, rank: int, key: tuple) -> None:
        """``rank`` releases an MCS lock: deposit its clock.  Called at
        release *entry* -- before the hand-off AMO fires -- so the deposit
        is in place by the time any successor's acquire completes (event
        order guarantees the hook runs first)."""
        vc = self._deposit(rank)
        cur = self._mcs.get(key)
        if cur is None:
            self._mcs[key] = vc
        else:
            cur.merge(vc)

    def pscw_wait(self, win, origins) -> None:
        """Merged at wait() exit, one deposit per access-epoch origin."""
        merged: VectorClock | None = None
        for r in origins:
            dq = self._pscw_done.get((win.win_id, win.rank, r))
            if dq:
                vc = dq.popleft()
                if merged is None:
                    merged = vc.copy()
                else:
                    merged.merge(vc)
        self._acquire(win.rank, merged)

    # ------------------------------------------------------------------
    # rollback recovery (repro.ft)
    # ------------------------------------------------------------------
    def on_restore(self, rank: int, coll_seq: int, oseqs: dict) -> None:
        """A crashed rank was rolled back to a checkpoint and restarted.

        The dead incarnation's post-checkpoint history is void: its
        shadow records would fabricate races against the re-executed
        operations, and its sequence counters must rewind to the values
        the restored program state corresponds to.  The restore itself
        is a global ordering point for the rank (the checkpointed bytes
        plus replayed log entries are what everyone observes), so the
        rank's clock ticks once here."""
        old_seq = self._coll_seq[rank]
        self._coll_seq[rank] = coll_seq
        for key in [k for k in self._oseq if k[0] == rank]:
            del self._oseq[key]
        self._oseq.update(oseqs)
        for shadow in self._shadow.values():
            shadow.records = [r for r in shadow.records if r.rank != rank]
        self.nrecords = sum(len(s.records) for s in self._shadow.values())
        # Withdraw the dead incarnation's entries from still-open
        # collective slots it had entered past the checkpoint: the
        # restarted incarnation re-enters them.
        for seq in range(coll_seq, old_seq):
            slot = self._coll.get(seq)
            if slot is None:
                continue
            slot.entered -= 1
            if slot.entered <= 0:
                del self._coll[seq]
        self.clocks[rank].tick(rank)

    # ------------------------------------------------------------------
    # access hooks
    # ------------------------------------------------------------------
    def note_op(self, win, kind: str, target: int,
                ranges, *, op: str | None = None, path: str = "") -> None:
        """Record one origin-side communication call (put/get/atomics)."""
        from repro.check import epochs

        self.accesses_seen += 1
        if self.truncated:
            return
        rank = win.rank
        rec = Access(
            rank=rank, kind=kind, op=op, win_id=win.win_id, target=target,
            ranges=tuple((int(lo), int(hi)) for lo, hi in ranges),
            oseq=self._oseq.get((rank, win.win_id), 0),
            clock=self.clocks[rank].copy(), t_ns=win.ctx.now,
            epoch=epochs.epoch_context(win), path=path)
        self._insert(rec)

    def watch_segment(self, win, seg, base: int) -> None:
        """Install the address-space watch funnel on a window segment.

        The watch fires for *every* read/write of the segment, including
        remote XPMEM copies and DMAPP delivery-time stores -- those run
        with no attribution context and are ignored (they were already
        recorded origin-side).  Only accesses bracketed by
        :meth:`local_attribution` are recorded as target-local."""
        if seg.watch is None:
            seg.watch = self._seg_access

    @contextmanager
    def local_attribution(self, win, rank: int, base: int) -> Iterator[None]:
        self._local = (win, rank, base)
        try:
            yield
        finally:
            self._local = None

    def _seg_access(self, kind: str, offset: int, nbytes: int) -> None:
        """Segment watch callback (see :class:`repro.mem.address_space.
        Segment`)."""
        loc = self._local
        if loc is None or not self.config.track_local:
            return
        win, rank, base = loc
        from repro.check import epochs

        self.accesses_seen += 1
        if self.truncated:
            return
        lo = offset - base
        rec = Access(
            rank=rank, kind=f"local_{kind}", op=None, win_id=win.win_id,
            target=rank, ranges=((lo, lo + nbytes),),
            oseq=self._oseq.get((rank, win.win_id), 0),
            clock=self.clocks[rank].copy(), t_ns=win.ctx.now,
            epoch=epochs.epoch_context(win))
        self._insert(rec)

    def note_local(self, win, kind: str, offset: int, nbytes: int) -> None:
        """Explicit annotation for a target-side access made through the
        zero-copy ``Window.local_view()`` numpy array.

        ``local_view`` bypasses the segment watch funnel (the ROADMAP's
        documented ``local_view`` tracking gap): numpy reads/writes on the
        returned array are invisible to :meth:`_seg_access`.  Programs
        that keep the zero-copy path call ``Window.note_local`` to tell
        the checker what they touched; the record is classified exactly
        like an attributed ``local_load``/``local_store``."""
        if kind not in ("load", "store"):
            raise ValueError(f"note_local kind must be 'load' or 'store', "
                             f"not {kind!r}")
        if not self.config.track_local:
            return
        from repro.check import epochs

        self.accesses_seen += 1
        if self.truncated:
            return
        rank = win.rank
        rec = Access(
            rank=rank, kind=f"local_{kind}", op=None, win_id=win.win_id,
            target=rank, ranges=((int(offset), int(offset) + int(nbytes)),),
            oseq=self._oseq.get((rank, win.win_id), 0),
            clock=self.clocks[rank].copy(), t_ns=win.ctx.now,
            epoch=epochs.epoch_context(win))
        self._insert(rec)

    def note_transport(self, rank: int, kind: str, nbytes: int) -> None:
        """Transport-level tally (XPMEM copies); report colour only."""
        self.transport_counts[kind] = self.transport_counts.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # shadow store + classification
    # ------------------------------------------------------------------
    def _insert(self, rec: Access) -> None:
        shadow = self._shadow.get((rec.win_id, rec.target))
        if shadow is None:
            shadow = self._shadow[(rec.win_id, rec.target)] = _Shadow()
        for old in shadow.records:
            if not _overlaps(old.ranges, rec.ranges):
                continue
            if _ordered(old, rec):
                continue
            kind = _classify(old, rec)
            if kind is not None:
                self._report(kind, old, rec)
        if self.nrecords >= self.config.max_records:
            self.truncated = True
            return
        shadow.records.append(rec)
        self.nrecords += 1

    def _report(self, kind: str, old: Access, new: Access) -> None:
        sig = (kind, new.win_id, new.target, old.rank, new.rank,
               old.kind, new.kind, old.op, new.op)
        hit = self._sigs.get(sig)
        if hit is not None:
            hit.count += 1
            return
        lo, hi = _first_overlap(old.ranges, new.ranges)
        v = Violation(kind=kind, win_id=new.win_id, target=new.target,
                      lo=lo, hi=hi, first=old, second=new)
        self._sigs[sig] = v
        self.violations.append(v)
        obs = self.obs
        if obs is not None:
            # Violations double as trace instants so Perfetto timelines
            # show where in the schedule each race was observed.
            obs.rank_instant(new.rank, f"race.{kind}", new.t_ns,
                             cat="check",
                             args={"win": new.win_id, "target": new.target,
                                   "peer": old.rank, "lo": lo, "hi": hi})
            obs.metrics.count("check.violations", new.rank)

    def _prune(self, acc: VectorClock) -> None:
        """Drop records ordered before a completed full collective."""
        for shadow in self._shadow.values():
            keep = [r for r in shadow.records if not r.clock.leq(acc)]
            self.pruned += len(shadow.records) - len(keep)
            shadow.records = keep
        self.nrecords = sum(len(s.records) for s in self._shadow.values())

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def stats_snapshot(self) -> dict:
        by_kind: dict[str, int] = {}
        for v in self.violations:
            by_kind[v.kind] = by_kind.get(v.kind, 0) + v.count
        return {
            "violations": sum(v.count for v in self.violations),
            "unique": len(self.violations),
            "by_kind": dict(sorted(by_kind.items())),
            "accesses": self.accesses_seen,
            "live_records": self.nrecords,
            "pruned_records": self.pruned,
            "truncated": self.truncated,
        }


# -- pair predicates -----------------------------------------------------
def _overlaps(a: tuple, b: tuple) -> bool:
    return any(lo1 < hi2 and lo2 < hi1
               for lo1, hi1 in a for lo2, hi2 in b)


def _first_overlap(a: tuple, b: tuple) -> tuple[int, int]:
    for lo1, hi1 in a:
        for lo2, hi2 in b:
            if lo1 < hi2 and lo2 < hi1:
                return max(lo1, lo2), min(hi1, hi2)
    return 0, 0  # pragma: no cover - caller guarantees an overlap


def _ordered(old: Access, new: Access) -> bool:
    """Is ``old`` ordered before ``new`` (recorded later in event order)?"""
    if old.rank == new.rank:
        if old.oseq != new.oseq:
            return True             # a flush/unlock/complete/fence between
        # MPI's default accumulate ordering: same-origin accumulates to
        # the same location are ordered even without completion calls.
        return old.is_acc and new.is_acc
    return old.clock[old.rank] <= new.clock[old.rank]


def _classify(old: Access, new: Access) -> str | None:
    """Violation kind for a concurrent overlapping pair, or None."""
    if old.is_read and new.is_read:
        return None
    if old.is_acc and new.is_acc:
        if old.op == new.op or old.op == "no_op" or new.op == "no_op":
            return None             # same-op (or NO_OP) atomics compose
        return "accumulate-op-mix"
    if old.is_local != new.is_local:
        return "local-remote"
    if old.is_acc or new.is_acc:
        return "atomic-nonatomic"
    if old.rank == new.rank:
        return "same-origin"
    if not old.is_read and not new.is_read:
        return "put-put"
    return "put-get"


# -- capture override ----------------------------------------------------
_CAPTURE: list[RaceChecker] | None = None


def active_check_capture() -> list[RaceChecker] | None:
    """The live checker-capture sink, or None (consulted by World
    construction, mirroring :func:`repro.obs.core.active_capture`)."""
    return _CAPTURE


@contextmanager
def check_capture() -> Iterator[list[RaceChecker]]:
    """Attach a checker to every world built inside the block.

    This is how ``repro check path/to/example.py`` instruments example
    scripts that call :func:`~repro.runtime.job.run_spmd` themselves:
    the script runs unmodified and every run's checker lands in the
    sink.  Nested captures keep the outer sink."""
    global _CAPTURE
    if _CAPTURE is not None:
        yield _CAPTURE
        return
    sink: list[RaceChecker] = []
    _CAPTURE = sink
    try:
        yield sink
    finally:
        _CAPTURE = None
