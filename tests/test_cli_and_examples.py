"""The CLI and the example scripts must stay runnable."""

import pathlib
import runpy
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples"


def _cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300,
                          cwd=REPO)


def test_cli_demo():
    out = _cli("demo")
    assert out.returncode == 0
    assert "atomic ticket" in out.stdout


def test_cli_models():
    out = _cli("models")
    assert out.returncode == 0
    assert "P_put" in out.stdout and "P:{s} -> T" in out.stdout


def test_cli_calibrate():
    out = _cli("calibrate")
    assert out.returncode == 0
    assert "paper 0.16 ns/B" in out.stdout


def test_cli_figure_6c():
    out = _cli("figure", "6c")
    assert out.returncode == 0
    assert "legend:" in out.stdout


def test_cli_unknown_figure():
    out = _cli("figure", "99")
    assert out.returncode != 0


def test_cli_trace_writes_chrome_json(tmp_path):
    path = tmp_path / "putget.json"
    out = _cli("trace", "putget", "--seed", "11", "--out", str(path))
    assert out.returncode == 0
    assert str(path) in out.stdout
    import json

    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert any(ev.get("name") == "dmapp.put" for ev in doc["traceEvents"])


def test_cli_report():
    out = _cli("report", "locks", "--seed", "2")
    assert out.returncode == 0
    assert "where simulated time goes (by span)" in out.stdout
    assert "lock_hold_ns" in out.stdout


def test_cli_trace_unknown_workload():
    out = _cli("trace", "nosuch")
    assert out.returncode != 0


@pytest.mark.parametrize("script", [
    "quickstart.py", "dsde_demo.py", "performance_models.py",
])
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_example_fft_correctness(capsys):
    runpy.run_path(str(EXAMPLES / "fft_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "numpy.fft.fftn" in out
    assert "vs nonblocking MPI" in out


def test_example_milc(capsys):
    runpy.run_path(str(EXAMPLES / "milc_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "identical solution" in out


def test_example_hashtable(capsys):
    runpy.run_path(str(EXAMPLES / "hashtable_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "verified" in out
