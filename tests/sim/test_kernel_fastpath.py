"""The inlined fast run loop vs the legacy step loop.

``Environment.run(fast=True)`` (the default) must process the exact same
event schedule as the reference ``step()`` loop -- same event count, same
final clock, same process return values -- while recycling ``yield
env.timeout(d)`` objects and skipping tracer/watchdog branches.  These
tests pin the bit-identity contract and the recycling/detach invariants
DESIGN.md documents.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import URGENT, Environment, Timeout
from repro.sim.trace import Tracer


def _mixed_workload(env, log):
    """Timeouts, bare events, conditions, priorities and interrupts."""

    def ticker(name, period, n):
        for i in range(n):
            yield env.timeout(period)
            log.append((env.now, name, i))

    def waiter(ev):
        got = yield ev
        log.append((env.now, "waiter", got))
        t1, t2 = env.timeout(5), env.timeout(50)
        first = yield env.any_of([t1, t2])
        log.append((env.now, "anyof", first))
        yield env.all_of([env.timeout(3), env.timeout(7)])
        log.append((env.now, "allof", None))

    def firer(ev):
        yield env.timeout(13)
        ev.succeed("payload", delay=2, priority=URGENT)
        log.append((env.now, "fired", None))

    ev = env.event("ev")
    env.process(ticker("a", 10, 8), name="a")
    env.process(ticker("b", 7, 8), name="b")
    env.process(waiter(ev), name="waiter")
    env.process(firer(ev), name="firer")


def _run(fast):
    env = Environment()
    log = []
    _mixed_workload(env, log)
    env.run(fast=fast)
    return log, env.now, env.events_processed


def test_fast_matches_legacy_bit_identical():
    fast_log, fast_now, fast_events = _run(fast=True)
    legacy_log, legacy_now, legacy_events = _run(fast=False)
    assert fast_log == legacy_log
    assert fast_now == legacy_now
    assert fast_events == legacy_events


def test_fast_matches_legacy_with_failures():
    def build(env, log):
        def bad():
            yield env.timeout(5)
            raise ValueError("boom")

        def good():
            yield env.timeout(20)
            log.append(env.now)

        return [env.process(bad(), name="bad"),
                env.process(good(), name="good")]

    outcomes = []
    for fast in (True, False):
        env = Environment(strict=False)
        log = []
        procs = build(env, log)
        env.run(fast=fast)
        outcomes.append((log, env.now, env.events_processed,
                         [(p.ok, type(p.value).__name__) for p in procs]))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][3][0] == (False, "ValueError")


def test_timeouts_recycled_on_fast_path():
    env = Environment()

    def spin():
        for _ in range(100):
            yield env.timeout(1)

    env.process(spin(), name="spin")
    env.run(fast=True)
    # The yield-timeout pattern must feed the freelist ...
    assert env._timeout_pool
    recycled = env._timeout_pool[-1]
    # ... and a later request must reuse an instance, fully reset (a
    # Timeout is scheduled -- hence triggered -- from birth, with no
    # callbacks until somebody yields it).
    t = env.timeout(4)
    assert t is recycled
    assert isinstance(t, Timeout)
    assert t.callbacks == []
    assert t.triggered and t._ok


def test_legacy_path_never_recycles():
    env = Environment()

    def spin():
        for _ in range(10):
            yield env.timeout(1)

    env.process(spin(), name="spin")
    env.run(fast=False)
    assert env._timeout_pool == []


def test_shared_timeout_not_recycled():
    """A timeout with more than the single process callback (here: also
    feeding an AllOf) must never enter the freelist."""
    env = Environment()

    def waiter():
        t = env.timeout(10)
        yield env.all_of([t, env.timeout(20)])

    env.process(waiter(), name="w")
    env.run(fast=True)
    assert env._timeout_pool == []


def test_tracer_disables_fast_path():
    env = Environment()
    env.tracer = Tracer()

    def spin():
        for _ in range(5):
            yield env.timeout(2)

    env.process(spin(), name="spin")
    env.run(fast=True)         # must silently take the step loop
    assert len(env.tracer.records) == env.events_processed
    assert env._timeout_pool == []


def test_anyof_detaches_loser_callbacks(env):
    winner = env.timeout(5)
    loser = env.timeout(500)

    def waiter():
        yield env.any_of([winner, loser])

    env.process(waiter(), name="w")
    env.run(until=100)
    # After the condition fired, the losing child must not keep a
    # reference to the condition's _on_fire (callback churn + leak).
    assert loser.callbacks == []


def test_condition_with_fired_children_detaches(env):
    done = env.event()
    done.succeed(1)
    pending = env.timeout(50)
    env.run(until=1)           # process `done`
    cond = env.any_of([done, pending])
    assert cond.triggered
    assert pending.callbacks == []


def test_max_events_backstop_on_fast_path():
    env = Environment(max_events=500)

    def forever():
        while True:
            yield env.timeout(1)

    env.process(forever(), name="loop")
    with pytest.raises(SimulationError, match="max_events"):
        env.run(fast=True)
    assert env.events_processed >= 500


def test_run_until_time_fast_matches_legacy():
    results = []
    for fast in (True, False):
        env = Environment()
        log = []

        def spin():
            while True:
                yield env.timeout(9)
                log.append(env.now)

        env.process(spin(), name="spin")
        env.run(until=100, fast=fast)
        results.append((log, env.now, env.events_processed))
    assert results[0] == results[1]
