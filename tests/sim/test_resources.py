"""Resource, BusyChannel, Store."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.resources import BusyChannel, Resource, Store


def test_resource_fifo_order(env):
    res = Resource(env, capacity=1)
    order = []

    def user(i, hold):
        req = res.request()
        yield req
        order.append(("acq", i, env.now))
        yield env.timeout(hold)
        res.release()

    for i in range(3):
        env.process(user(i, 10))
    env.run()
    assert order == [("acq", 0, 0), ("acq", 1, 10), ("acq", 2, 20)]


def test_resource_capacity_two(env):
    res = Resource(env, capacity=2)
    acquired = []

    def user(i):
        yield res.request()
        acquired.append((i, env.now))
        yield env.timeout(5)
        res.release()

    for i in range(4):
        env.process(user(i))
    env.run()
    times = [t for _i, t in acquired]
    assert times == [0, 0, 5, 5]


def test_resource_release_without_request(env):
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity(env):
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_busy_channel_serializes(env):
    ch = BusyChannel(env)
    s1, e1 = ch.occupy(100)
    s2, e2 = ch.occupy(50)
    assert (s1, e1) == (0, 100)
    assert (s2, e2) == (100, 150)
    assert ch.total_busy == 150


def test_busy_channel_earliest(env):
    ch = BusyChannel(env)
    s, e = ch.occupy(10, earliest=500)
    assert (s, e) == (500, 510)
    # a later request with a lower earliest still queues after
    s2, e2 = ch.occupy(10, earliest=100)
    assert s2 == 510


def test_busy_channel_utilization(env):
    ch = BusyChannel(env)
    ch.occupy(30)

    def prog():
        yield env.timeout(60)

    env.process(prog())
    env.run()
    assert ch.utilization() == pytest.approx(0.5)


def test_store_fifo(env):
    store = Store(env)
    store.put("a")
    store.put("b")
    got = []

    def consumer():
        got.append((yield store.get()))
        got.append((yield store.get()))

    env.process(consumer())
    env.run()
    assert got == ["a", "b"]
    assert len(store) == 0


def test_store_blocking_get(env):
    store = Store(env)
    got = {}

    def consumer():
        got["v"] = yield store.get()
        got["t"] = env.now

    def producer():
        yield env.timeout(25)
        store.put(99)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == {"v": 99, "t": 25}


def test_store_peek(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.peek_all() == [1, 2]
