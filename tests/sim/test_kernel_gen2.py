"""Kernel generation 2: golden bit-identity, batched delivery, tie-breaks.

Three contracts from DESIGN.md's "Kernel generation 2" section:

* the front-slot scheduler (``run(fast=True)``, the default) and the
  pure-heap legacy oracle (``SimConfig(scheduler="legacy")``) process
  the exact same ``(when, priority, seq)`` schedule -- asserted end to
  end over every demo workload and over a faulty (drop/corrupt/delay)
  run, and pinned against the pre-gen-2 golden schedules;
* batched same-edge delivery never changes per-packet delivery *times*
  or their order -- it only merges same-tick kernel events into one
  carrier (so batched runs process strictly fewer events when batches
  form);
* same-tick events drain in ``(priority, seq)`` FIFO order across the
  front-slot/heap boundary, including urgent events scheduled while the
  tick is already draining.
"""

import pytest

from repro.config import (
    FaultConfig,
    FaultPlan,
    MachineConfig,
    SimConfig,
)
from repro.machine.network import Network
from repro.machine.params import GeminiParams
from repro.machine.topology import RankMap, Torus3D
from repro.obs.workloads import WORKLOADS
from repro.runtime.job import run_spmd
from repro.sim.kernel import NORMAL, URGENT, Environment

#: Pre-gen-2 golden schedules at seed 11, 4 ranks on one node (captured
#: before the calendar scheduler / batched delivery existed; the same
#: numbers are pinned by tests/obs/test_obs_integration.py).
GOLDEN = {
    "putget": (11835, 502),
    "locks": (22876, 566),
    "fence": (33492, 490),
    "pscw": (16611, 302),
}


def _run(name, *, scheduler="gen2", batch=True, faults=None, seed=11,
         rpn=4):
    return run_spmd(
        WORKLOADS[name], 4,
        machine=MachineConfig(ranks_per_node=rpn, batch_delivery=batch),
        sim=SimConfig(seed=seed, scheduler=scheduler),
        faults=faults or FaultConfig())


def _sig(res):
    return (res.sim_time_ns, res.events_processed, res.returns)


# ---------------------------------------------------------------------------
# wheel-vs-heap bit identity
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_gen2_matches_legacy_schedule(name):
    assert _sig(_run(name)) == _sig(_run(name, scheduler="legacy")), \
        f"{name}: gen2 fast loop diverged from the pure-heap oracle"


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_legacy_and_unbatched_reproduce_golden_pins(name):
    """Every scheduler/batching combination reproduces the pre-gen-2
    golden schedule -- the refactor changed zero delivery times."""
    t_ns, events = GOLDEN[name]
    for scheduler in ("gen2", "legacy"):
        for batch in (True, False):
            res = _run(name, scheduler=scheduler, batch=batch)
            assert (res.sim_time_ns, res.events_processed) == (t_ns, events), \
                f"{name}: scheduler={scheduler} batch={batch} drifted " \
                f"from golden ({res.sim_time_ns}, {res.events_processed})"


def test_gen2_matches_legacy_faulty_run():
    """Drops, corruption and latency spikes exercise the retransmit and
    stall paths; the schedule must still be scheduler-independent."""
    plan = FaultPlan(drop_prob=0.2, corrupt_prob=0.05,
                     delay_prob=0.1, delay_ns=5_000)
    kw = dict(faults=FaultConfig(plan=plan), seed=13, rpn=1)
    fast = _run("putget", **kw)
    legacy = _run("putget", scheduler="legacy", **kw)
    assert _sig(fast) == _sig(legacy)
    assert fast.stats["retransmits"] > 0  # the faults actually fired


def test_faulty_run_batched_equals_unbatched():
    plan = FaultPlan(drop_prob=0.2, delay_prob=0.1, delay_ns=5_000)
    kw = dict(faults=FaultConfig(plan=plan), seed=13, rpn=1)
    assert _sig(_run("putget", **kw)) == _sig(_run("putget", batch=False, **kw))


def _crash_prog(ctx):
    """Fence epochs across a fail-stop crash (the fault-matrix cell):
    survivors get structured EpochErrors, the dead rank an Interrupt."""
    win = yield from ctx.rma.win_allocate(256)
    for _ in range(3):
        yield from win.fence()
    return "ok"


def test_crash_run_gen2_matches_legacy():
    """A fail-stop node crash mid-run (interrupts, quarantine errors,
    reaper process) must also be scheduler- and batching-independent."""
    from repro.config import NodeCrash

    plan = FaultPlan(crashes=(NodeCrash(node=3, time_ns=20_000),))

    def go(scheduler="gen2", batch=True):
        return run_spmd(
            _crash_prog, 4,
            machine=MachineConfig(ranks_per_node=1, batch_delivery=batch),
            sim=SimConfig(seed=13, scheduler=scheduler),
            faults=FaultConfig(plan=plan))

    fast = go()
    sig = (fast.sim_time_ns, fast.events_processed,
           [type(r).__name__ for r in fast.returns])
    for other in (go(scheduler="legacy"), go(batch=False)):
        assert sig == (other.sim_time_ns, other.events_processed,
                       [type(r).__name__ for r in other.returns])
    assert any(isinstance(r, BaseException) for r in fast.returns)


# ---------------------------------------------------------------------------
# batched delivery property: identical per-packet times, fewer events
# ---------------------------------------------------------------------------
def _burst_net(batch):
    """A network whose ejection is free: every same-edge packet issued at
    the same instant lands on the same tick, forcing multi-packet
    batches (the demo workloads serialize on ejection service and never
    collide; zeroing the service params is how batches form at all)."""
    env = Environment()
    params = GeminiParams(o_eject=0.0, nic_packet_gap=0.0,
                          amo_gap=0.0, amo_service=0.0)
    torus = Torus3D((4, 1, 1))
    rm = RankMap(nranks=4, ranks_per_node=1)
    net = Network(env, torus, rm, params, batch_delivery=batch)
    return env, net


def _burst(batch, npkts=16, two_edges=False):
    env, net = _burst_net(batch)
    deliveries = []
    times = []
    for i in range(npkts):
        # Injection is not charged, so all same-edge packets issued at
        # t=0 share one delivery tick (one multi-packet batch per edge).
        src = 2 if two_edges and i % 2 else 0
        t, _ev = net.packet(src, 1, 8, charge_injection=False,
                            on_deliver=lambda now, i=i, s=src:
                            deliveries.append((now, s, i)))
        times.append(t)
    env.run()
    return times, deliveries, env.events_processed


def test_batched_delivery_bit_identical_per_edge():
    """One edge, one tick: the full (time, src, index) delivery sequence
    is identical batched vs unbatched, and 16 per-packet kernel events
    collapse into 1 carrier."""
    t_on, d_on, ev_on = _burst(True)
    t_off, d_off, ev_off = _burst(False)
    assert t_on == t_off          # computed delivery times
    assert d_on == d_off          # observed delivery sequence
    assert ev_off - ev_on == 16 - 1


def test_batched_delivery_times_invariant_across_edges():
    """Two edges landing on the same tick: per-packet delivery TIMES are
    identical and each edge's packets fire in issue order; only the
    cross-edge interleaving within the tick may differ (each carrier
    fires its whole batch -- documented in DESIGN.md)."""
    t_on, d_on, ev_on = _burst(True, two_edges=True)
    t_off, d_off, ev_off = _burst(False, two_edges=True)
    assert t_on == t_off
    assert sorted(d_on) == sorted(d_off)  # same (time, src, idx) multiset
    assert ev_off - ev_on == 16 - 2       # one carrier per (edge, tick)
    same_edge = {}
    for now, src, i in d_on:
        same_edge.setdefault(src, []).append(i)
    for ids in same_edge.values():
        assert ids == sorted(ids), "batch fired out of issue order"


# ---------------------------------------------------------------------------
# tie-break audit: same-tick (priority, seq) FIFO across the front slot
# ---------------------------------------------------------------------------
def _same_tick_run(fast):
    """Many events on one tick, mixed priorities, scheduled in an order
    that forces front-slot evictions (later-but-smaller entries)."""
    env = Environment()
    order = []

    def note(tag):
        return lambda ev: order.append((env.now, tag))

    # Schedule NORMAL first, then URGENT (evicts the front slot), then
    # more NORMAL -- all at tick 10; plus a lone later tick.
    for i in range(3):
        ev = env.event(name=f"n{i}")
        ev.callbacks.append(note(("n", i)))
        ev.succeed(delay=10, priority=NORMAL)
    for i in range(2):
        ev = env.event(name=f"u{i}")
        ev.callbacks.append(note(("u", i)))
        ev.succeed(delay=10, priority=URGENT)
    late = env.event(name="late")
    late.callbacks.append(note(("late", 0)))
    late.succeed(delay=20)
    env.run(fast=fast)
    return order


def test_same_tick_priority_seq_fifo():
    expected = [(10, ("u", 0)), (10, ("u", 1)),
                (10, ("n", 0)), (10, ("n", 1)), (10, ("n", 2)),
                (20, ("late", 0))]
    assert _same_tick_run(fast=True) == expected
    assert _same_tick_run(fast=False) == expected


def _urgent_mid_drain_run(fast):
    """An URGENT event scheduled *while its tick is draining* must fire
    before the remaining NORMAL events of that tick (priority beats seq)
    -- this crosses the front-slot/heap boundary mid-drain."""
    env = Environment()
    order = []

    def fire_urgent(_ev):
        order.append("n0")
        u = env.event(name="u")
        u.callbacks.append(lambda ev: order.append("u"))
        u.succeed(delay=0, priority=URGENT)

    first = env.event(name="n0")
    first.callbacks.append(fire_urgent)
    first.succeed(delay=5, priority=NORMAL)
    for i in (1, 2):
        ev = env.event(name=f"n{i}")
        ev.callbacks.append(lambda _e, i=i: order.append(f"n{i}"))
        ev.succeed(delay=5, priority=NORMAL)
    env.run(fast=fast)
    return order


def test_urgent_scheduled_mid_drain_orders_by_priority_then_seq():
    expected = ["n0", "u", "n1", "n2"]
    assert _urgent_mid_drain_run(fast=True) == expected
    assert _urgent_mid_drain_run(fast=False) == expected


def test_same_tick_fifo_across_rollover():
    """FIFO within a priority class survives a front-slot eviction by an
    earlier-tick entry: seq order is global, not per-container."""
    env = Environment()
    order = []
    # Tick 10 normals (land in heap/front), then a tick-5 urgent that
    # evicts the front slot, then more tick-10 normals.
    for i in range(2):
        ev = env.event(name=f"a{i}")
        ev.callbacks.append(lambda _e, i=i: order.append(f"a{i}"))
        ev.succeed(delay=10)
    early = env.event(name="early")
    early.callbacks.append(lambda _e: order.append("early"))
    early.succeed(delay=5)
    for i in range(2):
        ev = env.event(name=f"b{i}")
        ev.callbacks.append(lambda _e, i=i: order.append(f"b{i}"))
        ev.succeed(delay=10)
    env.run(fast=True)
    assert order == ["early", "a0", "a1", "b0", "b1"]
    env2 = Environment()
    order2 = []
    for i in range(2):
        ev = env2.event(name=f"a{i}")
        ev.callbacks.append(lambda _e, i=i: order2.append(f"a{i}"))
        ev.succeed(delay=10)
    early = env2.event(name="early")
    early.callbacks.append(lambda _e: order2.append("early"))
    early.succeed(delay=5)
    for i in range(2):
        ev = env2.event(name=f"b{i}")
        ev.callbacks.append(lambda _e, i=i: order2.append(f"b{i}"))
        ev.succeed(delay=10)
    env2.run(fast=False)
    assert order2 == order
