"""Unit tests for the DES kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.kernel import AllOf, AnyOf, Environment, Interrupt


def test_clock_starts_at_zero(env):
    assert env.now == 0


def test_timeout_advances_clock(env):
    done = {}

    def prog():
        yield env.timeout(100)
        done["t"] = env.now

    env.process(prog())
    env.run()
    assert done["t"] == 100
    assert env.now == 100


def test_zero_delay_timeout(env):
    def prog():
        yield env.timeout(0)
        return env.now

    p = env.process(prog())
    env.run()
    assert p.value == 0


def test_negative_timeout_rejected(env):
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value(env):
    def prog():
        yield env.timeout(5)
        return 42

    p = env.process(prog())
    assert env.run(p) == 42


def test_sequential_timeouts_accumulate(env):
    def prog():
        yield env.timeout(10)
        yield env.timeout(20)
        yield env.timeout(30)
        return env.now

    p = env.process(prog())
    assert env.run(p) == 60


def test_yield_from_subroutine(env):
    def sub():
        yield env.timeout(7)
        return "sub-result"

    def prog():
        val = yield from sub()
        return (val, env.now)

    p = env.process(prog())
    assert env.run(p) == ("sub-result", 7)


def test_two_processes_interleave(env):
    order = []

    def a():
        yield env.timeout(10)
        order.append("a10")
        yield env.timeout(20)
        order.append("a30")

    def b():
        yield env.timeout(15)
        order.append("b15")
        yield env.timeout(20)
        order.append("b35")

    env.process(a())
    env.process(b())
    env.run()
    assert order == ["a10", "b15", "a30", "b35"]


def test_same_time_fifo_order(env):
    """Events at the same instant fire in scheduling order."""
    order = []

    def make(i):
        def prog():
            yield env.timeout(50)
            order.append(i)
        return prog

    for i in range(10):
        env.process(make(i)())
    env.run()
    assert order == list(range(10))


def test_event_succeed_wakes_waiter(env):
    ev = env.event()
    got = {}

    def waiter():
        val = yield ev
        got["val"] = val

    def firer():
        yield env.timeout(30)
        ev.succeed("payload")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got["val"] == "payload"


def test_event_double_trigger_rejected(env):
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter(env):
    ev = env.event()
    caught = {}

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught["exc"] = exc

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert isinstance(caught["exc"], ValueError)


def test_yield_already_processed_event_continues(env):
    ev = env.event()

    def prog():
        yield env.timeout(10)
        # ev fired at t=1; yielding it now must not block.
        val = yield ev
        return (val, env.now)

    def firer():
        yield env.timeout(1)
        ev.succeed("early")

    p = env.process(prog())
    env.process(firer())
    assert env.run(p) == ("early", 10)


def test_wait_on_process(env):
    def child():
        yield env.timeout(25)
        return "child-val"

    def parent():
        c = env.process(child())
        val = yield c
        return (val, env.now)

    p = env.process(parent())
    assert env.run(p) == ("child-val", 25)


def test_allof_waits_for_all(env):
    def prog():
        t1 = env.timeout(10, value="a")
        t2 = env.timeout(30, value="b")
        vals = yield AllOf(env, [t1, t2])
        return (vals, env.now)

    p = env.process(prog())
    vals, t = env.run(p)
    assert vals == ["a", "b"]
    assert t == 30


def test_allof_empty_fires_immediately(env):
    def prog():
        vals = yield AllOf(env, [])
        return (vals, env.now)

    p = env.process(prog())
    assert env.run(p) == ([], 0)


def test_anyof_fires_on_first(env):
    def prog():
        t1 = env.timeout(10, value="fast")
        t2 = env.timeout(30, value="slow")
        val = yield AnyOf(env, [t1, t2])
        return (val, env.now)

    p = env.process(prog())
    assert env.run(p) == ("fast", 10)


def test_allof_with_already_fired_children(env):
    def prog():
        t1 = env.timeout(1, value="x")
        yield env.timeout(5)
        vals = yield AllOf(env, [t1, env.timeout(2, value="y")])
        return vals

    p = env.process(prog())
    assert env.run(p) == ["x", "y"]


def test_deadlock_detected(env):
    def prog():
        yield env.event()  # never fires

    env.process(prog())
    with pytest.raises(DeadlockError):
        env.run()


def test_deadlock_counts_blocked(env):
    def prog():
        yield env.event()

    for _ in range(3):
        env.process(prog())
    with pytest.raises(DeadlockError) as exc:
        env.run()
    assert exc.value.blocked == 3


def test_run_until_time(env):
    ticks = []

    def prog():
        while True:
            yield env.timeout(10)
            ticks.append(env.now)

    env.process(prog())
    env.run(until=35)
    assert ticks == [10, 20, 30]
    assert env.now == 35


def test_strict_mode_propagates_exceptions(env):
    def prog():
        yield env.timeout(1)
        raise RuntimeError("app bug")

    env.process(prog())
    with pytest.raises(RuntimeError, match="app bug"):
        env.run()


def test_nonstrict_mode_records_failure():
    env = Environment(strict=False)

    def prog():
        yield env.timeout(1)
        raise RuntimeError("app bug")

    p = env.process(prog())
    env.run()
    assert not p.ok
    assert isinstance(p.value, RuntimeError)


def test_interrupt(env):
    log = {}

    def victim():
        try:
            yield env.timeout(1000)
        except Interrupt as i:
            log["cause"] = i.cause
            log["when"] = env.now

    def killer(v):
        yield env.timeout(50)
        v.interrupt("stop")

    v = env.process(victim())
    env.process(killer(v))
    env.run()
    assert log == {"cause": "stop", "when": 50}


def test_interrupt_dead_process_rejected(env):
    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_max_events_backstop():
    env = Environment(max_events=100)

    def spin():
        while True:
            yield env.timeout(1)

    env.process(spin())
    with pytest.raises(SimulationError, match="max_events"):
        env.run()


def test_process_requires_generator(env):
    def not_a_gen():
        return 3

    with pytest.raises(SimulationError):
        env.process(not_a_gen())  # type: ignore[arg-type]


def test_yield_non_event_raises(env):
    def prog():
        yield 42  # type: ignore[misc]

    env.process(prog())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_events_processed_counter(env):
    def prog():
        for _ in range(5):
            yield env.timeout(1)

    env.process(prog())
    env.run()
    # 1 bootstrap + 5 timeouts + 1 process-completion event
    assert env.events_processed == 7
