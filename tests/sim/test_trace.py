"""Tracer and operation counters."""

from repro.sim.kernel import Environment
from repro.sim.trace import OpCounters, Tracer


def test_tracer_records_events():
    env = Environment()
    env.tracer = Tracer()

    def prog():
        yield env.timeout(5)
        yield env.timeout(5)

    env.process(prog())
    env.run()
    assert len(env.tracer.records) >= 3
    assert all(isinstance(t, int) for t, _name in env.tracer.records)


def test_tracer_limit():
    env = Environment()
    env.tracer = Tracer(limit=2)

    def prog():
        for _ in range(10):
            yield env.timeout(1)

    env.process(prog())
    env.run()
    assert len(env.tracer.records) == 2


def test_op_counters():
    c = OpCounters()
    c.count_issue(0, "put", 64)
    c.count_issue(0, "put", 64)
    c.count_issue(1, "get", 8)
    c.count_service(2)
    c.add_control_memory(0, 70)
    c.add_control_memory(1, 5)
    assert c.messages == 3
    assert c.bytes_moved == 136
    assert c.max_remote_ops() == 2
    assert c.max_control_memory() == 70
    assert c.nic_ops[2] == 1
    snap = c.snapshot()
    assert snap["by_kind"] == {"put": 2, "get": 1}


def test_op_counters_empty():
    c = OpCounters()
    assert c.max_remote_ops() == 0
    assert c.max_control_memory() == 0
