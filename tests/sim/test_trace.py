"""Tracer, span log, and operation counters."""

from repro.sim.kernel import Environment
from repro.sim.trace import OpCounters, SpanLog, SpanRecord, Tracer


def test_tracer_records_events():
    env = Environment()
    env.tracer = Tracer()

    def prog():
        yield env.timeout(5)
        yield env.timeout(5)

    env.process(prog())
    env.run()
    assert len(env.tracer.records) >= 3
    assert all(isinstance(t, int) for t, _name in env.tracer.records)


def test_tracer_limit():
    env = Environment()
    env.tracer = Tracer(limit=2)

    def prog():
        for _ in range(10):
            yield env.timeout(1)

    env.process(prog())
    env.run()
    assert len(env.tracer.records) == 2
    assert env.tracer.dropped > 0


def test_tracer_fault_counts_aggregate_past_limit():
    tr = Tracer(limit=1)
    tr.record_fault(0, "drop")
    tr.record_fault(5, "drop")
    tr.record_fault(9, "retransmit", "rank0->rank1 #2")
    assert len(tr.records) == 1
    assert tr.dropped == 2
    # The record stream is bounded; the statistics are not.
    assert tr.fault_counts == {"drop": 2, "retransmit": 1}


def test_span_log_add_and_instant():
    log = SpanLog()
    log.add("rank", 3, "lock.hold", "lock", 100, 250,
            args={"target": 1, "attempt": 2})
    log.instant("nic", 0, "pkt", "nic", 400)
    assert len(log) == 2
    span, mark = log.spans
    assert span == SpanRecord("rank", 3, "lock.hold", "lock", 100, 150,
                              (("attempt", 2), ("target", 1)))
    assert span.end_ns() == 250
    assert mark.dur_ns == 0 and mark.start_ns == 400


def test_span_log_clamps_negative_duration():
    log = SpanLog()
    log.add("rank", 0, "x", "c", 500, 400)
    assert log.spans[0].dur_ns == 0


def test_span_log_limit():
    log = SpanLog(limit=3)
    for i in range(10):
        log.add("rank", 0, f"s{i}", "c", i, i + 1)
    assert len(log) == 3
    assert log.dropped == 7
    assert [s.name for s in log.spans] == ["s0", "s1", "s2"]


def test_op_counters():
    c = OpCounters()
    c.count_issue(0, "put", 64)
    c.count_issue(0, "put", 64)
    c.count_issue(1, "get", 8)
    c.count_service(2)
    c.add_control_memory(0, 70)
    c.add_control_memory(1, 5)
    assert c.messages == 3
    assert c.bytes_moved == 136
    assert c.max_remote_ops() == 2
    assert c.max_control_memory() == 70
    assert c.nic_ops[2] == 1
    snap = c.snapshot()
    assert snap["by_kind"] == {"put": 2, "get": 1}


def test_op_counters_empty():
    c = OpCounters()
    assert c.max_remote_ops() == 0
    assert c.max_control_memory() == 0
