"""Torus topology and rank placement."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.machine.topology import RankMap, Torus3D


def test_coords_roundtrip():
    t = Torus3D((4, 3, 2))
    for n in range(t.nnodes):
        assert t.node_at(*t.coords(n)) == n


def test_coords_out_of_range():
    t = Torus3D((2, 2, 2))
    with pytest.raises(ValueError):
        t.coords(8)
    with pytest.raises(ValueError):
        t.coords(-1)


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        Torus3D((0, 1, 1))


def test_hops_basic():
    t = Torus3D((4, 4, 4))
    assert t.hops(0, 0) == 0
    a = t.node_at(0, 0, 0)
    b = t.node_at(1, 0, 0)
    assert t.hops(a, b) == 1
    c = t.node_at(3, 0, 0)  # wraparound: distance 1, not 3
    assert t.hops(a, c) == 1
    d = t.node_at(2, 2, 2)
    assert t.hops(a, d) == 6


def test_diameter():
    assert Torus3D((4, 4, 4)).diameter() == 6
    assert Torus3D((1, 1, 1)).diameter() == 0
    assert Torus3D((5, 1, 1)).diameter() == 2


@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
       st.data())
def test_hops_metric_properties(x, y, z, data):
    """hops is a metric: symmetric, zero iff equal, triangle inequality."""
    t = Torus3D((x, y, z))
    n = t.nnodes
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    assert t.hops(a, b) == t.hops(b, a)
    assert (t.hops(a, b) == 0) == (a == b)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    assert t.hops(a, b) <= t.diameter()


def test_rank_map_block_placement():
    rm = RankMap(nranks=70, ranks_per_node=32)
    assert rm.nnodes == 3
    assert rm.node_of(0) == 0
    assert rm.node_of(31) == 0
    assert rm.node_of(32) == 1
    assert rm.node_of(69) == 2
    assert list(rm.ranks_on(2)) == [64, 65, 66, 67, 68, 69]
    assert rm.same_node(0, 31)
    assert not rm.same_node(31, 32)


def test_rank_map_errors():
    rm = RankMap(nranks=4, ranks_per_node=2)
    with pytest.raises(ValueError):
        rm.node_of(4)
    with pytest.raises(ValueError):
        rm.ranks_on(5)
    with pytest.raises(ValueError):
        RankMap(nranks=0, ranks_per_node=2)


def test_machine_config_derive_torus():
    cfg = MachineConfig(ranks_per_node=32)
    shape = cfg.derive_torus(32 * 64)  # 64 nodes
    x, y, z = shape
    assert x * y * z >= 64


@pytest.mark.parametrize("ranks_per_node", [1, 2, 32])
@pytest.mark.parametrize("nranks", [1, 2, 3, 7, 8, 31, 32, 33, 63, 64, 100,
                                    512, 1000, 4096, 10_000])
def test_derived_torus_fits_node_count(nranks, ranks_per_node):
    """Every derived torus must hold all nodes the rank count needs, stay
    near-cubic (x >= y >= z) and have strictly positive dimensions."""
    cfg = MachineConfig(ranks_per_node=ranks_per_node)
    x, y, z = cfg.derive_torus(nranks)
    assert x >= 1 and y >= 1 and z >= 1
    assert x * y * z >= cfg.nodes_for(nranks)
    assert x >= y >= z


def test_machine_config_explicit_torus():
    cfg = MachineConfig(torus_shape=(8, 8, 8))
    assert cfg.derive_torus(10_000) == (8, 8, 8)


def test_instructions_to_ns():
    cfg = MachineConfig(cpu_ghz=2.3)
    assert cfg.instructions_to_ns(173) == pytest.approx(75.2, rel=0.01)
