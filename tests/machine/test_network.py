"""Network engine: packet timing, channel separation, contention."""

import pytest

from repro.machine.network import Network
from repro.machine.params import GeminiParams
from repro.machine.topology import RankMap, Torus3D
from repro.sim.kernel import Environment


def _net(nnodes=4, params=None):
    env = Environment()
    torus = Torus3D((nnodes, 1, 1))
    rm = RankMap(nranks=nnodes, ranks_per_node=1)
    return env, Network(env, torus, rm, params or GeminiParams())


def test_packet_delivery_time_uncontended():
    env, net = _net()
    p = net.params
    t, ev = net.packet(0, 1, 8)
    expected = (max(p.nic_packet_gap, 8 * p.gap_per_byte)
                + p.nic_latency + p.wire_latency(1))
    assert abs(t - expected) <= max(p.o_eject, 2)+ p.o_eject
    env.run(until=ev)
    assert ev.triggered


def test_packet_bandwidth_paid_once():
    """Cut-through: a large packet's latency has ONE bandwidth term."""
    env, net = _net()
    p = net.params
    n = 1 << 20
    t, _ = net.packet(0, 1, n)
    one_bw = n * p.gap_per_byte
    assert t < one_bw * 1.2 + 2000
    assert t > one_bw


def test_on_deliver_runs_at_delivery_time():
    env, net = _net()
    seen = {}
    t, ev = net.packet(0, 2, 64, on_deliver=lambda now: seen.setdefault("t", now))
    env.run()
    assert seen["t"] == t


def test_ejection_contention_serializes():
    """Two senders to one target: second delivery queues behind first."""
    env, net = _net()
    t1, _ = net.packet(1, 0, 4096)
    t2, _ = net.packet(2, 0, 4096)
    assert t2 > t1
    assert t2 - t1 >= 4096 * net.params.gap_per_byte * 0.9


def test_amo_engine_separate_from_ejection():
    env, net = _net()
    t_data, _ = net.packet(1, 0, 1 << 16)
    t_amo, _ = net.packet(2, 0, 16, is_amo=True)
    # the AMO is not delayed by the bulk packet's ejection occupancy
    assert t_amo < t_data


def test_fma_bte_channel_split():
    """Small packets do not queue behind bulk ones at injection."""
    env, net = _net()
    for _ in range(4):
        net.packet(0, 1, 512 * 1024)  # saturate BTE
    t_small, _ = net.packet(0, 1, 16)  # FMA path
    p = net.params
    assert t_small < p.nic_latency + p.wire_latency(1) + 500


def test_bulk_queues_on_bte():
    env, net = _net()
    t1, _ = net.packet(0, 1, 512 * 1024)
    t2, _ = net.packet(0, 1, 512 * 1024)
    assert t2 >= t1 + 512 * 1024 * net.params.gap_per_byte * 0.9


def test_injection_admit_fifo():
    env, net = _net()
    big = 64 * 1024
    admits = []
    for _ in range(net.params.fifo_depth + 4):
        _s, e = net.occupy_injection(0, big)
        admits.append(net.injection_admit(0, e, big))
    assert all(a == 0 for a in admits[:net.params.fifo_depth])
    assert admits[-1] > 0


def test_small_ops_never_fifo_blocked():
    env, net = _net()
    for _ in range(100):
        _s, e = net.occupy_injection(0, 8)
        assert net.injection_admit(0, e, 8) == 0


def test_noise_deterministic():
    p = GeminiParams().with_noise(200.0)
    env1, net1 = _net(params=p)
    env2, net2 = _net(params=p)
    t1 = [net1.packet(0, 1, 8)[0] for _ in range(20)]
    t2 = [net2.packet(0, 1, 8)[0] for _ in range(20)]
    assert t1 == t2
    assert len(set(t1)) > 1  # noise actually varies


def test_no_noise_by_default():
    env, net = _net()
    assert net._noise() == 0.0


def test_wire_latency_scales_with_hops():
    env, net = _net(nnodes=8)
    t_near, _ = net.packet(0, 1, 8)
    t_far, _ = net.packet(0, 4, 8)  # 4 hops on a ring of 8
    assert t_far > t_near


def test_placement_validation():
    env = Environment()
    torus = Torus3D((1, 1, 1))
    rm = RankMap(nranks=64, ranks_per_node=1)  # needs 64 nodes
    with pytest.raises(ValueError):
        Network(env, torus, rm)


def test_nic_utilization_tracking():
    env, net = _net()
    net.packet(0, 1, 1 << 16)
    assert net.nic(0).bte.total_busy > 0
    assert net.nic(1).ejection.total_busy > 0
