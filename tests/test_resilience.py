"""Resilience under injected faults: recovery, determinism, zero cost.

The contract of :mod:`repro.faults` and the hardened transports:

* with no :class:`FaultPlan`, runs are bit-identical to pre-fault code;
* with faults, workloads complete and produce the *same data* as a
  fault-free run (retransmits recover drops/corruption, stalls only delay);
* same seed + same plan => bit-identical replay including retry counts;
* unrecoverable faults fail fast with structured errors
  (:class:`DeadlineError`, :class:`NodeCrashedError`), never hangs.
"""

import numpy as np
import pytest

from repro import run_spmd
from repro.config import (
    FaultConfig,
    FaultPlan,
    MachineConfig,
    NicStall,
    NodeCrash,
    SimConfig,
)
from repro.errors import DeadlineError, NodeCrashedError
from repro.rma.enums import LockType

INTER = MachineConfig(ranks_per_node=1)

DROP = FaultConfig(plan=FaultPlan(drop_prob=0.25))
CORRUPT = FaultConfig(plan=FaultPlan(corrupt_prob=0.25))
STALL = FaultConfig(plan=FaultPlan(
    stalls=(NicStall(node=1, start_ns=0, duration_ns=40_000),)))
DELAY = FaultConfig(plan=FaultPlan(delay_prob=0.3, delay_ns=4_000))

LOSSY = {"drop": DROP, "corrupt": CORRUPT}
ALL = {"drop": DROP, "corrupt": CORRUPT, "stall": STALL, "delay": DELAY}


# ---------------------------------------------------------------------------
# workloads (each returns per-rank data that must match the fault-free run)
# ---------------------------------------------------------------------------
def _fig4_put_program(ctx, nbytes=64, reps=4):
    """Figure 4a inner loop: put + flush under lock_all, then verify."""
    win = yield from ctx.rma.win_allocate(max(nbytes, 8))
    yield from win.lock_all()
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        data = np.full(nbytes, 7, np.uint8)
        for _ in range(reps):
            yield from win.put(data, 1, 0)
            yield from win.flush(1)
        got = np.zeros(nbytes, np.uint8)
        yield from win.get(got, 1, 0)
        yield from win.flush(1)
        payload = got.tolist()
    else:
        payload = None
    yield from ctx.coll.barrier()
    yield from win.unlock_all()
    return payload


def _fig4_get_program(ctx, nbytes=64, reps=4):
    win = yield from ctx.rma.win_allocate(max(nbytes, 8))
    yield from win.lock_all()
    if ctx.rank == 1:  # seed the target window
        yield from win.put(np.full(nbytes, 3, np.uint8), 1, 0)
        yield from win.flush(1)
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        got = np.zeros(nbytes, np.uint8)
        for _ in range(reps):
            yield from win.get(got, 1, 0)
            yield from win.flush(1)
        payload = got.tolist()
    else:
        payload = None
    yield from ctx.coll.barrier()
    yield from win.unlock_all()
    return payload


def _rendezvous_program(ctx, nbytes=16_384, reps=6):
    """MPI-1 rendezvous (> eager threshold): RTS/CTS/data all recoverable."""
    pattern = (np.arange(nbytes, dtype=np.int64) % 251).astype(np.uint8)
    ok = True
    for i in range(reps):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, pattern + i, tag=5)
        else:
            got = yield from ctx.mpi.recv(0, tag=5)
            ok = ok and bool((got == pattern + i).all())
    return ok if ctx.rank == 1 else "sent"


def _lock_contention_program(ctx):
    """All ranks take the same exclusive lock and write their slice."""
    win = yield from ctx.rma.win_allocate(8 * ctx.nranks)
    yield from ctx.coll.barrier()
    yield from win.lock(0, LockType.EXCLUSIVE)
    yield from win.put(np.full(8, ctx.rank + 1, np.uint8), 0, 8 * ctx.rank)
    yield from win.flush(0)
    yield from win.unlock(0)
    yield from ctx.coll.barrier()
    if ctx.rank == 0:
        yield from win.lock(0, LockType.SHARED)
        got = np.zeros(8 * ctx.nranks, np.uint8)
        yield from win.get(got, 0, 0)
        yield from win.flush(0)
        yield from win.unlock(0)
        payload = got.tolist()
    else:
        payload = None
    yield from ctx.coll.barrier()
    return payload


def _hashtable_contents(faults, p=3, inserts=12):
    from repro.apps.hashtable import (
        HashTableLayout,
        rma_insert_program,
        verify_contents,
    )

    layout = HashTableLayout(table_slots=8, heap_cells=128)
    box = {}
    res = run_spmd(rma_insert_program, p, layout, inserts, box,
                   machine=INTER, faults=faults)
    volumes = [box["volumes"][r] for r in range(p)]
    keys = [box["keys"][r] for r in range(p)]
    verify_contents(layout, volumes, keys)
    contents = [sorted(layout.all_contents(v)) for v in volumes]
    return contents, res


WORKLOADS = {
    "fig4-put": _fig4_put_program,
    "fig4-get": _fig4_get_program,
    "rendezvous": _rendezvous_program,
    "locks": _lock_contention_program,
}


def _fingerprint(res):
    return (res.sim_time_ns, res.events_processed, res.returns)


# ---------------------------------------------------------------------------
# zero cost when off
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_inactive_fault_config_is_bit_identical(workload):
    """FaultConfig with no plan constructs no machinery: identical
    (sim_time, events, returns) to a run with no faults argument at all."""
    program = WORKLOADS[workload]
    base = run_spmd(program, 2, machine=INTER)
    off = run_spmd(program, 2, machine=INTER, faults=FaultConfig(plan=None))
    assert _fingerprint(base) == _fingerprint(off)
    assert "retransmits" not in off.stats


# ---------------------------------------------------------------------------
# recovery: same data as the fault-free run
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("fault", sorted(ALL))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_workloads_recover_under_faults(workload, fault):
    program = WORKLOADS[workload]
    faults = ALL[fault]
    clean = run_spmd(program, 2, machine=INTER)
    faulty = run_spmd(program, 2, machine=INTER, faults=faults)
    # Same answers, fully recovered ...
    assert faulty.returns == clean.returns
    # ... and the fault machinery really engaged.
    assert "retransmits" in faulty.stats
    if fault in LOSSY:
        assert faulty.stats["retransmits"] > 0
        injected = (faulty.stats["faults"]["drops"]
                    + faulty.stats["faults"]["corruptions"])
        assert injected > 0
    elif fault == "stall":
        assert faulty.stats["faults"]["stall_waits"] > 0
        assert faulty.sim_time_ns > clean.sim_time_ns
    else:  # delay
        assert faulty.stats["faults"]["delays"] > 0


@pytest.mark.parametrize("fault", sorted(LOSSY))
def test_lock_contention_recovers_with_more_ranks(fault):
    clean = run_spmd(_lock_contention_program, 4, machine=INTER)
    faulty = run_spmd(_lock_contention_program, 4, machine=INTER,
                      faults=LOSSY[fault])
    assert faulty.returns == clean.returns
    expected = [b for r in range(4) for b in [r + 1] * 8]
    assert faulty.returns[0] == expected


@pytest.mark.parametrize("fault", sorted(LOSSY))
def test_hashtable_recovers_under_faults(fault):
    clean_contents, _ = _hashtable_contents(None)
    faulty_contents, res = _hashtable_contents(LOSSY[fault])
    assert faulty_contents == clean_contents
    assert res.stats["retransmits"] > 0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_faulty_runs_replay_bit_identically(workload):
    """Same seed + same plan => same drops, same retransmit counts, same
    simulated times -- the whole point of seeded fault injection."""
    program = WORKLOADS[workload]

    def once():
        res = run_spmd(program, 2, machine=INTER, faults=DROP)
        return (_fingerprint(res), res.stats["retransmits"],
                res.stats["faults"])

    assert once() == once()


def test_seed_changes_fault_pattern():
    a = run_spmd(_fig4_put_program, 2, machine=INTER, faults=DROP,
                 sim=SimConfig(seed=1))
    b = run_spmd(_fig4_put_program, 2, machine=INTER, faults=DROP,
                 sim=SimConfig(seed=2))
    assert ((a.stats["faults"] != b.stats["faults"])
            or (a.sim_time_ns != b.sim_time_ns))


# ---------------------------------------------------------------------------
# unrecoverable faults fail fast
# ---------------------------------------------------------------------------
def test_total_packet_loss_exhausts_retry_budget():
    """drop_prob=1.0: every (re)transmission is lost; the hardened
    transport gives up with DeadlineError instead of hanging."""
    faults = FaultConfig(plan=FaultPlan(drop_prob=1.0), max_retries=6)

    def program(ctx):
        seg = ctx.space.alloc(64)
        desc = ctx.reg.register(seg)
        bb = ctx.world.blackboard.setdefault("descs", {})
        bb[ctx.rank] = desc
        yield from ctx.compute(10)
        if ctx.rank == 0:
            with pytest.raises(DeadlineError) as exc:
                yield from ctx.dmapp.put_nbi(bb[1], 0, np.ones(8, np.uint8))
            assert exc.value.attempts == 7  # 1 try + 6 retries
            assert exc.value.target == 1
        return "done"

    res = run_spmd(program, 2, machine=INTER, faults=faults)
    assert res.returns == ["done", "done"]
    assert res.stats["faults"]["deadline_failures"] == 1


def test_node_crash_quarantines_and_fails_fast():
    """Fail-stop crash: the node's rank dies, later ops addressed to it
    raise NodeCrashedError immediately (no retry storm, no hang)."""
    faults = FaultConfig(plan=FaultPlan(
        crashes=(NodeCrash(node=1, time_ns=200_000),)))

    def program(ctx):
        seg = ctx.space.alloc(64)
        desc = ctx.reg.register(seg)
        descs = yield from ctx.coll.allgather(desc)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            # Before the crash: normal put, delivered.
            yield from ctx.dmapp.put_nbi(descs[1], 0, np.ones(8, np.uint8))
            yield from ctx.dmapp.gsync()
            yield from ctx.compute(1_000_000)  # node 1 dies meanwhile
            with pytest.raises(NodeCrashedError) as exc:
                yield from ctx.dmapp.put_nbi(descs[1], 0,
                                             np.ones(8, np.uint8))
            assert exc.value.node == 1
            with pytest.raises(NodeCrashedError):
                yield from ctx.mpi.send(1, "hello")
            return "survivor"
        yield from ctx.compute(10_000_000)  # killed mid-sleep
        return "unreachable"

    res = run_spmd(program, 2, machine=INTER, faults=faults)
    assert res.returns[0] == "survivor"
    assert isinstance(res.returns[1], NodeCrashedError)
    assert res.stats["faults"]["crashed_nodes"] == [1]


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
def test_trace_surfaces_injected_faults():
    res = run_spmd(_fig4_put_program, 2, machine=INTER, faults=DROP,
                   sim=SimConfig(trace=True))
    counts = res.stats["fault_trace_counts"]
    assert counts.get("drop", 0) == res.stats["faults"]["drops"] > 0
    assert counts.get("retransmit", 0) == res.stats["retransmits"] > 0


def test_amo_replays_are_deduplicated():
    """A lost ack must not re-apply the atomic: heavy loss on an AMO
    workload still yields the exact fault-free counter value."""
    faults = FaultConfig(plan=FaultPlan(drop_prob=0.25))
    adds_per_rank = 16

    def program(ctx):
        win = yield from ctx.rma.win_allocate(8)
        yield from win.lock_all()
        yield from ctx.coll.barrier()
        from repro.rma.enums import Op

        for _ in range(adds_per_rank):
            yield from win.accumulate(np.array([1], np.uint64), 0, 0, Op.SUM)
            yield from win.flush(0)
        yield from ctx.coll.barrier()
        if ctx.rank == 0:
            got = np.zeros(8, np.uint8)
            yield from win.get(got, 0, 0)
            yield from win.flush(0)
            total = int(got.view(np.uint64)[0])
        else:
            total = None
        yield from ctx.coll.barrier()
        yield from win.unlock_all()
        return total

    clean = run_spmd(program, 2, machine=INTER)
    faulty = run_spmd(program, 2, machine=INTER, faults=faults)
    assert clean.returns[0] == 2 * adds_per_rank
    assert faulty.returns[0] == 2 * adds_per_rank
    assert faulty.stats["retransmits"] > 0
